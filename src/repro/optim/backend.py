"""Array backends for the sparse solvers (numpy / torch / cupy).

The solvers in :mod:`repro.optim` are written against a deliberately
small array surface — products, norms, elementwise shrinkage, a couple
of factorizations.  :class:`ArrayBackend` abstracts exactly that
surface so the same FISTA/MMV/ADMM/OMP loops run unchanged on numpy,
PyTorch, or CuPy arrays, on whatever device the backend was opened on.

Design rules:

* :class:`NumpyBackend` delegates to **exactly** the numpy expressions
  the solvers used before this layer existed.  The numpy path is the
  reference: golden fixtures and byte-identity tests pin it, so the
  backend indirection must be invisible at the bit level.
* ``torch`` and ``cupy`` are *lazily* registered: their classes are
  always listed, but the libraries are only imported when a backend
  instance is actually requested.  Environments without them lose
  nothing — :func:`available_backends` simply omits them.
* Scalars cross the boundary as plain Python ``float``/``int``/``bool``
  so solver control flow (convergence checks, momentum coefficients)
  is backend-independent.

Precision is tracked as ``"double"`` (complex128/float64, the
reference) or ``"single"`` (complex64/float32, the mixed-precision
option for GPU throughput).  The documented float32 tolerance ladder
used by the parity tests and the :func:`repro.optim.solve_batch` parity
gate lives in :data:`FLOAT32_TOLERANCES`.
"""

from __future__ import annotations

import contextlib
import importlib.util
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np
import scipy.linalg

from repro.exceptions import BackendError
from repro.optim import linalg as _linalg

#: Reference parity budget for double precision: batched float64 results
#: must match the sequential numpy path to this relative tolerance.
FLOAT64_PARITY_TOLERANCE = 1e-12

#: Documented float32 tolerance ladder, relative to the float64 numpy
#: reference on the same problem.  Single precision carries ~1e-7 of
#: rounding per operation through hundreds of iterations; these bounds
#: are what the parity test matrix asserts and what callers should
#: expect from ``dtype="complex64"`` solves.
FLOAT32_TOLERANCES = {
    "solution": 1e-2,   # per-problem relative ℓ∞ deviation of the minimizer
    "objective": 1e-3,  # relative objective gap
    "parity_gate": 1e-2,  # default solve_batch parity-gate tolerance
}

_PRECISIONS = ("double", "single")

_COMPLEX_BY_PRECISION = {"double": "complex128", "single": "complex64"}
_REAL_BY_PRECISION = {"double": "float64", "single": "float32"}

_SINGLE_TOKENS = {"single", "complex64", "float32"}
_DOUBLE_TOKENS = {"double", "complex128", "float64"}


def normalize_precision(dtype) -> str | None:
    """Map a dtype spec (name, numpy dtype, precision token) to a precision.

    Returns ``"single"``, ``"double"``, or ``None`` when ``dtype`` is
    ``None`` (meaning: keep the source precision).
    """
    if dtype is None:
        return None
    token = str(dtype).lower()
    # numpy dtypes stringify as e.g. "complex64"; torch as "torch.complex64".
    token = token.rsplit(".", 1)[-1]
    if token in _SINGLE_TOKENS:
        return "single"
    if token in _DOUBLE_TOKENS:
        return "double"
    raise BackendError(
        f"unsupported dtype {dtype!r}; expected one of "
        f"{sorted(_SINGLE_TOKENS | _DOUBLE_TOKENS)}"
    )


class ArrayBackend(ABC):
    """The array surface the solvers need, bound to one library + device."""

    #: Registry name ("numpy", "torch", "cupy").
    name: str = ""
    #: Device string ("cpu", "cuda", "cuda:0", ...).
    device: str = "cpu"

    @classmethod
    @abstractmethod
    def is_available(cls) -> bool:
        """Whether the backing library is importable (cheap; no import)."""

    # -- construction / conversion ------------------------------------
    @abstractmethod
    def asarray(self, x, dtype: str | None = None):
        """Native array from ``x`` (host data or native array)."""

    @abstractmethod
    def ensure(self, x, like=None):
        """Native array from ``x``, dtype-promoted to mix with ``like``.

        The numpy implementation is a plain ``np.asarray`` — numpy's own
        promotion rules apply, keeping the reference path bitwise
        unchanged.  Torch promotes real→complex explicitly because its
        ``matmul`` refuses mixed real/complex operands.
        """

    @abstractmethod
    def to_numpy(self, x) -> np.ndarray:
        """Host numpy array (copy-free where the library allows)."""

    @abstractmethod
    def copy(self, x):
        ...

    @abstractmethod
    def zeros(self, shape, dtype: str):
        ...

    @abstractmethod
    def eye(self, n: int):
        ...

    @abstractmethod
    def stack(self, arrays: Sequence, axis: int = 0):
        ...

    @abstractmethod
    def concat(self, arrays: Sequence, axis: int = 0):
        ...

    @abstractmethod
    def moveaxis(self, x, source: int, destination: int):
        ...

    @abstractmethod
    def kron(self, a, b):
        ...

    # -- dtype / device plumbing --------------------------------------
    def complex_dtype(self, precision: str = "double") -> str:
        return _COMPLEX_BY_PRECISION[precision]

    def real_dtype(self, precision: str = "double") -> str:
        return _REAL_BY_PRECISION[precision]

    @abstractmethod
    def dtype_name(self, x) -> str:
        """Canonical dtype name of an array, e.g. ``"complex128"``."""

    def precision_of(self, x) -> str:
        return "single" if self.dtype_name(x) in _SINGLE_TOKENS else "double"

    @abstractmethod
    def is_native(self, x) -> bool:
        """Whether ``x`` is already this backend's array type."""

    # -- elementwise / reductions -------------------------------------
    @abstractmethod
    def abs(self, x):
        ...

    @abstractmethod
    def conj(self, x):
        ...

    @abstractmethod
    def conj_transpose(self, x):
        """``xᴴ`` for a 2-D array."""

    @abstractmethod
    def where(self, condition, a, b):
        ...

    @abstractmethod
    def maximum(self, x, floor):
        """Elementwise ``max(x, floor)`` with ``floor`` a scalar or array."""

    @abstractmethod
    def norm(self, x) -> float:
        """Flattened ℓ2 norm as a Python float."""

    @abstractmethod
    def norms(self, x, axis, keepdims: bool = False):
        """Vector ℓ2 norms along ``axis`` (int or tuple), as an array."""

    @abstractmethod
    def sum(self, x, axis=None):
        ...

    def sum_float(self, x) -> float:
        return float(self.sum(x))

    @abstractmethod
    def abs_sum(self, x) -> float:
        """``Σ|xᵢ|`` as a Python float."""

    @abstractmethod
    def vdot_real(self, a, b) -> float:
        """``Re⟨a, b⟩`` over flattened arrays, as a Python float."""

    @abstractmethod
    def max(self, x, initial: float | None = None) -> float:
        ...

    @abstractmethod
    def argmax(self, x) -> int:
        ...

    @abstractmethod
    def isfinite_all(self, x) -> bool:
        ...

    @abstractmethod
    def tensordot(self, a, b, axes):
        ...

    # -- fused lockstep kernels ---------------------------------------
    # The batched engine's hot inner steps.  The generic forms below are
    # correct on every backend; NumpyBackend overrides them with
    # in-place implementations because the lockstep iterate (n × B) no
    # longer fits in cache and every avoided pass is a measurable win.
    def prox_gradient_step(self, momentum, gradient, step2, thresholds):
        """``soft_threshold(momentum − step2·gradient, thresholds)``.

        ``gradient`` is ``Aᴴ(Ax − y)`` *without* the factor 2 —
        ``step2`` carries it (``2·step``; exact, a power-of-two scale).
        Implementations may clobber ``gradient`` (the caller owns and
        discards it); ``momentum`` must be left untouched.
        """
        return self.soft_threshold(momentum - step2 * gradient, thresholds)

    def momentum_combine(self, candidate, previous, coefficient):
        """``candidate + coefficient·(candidate − previous)``.

        Implementations may clobber ``previous`` — the engine only calls
        this once the previous iterate is dead.
        """
        return candidate + coefficient * (candidate - previous)

    # -- solver building blocks ---------------------------------------
    @abstractmethod
    def soft_threshold(self, x, threshold):
        """Complex soft-threshold; ``threshold`` scalar or broadcastable."""

    @abstractmethod
    def row_soft_threshold(self, x, threshold: float):
        ...

    @abstractmethod
    def cholesky(self, a):
        """Opaque factorization handle for :meth:`cholesky_solve`."""

    @abstractmethod
    def cholesky_solve(self, factor, b):
        ...

    @abstractmethod
    def lstsq(self, a, b):
        """Least-squares solution of ``a x ≈ b`` (tall or square ``a``)."""

    @abstractmethod
    def eigvalsh_max(self, a) -> float:
        """Largest eigenvalue of a Hermitian matrix, as a Python float."""

    def errstate(self):
        """Context manager suppressing 0/0 warnings in shrinkage ops."""
        return contextlib.nullcontext()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} device={self.device!r}>"


class NumpyBackend(ArrayBackend):
    """The reference backend: every op is the pre-existing numpy expression."""

    name = "numpy"
    device = "cpu"

    @classmethod
    def is_available(cls) -> bool:
        return True

    def asarray(self, x, dtype: str | None = None):
        return np.asarray(x, dtype=dtype)

    def ensure(self, x, like=None):
        # No dtype coercion: numpy promotes inside the operation itself,
        # which is exactly what the solvers did before this layer.
        return np.asarray(x)

    def to_numpy(self, x) -> np.ndarray:
        return np.asarray(x)

    def copy(self, x):
        return np.asarray(x).copy()

    def zeros(self, shape, dtype: str):
        return np.zeros(shape, dtype=dtype)

    def eye(self, n: int):
        return np.eye(n)

    def stack(self, arrays: Sequence, axis: int = 0):
        return np.stack(arrays, axis=axis)

    def concat(self, arrays: Sequence, axis: int = 0):
        return np.concatenate(list(arrays), axis=axis)

    def moveaxis(self, x, source: int, destination: int):
        return np.moveaxis(x, source, destination)

    def kron(self, a, b):
        return np.kron(a, b)

    def dtype_name(self, x) -> str:
        return np.asarray(x).dtype.name

    def is_native(self, x) -> bool:
        return isinstance(x, np.ndarray)

    def abs(self, x):
        return np.abs(x)

    def conj(self, x):
        return np.conj(x)

    def conj_transpose(self, x):
        return x.conj().T

    def where(self, condition, a, b):
        return np.where(condition, a, b)

    def maximum(self, x, floor):
        return np.maximum(x, floor)

    def norm(self, x) -> float:
        return float(np.linalg.norm(x))

    def norms(self, x, axis, keepdims: bool = False):
        return np.linalg.norm(x, axis=axis, keepdims=keepdims)

    def sum(self, x, axis=None):
        return np.asarray(x).sum(axis=axis)

    def abs_sum(self, x) -> float:
        return float(np.abs(x).sum())

    def vdot_real(self, a, b) -> float:
        return float(np.vdot(a, b).real)

    def max(self, x, initial: float | None = None) -> float:
        if initial is not None:
            return float(np.asarray(x).max(initial=initial))
        return float(np.asarray(x).max())

    def argmax(self, x) -> int:
        return int(np.argmax(x))

    def isfinite_all(self, x) -> bool:
        return bool(np.all(np.isfinite(x)))

    def tensordot(self, a, b, axes):
        return np.tensordot(a, b, axes=axes)

    def prox_gradient_step(self, momentum, gradient, step2, thresholds):
        point = np.multiply(gradient, -step2, out=gradient)
        point += momentum
        magnitude = np.abs(point)
        thresholds = np.asarray(thresholds)
        if np.all(thresholds > 0):
            # max(1 − t/|z|, 0)·z: same shrinkage as the reference
            # formula to rounding, one fewer real-array pass and no
            # boolean mask; |z| = 0 gives −inf → clamped to 0.
            with np.errstate(invalid="ignore", divide="ignore"):
                scale = thresholds / magnitude
                np.subtract(1.0, scale, out=scale)
                np.maximum(scale, 0.0, out=scale)
        else:
            with np.errstate(invalid="ignore", divide="ignore"):
                shrunk = np.maximum(magnitude - thresholds, 0.0)
                scale = np.where(
                    magnitude > 0, shrunk / np.where(magnitude > 0, magnitude, 1.0), 0.0
                )
        point *= scale
        return point

    def momentum_combine(self, candidate, previous, coefficient):
        combined = np.subtract(candidate, previous, out=previous)
        combined *= coefficient
        combined += candidate
        return combined

    def soft_threshold(self, x, threshold):
        return _linalg.soft_threshold(x, threshold)

    def row_soft_threshold(self, x, threshold: float):
        return _linalg.row_soft_threshold(x, threshold)

    def cholesky(self, a):
        return scipy.linalg.cho_factor(a)

    def cholesky_solve(self, factor, b):
        return scipy.linalg.cho_solve(factor, b)

    def lstsq(self, a, b):
        solution, *_ = np.linalg.lstsq(a, b, rcond=None)
        return solution

    def eigvalsh_max(self, a) -> float:
        return float(np.linalg.eigvalsh(a)[-1])

    def errstate(self):
        return np.errstate(invalid="ignore", divide="ignore")


class TorchBackend(ArrayBackend):
    """PyTorch backend (CPU by default; pass ``device="cuda"`` for GPU)."""

    name = "torch"

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("torch") is not None

    def __init__(self, device: str | None = None) -> None:
        if not self.is_available():  # pragma: no cover - depends on env
            raise BackendError("torch backend requested but torch is not installed")
        import torch

        self._torch = torch
        self.device = device or "cpu"
        if self.device.startswith("cuda") and not torch.cuda.is_available():
            raise BackendError(
                f"torch backend requested device {self.device!r} but CUDA is unavailable"
            )

    _DTYPES = {
        "complex128": "complex128",
        "complex64": "complex64",
        "float64": "float64",
        "float32": "float32",
    }

    def _dtype(self, name: str | None):
        if name is None:
            return None
        return getattr(self._torch, self._DTYPES[str(name)])

    def asarray(self, x, dtype: str | None = None):
        torch = self._torch
        if torch.is_tensor(x):
            return x.to(device=self.device, dtype=self._dtype(dtype)) if dtype else x.to(self.device)
        array = np.asarray(x)
        tensor = torch.as_tensor(array, device=self.device)
        if dtype is not None:
            tensor = tensor.to(self._dtype(dtype))
        return tensor

    def ensure(self, x, like=None):
        torch = self._torch
        tensor = x if torch.is_tensor(x) else torch.as_tensor(np.asarray(x), device=self.device)
        if str(tensor.device) != str(self._torch.device(self.device)):
            tensor = tensor.to(self.device)
        if like is not None and tensor.dtype != like.dtype:
            # Promote real → complex (and match precision) so torch's
            # strict matmul dtype rules never bite; never demote a
            # complex array to real.
            if like.dtype.is_complex or not tensor.dtype.is_complex:
                tensor = tensor.to(like.dtype)
        return tensor

    def to_numpy(self, x) -> np.ndarray:
        if self._torch.is_tensor(x):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    def copy(self, x):
        return self.ensure(x).clone()

    def zeros(self, shape, dtype: str):
        return self._torch.zeros(shape, dtype=self._dtype(dtype), device=self.device)

    def eye(self, n: int):
        return self._torch.eye(n, dtype=self._torch.float64, device=self.device)

    def stack(self, arrays: Sequence, axis: int = 0):
        return self._torch.stack(list(arrays), dim=axis)

    def concat(self, arrays: Sequence, axis: int = 0):
        return self._torch.cat(list(arrays), dim=axis)

    def moveaxis(self, x, source: int, destination: int):
        return self._torch.movedim(x, source, destination)

    def kron(self, a, b):
        return self._torch.kron(a, b)

    def dtype_name(self, x) -> str:
        if self._torch.is_tensor(x):
            return str(x.dtype).rsplit(".", 1)[-1]
        return np.asarray(x).dtype.name

    def is_native(self, x) -> bool:
        return self._torch.is_tensor(x)

    def abs(self, x):
        return self._torch.abs(x)

    def conj(self, x):
        return self._torch.conj(x).resolve_conj()

    def conj_transpose(self, x):
        return x.mH

    def where(self, condition, a, b):
        torch = self._torch
        if not torch.is_tensor(a) or not torch.is_tensor(b):
            dtype = a.dtype if torch.is_tensor(a) else (b.dtype if torch.is_tensor(b) else None)
            if not torch.is_tensor(a):
                a = torch.as_tensor(a, dtype=dtype, device=condition.device)
            if not torch.is_tensor(b):
                b = torch.as_tensor(b, dtype=dtype, device=condition.device)
        return torch.where(condition, a, b)

    def maximum(self, x, floor):
        torch = self._torch
        if torch.is_tensor(floor):
            return torch.maximum(x, floor)
        return torch.clamp(x, min=floor)

    def norm(self, x) -> float:
        return float(self._torch.linalg.vector_norm(x))

    def norms(self, x, axis, keepdims: bool = False):
        return self._torch.linalg.vector_norm(x, dim=axis, keepdim=keepdims)

    def sum(self, x, axis=None):
        if axis is None:
            return self._torch.sum(x)
        return self._torch.sum(x, dim=axis)

    def abs_sum(self, x) -> float:
        return float(self._torch.sum(self._torch.abs(x)))

    def vdot_real(self, a, b) -> float:
        return float(self._torch.vdot(a.reshape(-1), b.reshape(-1)).real)

    def max(self, x, initial: float | None = None) -> float:
        if x.numel() == 0:
            if initial is None:  # pragma: no cover - mirrors numpy's error
                raise BackendError("max of an empty tensor with no initial value")
            return float(initial)
        peak = float(self._torch.max(x))
        return peak if initial is None else builtins_max(peak, float(initial))

    def argmax(self, x) -> int:
        return int(self._torch.argmax(x))

    def isfinite_all(self, x) -> bool:
        return bool(self._torch.all(self._torch.isfinite(x)))

    def tensordot(self, a, b, axes):
        return self._torch.tensordot(a, b, dims=axes)

    def soft_threshold(self, x, threshold):
        torch = self._torch
        magnitude = torch.abs(x)
        if torch.is_tensor(threshold):
            shrunk = torch.clamp(magnitude - threshold, min=0.0)
        else:
            shrunk = torch.clamp(magnitude - float(threshold), min=0.0)
        safe = torch.where(magnitude > 0, magnitude, torch.ones_like(magnitude))
        factors = (shrunk / safe).to(x.dtype)
        return torch.where(magnitude > 0, x * factors, torch.zeros_like(x))

    def row_soft_threshold(self, x, threshold: float):
        torch = self._torch
        norms = torch.linalg.vector_norm(x, dim=1, keepdim=True)
        shrunk = torch.clamp(norms - float(threshold), min=0.0)
        safe = torch.where(norms > 0, norms, torch.ones_like(norms))
        factors = torch.where(norms > 0, shrunk / safe, torch.zeros_like(norms))
        return x * factors.to(x.dtype)

    def cholesky(self, a):
        return self._torch.linalg.cholesky(a)

    def cholesky_solve(self, factor, b):
        torch = self._torch
        rhs = b if b.ndim == 2 else b.reshape(-1, 1)
        solution = torch.cholesky_solve(rhs, factor)
        return solution if b.ndim == 2 else solution.reshape(-1)

    def lstsq(self, a, b):
        rhs = b if b.ndim == 2 else b.reshape(-1, 1)
        solution = self._torch.linalg.lstsq(a, rhs).solution
        return solution if b.ndim == 2 else solution.reshape(-1)

    def eigvalsh_max(self, a) -> float:
        return float(self._torch.linalg.eigvalsh(a)[-1])


class CupyBackend(ArrayBackend):
    """CuPy backend — numpy-compatible arrays resident on a CUDA device."""

    name = "cupy"

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("cupy") is not None

    def __init__(self, device: str | None = None) -> None:
        if not self.is_available():  # pragma: no cover - depends on env
            raise BackendError("cupy backend requested but cupy is not installed")
        import cupy

        self._cupy = cupy
        self.device = device or "cuda"

    def asarray(self, x, dtype: str | None = None):
        return self._cupy.asarray(x, dtype=dtype)

    def ensure(self, x, like=None):
        return self._cupy.asarray(x)

    def to_numpy(self, x) -> np.ndarray:
        return self._cupy.asnumpy(x)

    def copy(self, x):
        return self._cupy.asarray(x).copy()

    def zeros(self, shape, dtype: str):
        return self._cupy.zeros(shape, dtype=dtype)

    def eye(self, n: int):
        return self._cupy.eye(n)

    def stack(self, arrays: Sequence, axis: int = 0):
        return self._cupy.stack(list(arrays), axis=axis)

    def concat(self, arrays: Sequence, axis: int = 0):
        return self._cupy.concatenate(list(arrays), axis=axis)

    def moveaxis(self, x, source: int, destination: int):
        return self._cupy.moveaxis(x, source, destination)

    def kron(self, a, b):
        return self._cupy.kron(a, b)

    def dtype_name(self, x) -> str:
        return x.dtype.name if hasattr(x, "dtype") else np.asarray(x).dtype.name

    def is_native(self, x) -> bool:
        return isinstance(x, self._cupy.ndarray)

    def abs(self, x):
        return self._cupy.abs(x)

    def conj(self, x):
        return self._cupy.conj(x)

    def conj_transpose(self, x):
        return x.conj().T

    def where(self, condition, a, b):
        return self._cupy.where(condition, a, b)

    def maximum(self, x, floor):
        return self._cupy.maximum(x, floor)

    def norm(self, x) -> float:
        return float(self._cupy.linalg.norm(x))

    def norms(self, x, axis, keepdims: bool = False):
        return self._cupy.linalg.norm(x, axis=axis, keepdims=keepdims)

    def sum(self, x, axis=None):
        return x.sum(axis=axis)

    def abs_sum(self, x) -> float:
        return float(self._cupy.abs(x).sum())

    def vdot_real(self, a, b) -> float:
        return float(self._cupy.vdot(a, b).real)

    def max(self, x, initial: float | None = None) -> float:
        if x.size == 0:
            if initial is None:  # pragma: no cover - mirrors numpy's error
                raise BackendError("max of an empty array with no initial value")
            return float(initial)
        peak = float(x.max())
        return peak if initial is None else builtins_max(peak, float(initial))

    def argmax(self, x) -> int:
        return int(self._cupy.argmax(x))

    def isfinite_all(self, x) -> bool:
        return bool(self._cupy.all(self._cupy.isfinite(x)))

    def tensordot(self, a, b, axes):
        return self._cupy.tensordot(a, b, axes=axes)

    def soft_threshold(self, x, threshold):
        cp = self._cupy
        magnitude = cp.abs(x)
        shrunk = cp.maximum(magnitude - threshold, 0.0)
        factors = cp.where(magnitude > 0, shrunk / cp.where(magnitude > 0, magnitude, 1.0), 0.0)
        return x * factors

    def row_soft_threshold(self, x, threshold: float):
        cp = self._cupy
        norms = cp.linalg.norm(x, axis=1, keepdims=True)
        shrunk = cp.maximum(norms - threshold, 0.0)
        factors = cp.where(norms > 0, shrunk / cp.where(norms > 0, norms, 1.0), 0.0)
        return x * factors

    def cholesky(self, a):
        return self._cupy.linalg.cholesky(a)

    def cholesky_solve(self, factor, b):
        from cupyx.scipy.linalg import solve_triangular

        intermediate = solve_triangular(factor, b, lower=True)
        return solve_triangular(factor.conj().T, intermediate, lower=False)

    def lstsq(self, a, b):
        solution, *_ = self._cupy.linalg.lstsq(a, b, rcond=None)
        return solution

    def eigvalsh_max(self, a) -> float:
        return float(self._cupy.linalg.eigvalsh(a)[-1])


builtins_max = max  # the ArrayBackend.max methods shadow the builtin


_BACKEND_CLASSES: dict[str, type[ArrayBackend]] = {
    "numpy": NumpyBackend,
    "torch": TorchBackend,
    "cupy": CupyBackend,
}

_INSTANCES: dict[tuple[str, str | None], ArrayBackend] = {}


def backend_names() -> tuple[str, ...]:
    """All registered backend names (installed or not)."""
    return tuple(_BACKEND_CLASSES)


def available_backends() -> tuple[str, ...]:
    """Names of backends whose library is importable right now."""
    return tuple(
        name for name, cls in _BACKEND_CLASSES.items() if cls.is_available()
    )


def get_backend(name: str = "numpy", *, device: str | None = None) -> ArrayBackend:
    """Backend instance by name, memoized per ``(name, device)``.

    Raises :class:`~repro.exceptions.BackendError` for unknown names and
    for backends whose library is not installed.
    """
    if isinstance(name, ArrayBackend):
        return name
    try:
        cls = _BACKEND_CLASSES[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered backends: {sorted(_BACKEND_CLASSES)}"
        ) from None
    if not cls.is_available():
        raise BackendError(
            f"backend {name!r} is registered but its library is not installed "
            f"(available: {list(available_backends())})"
        )
    key = (name, device)
    if key not in _INSTANCES:
        _INSTANCES[key] = cls() if name == "numpy" else cls(device=device)
    return _INSTANCES[key]


def backend_of(array) -> ArrayBackend:
    """Infer the backend owning ``array`` without importing anything new."""
    module = type(array).__module__
    if module.startswith("torch"):
        device = str(array.device)
        return get_backend("torch", device=None if device == "cpu" else device)
    if module.startswith("cupy"):
        return get_backend("cupy")
    return get_backend("numpy")


def resolve_backend(spec=None, *, device: str | None = None, array=None) -> ArrayBackend:
    """Resolve ``spec`` (None / name / instance) to a backend instance.

    With ``spec=None`` the backend is inferred from ``array`` (numpy
    when no array is given) — inference never imports torch/cupy, it
    only recognizes arrays from libraries that are already loaded.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is not None:
        return get_backend(spec, device=device)
    if array is not None:
        return backend_of(array)
    return get_backend("numpy")
