"""Complex-valued sparse-recovery solvers.

The paper solves the ℓ1-regularized least-squares program

    min_a  ‖y − S a‖₂² + κ‖a‖₁                         (paper Eq. 11 / 18)

with CVX's second-order cone solvers.  This package provides
self-contained numpy implementations of the same program behind one
front door:

* :func:`solve` — the unified entry point:
  ``solve(A, y, method="fista", ...)`` dispatches by name and derives κ
  when omitted.
* :func:`solve_batch` — the batched entry point:
  ``solve_batch(A, ys, method=...)`` stacks many measurements against
  one dictionary into lockstep batched iterations on any registered
  array backend (numpy always; torch/cupy when installed — see
  :mod:`repro.optim.backend`), with a float64 parity gate against the
  sequential numpy reference.

Dictionaries may be dense ndarrays or structured
:class:`DictionaryOperator` instances — in particular
:class:`KroneckerJointOperator`, which applies the paper's Eq. 16 joint
dictionary as two small matmuls instead of one dense GEMM.

The per-solver functions remain the stable low-level surface:

* :func:`solve_lasso_fista` — accelerated proximal gradient (FISTA) with
  backtracking; the workhorse used by :mod:`repro.core`.
* :func:`solve_lasso_admm` — ADMM with a cached normal-equation
  factorization; faster when the same dictionary is reused many times.
* :func:`solve_omp` — greedy orthogonal matching pursuit, used as an
  ablation baseline.
* :func:`solve_mmv_fista` — the multiple-measurement-vector (ℓ2,1,
  joint-sparse) variant used for multi-packet fusion (paper §III-D,
  after Malioutov et al. [25]).
* :func:`solve_reweighted_lasso` — iteratively reweighted ℓ1 (Candès &
  Wakin [23]); debiases the ℓ1 shrinkage for sharper spectra.
* :func:`solve_sbl` — sparse Bayesian learning with automatic relevance
  determination (the engine behind off-grid Bayesian DOA, Yang et
  al. [31]); no sparsity weight to tune.

All solvers accept complex dictionaries and measurements directly — the
complex soft-threshold (magnitude shrinkage, phase preserved) makes the
real/complex "SoC vs QP" distinction the paper draws (§III-A footnote)
unnecessary here.
"""

from repro.optim.admm import CachedAdmmFactors, solve_lasso_admm
from repro.optim.backend import (
    FLOAT32_TOLERANCES,
    FLOAT64_PARITY_TOLERANCE,
    ArrayBackend,
    available_backends,
    backend_names,
    get_backend,
    resolve_backend,
)
from repro.optim.batch import BatchSolverResult, solve_batch
from repro.optim.facade import solve
from repro.optim.fista import solve_lasso_fista
from repro.optim.linalg import (
    estimate_lipschitz,
    row_soft_threshold,
    soft_threshold,
)
from repro.optim.mmv import solve_mmv_fista
from repro.optim.omp import solve_omp
from repro.optim.operators import (
    DenseOperator,
    DictionaryOperator,
    KroneckerJointOperator,
    as_operator,
)
from repro.optim.guard import GuardrailPolicy, solve_guarded
from repro.optim.result import SolverResult
from repro.optim.reweighted import solve_reweighted_lasso
from repro.optim.robust import (
    OutlierAugmentedOperator,
    RobustSolverResult,
    RowWeightedOperator,
    robust_lambda,
    robust_objective,
    robust_penalty_weights,
    solve_huber_irls,
    solve_robust_lasso,
    solve_robust_mmv,
)
from repro.optim.sbl import solve_sbl
from repro.optim.tuning import mmv_residual_kappa, noise_scaled_kappa, residual_kappa
from repro.optim.warm import WarmStartState

__all__ = [
    "ArrayBackend",
    "BatchSolverResult",
    "CachedAdmmFactors",
    "DenseOperator",
    "DictionaryOperator",
    "FLOAT32_TOLERANCES",
    "FLOAT64_PARITY_TOLERANCE",
    "GuardrailPolicy",
    "KroneckerJointOperator",
    "OutlierAugmentedOperator",
    "RobustSolverResult",
    "RowWeightedOperator",
    "SolverResult",
    "WarmStartState",
    "as_operator",
    "available_backends",
    "backend_names",
    "estimate_lipschitz",
    "get_backend",
    "resolve_backend",
    "mmv_residual_kappa",
    "noise_scaled_kappa",
    "residual_kappa",
    "robust_lambda",
    "robust_objective",
    "robust_penalty_weights",
    "row_soft_threshold",
    "soft_threshold",
    "solve",
    "solve_batch",
    "solve_guarded",
    "solve_huber_irls",
    "solve_lasso_admm",
    "solve_lasso_fista",
    "solve_mmv_fista",
    "solve_omp",
    "solve_reweighted_lasso",
    "solve_robust_lasso",
    "solve_robust_mmv",
    "solve_sbl",
]
