"""ADMM for the complex LASSO.

Solves the same program as :mod:`repro.optim.fista`,

    min_x  ‖A x − y‖₂² + κ ‖x‖₁,

by the alternating direction method of multipliers (Boyd et al. [18] in
the paper's bibliography).  ADMM trades a one-time factorization of
``AᴴA + ρI`` for very cheap iterations, which wins when the same
dictionary is solved against many right-hand sides — exactly the
multi-AP, multi-location sweeps of the evaluation harness.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.exceptions import SolverError
from repro.optim.fista import lasso_objective
from repro.optim.linalg import soft_threshold, validate_system
from repro.optim.result import SolverResult


class CachedAdmmFactors:
    """Pre-factorized normal equations for repeated ADMM solves.

    For an ``(m, n)`` dictionary with ``m < n`` (always the case for the
    paper's overcomplete grids) we factor the *small* ``m × m`` system
    via the matrix-inversion lemma:

        (AᴴA + ρI)⁻¹ = (I − Aᴴ(ρI + AAᴴ)⁻¹A) / ρ
    """

    def __init__(self, matrix: np.ndarray, rho: float) -> None:
        if rho <= 0:
            raise SolverError(f"rho must be positive, got {rho}")
        self.matrix = matrix
        self.rho = rho
        m, n = matrix.shape
        self.wide = m < n
        if self.wide:
            gram_small = matrix @ matrix.conj().T
            self._factor = scipy.linalg.cho_factor(gram_small + rho * np.eye(m))
        else:
            gram = matrix.conj().T @ matrix
            self._factor = scipy.linalg.cho_factor(gram + rho * np.eye(n))

    def solve(self, q: np.ndarray) -> np.ndarray:
        """Return ``(AᴴA + ρI)⁻¹ q``."""
        if self.wide:
            inner = scipy.linalg.cho_solve(self._factor, self.matrix @ q)
            return (q - self.matrix.conj().T @ inner) / self.rho
        return scipy.linalg.cho_solve(self._factor, q)


def solve_lasso_admm(
    matrix: np.ndarray,
    rhs: np.ndarray,
    kappa: float,
    *,
    rho: float | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-6,
    factors: CachedAdmmFactors | None = None,
    track_history: bool = False,
) -> SolverResult:
    """Solve ``min ‖Ax − y‖₂² + κ‖x‖₁`` by ADMM.

    Parameters
    ----------
    rho:
        ADMM penalty parameter.  The default (``None``) auto-scales to
        ``max(κ, 1)``, which keeps the z-update threshold ``κ/(2ρ)``
        near unity — a ρ far below κ makes the shrinkage step so
        aggressive that the iterates crawl away from zero.
    factors:
        Optional pre-built :class:`CachedAdmmFactors` for ``(matrix,
        rho)``; build once and reuse across right-hand sides.

    Notes
    -----
    The split is ``min ‖Ax − y‖² + κ‖z‖₁  s.t. x = z``.  With the
    data term written as ``‖Ax − y‖²`` (no ½ factor, matching the
    paper's Eq. 11) the x-update solves ``(2AᴴA + ρI)x = 2Aᴴy + ρ(z −
    u)``; we fold the factor 2 into the cached factorization by scaling.
    """
    validate_system(matrix, rhs)
    if rhs.ndim != 1:
        raise SolverError("solve_lasso_admm expects a 1-D measurement vector")
    if kappa < 0:
        raise SolverError(f"kappa must be non-negative, got {kappa}")

    n = matrix.shape[1]
    # Work with the equivalent 1/2-scaled objective: min ½‖Ax−y‖² + (κ/2)‖x‖₁
    # which has the same minimizer as Eq. 11 and the textbook ADMM updates.
    half_kappa = kappa / 2.0

    if rho is None:
        rho = factors.rho if factors is not None else max(kappa, 1.0)
    if factors is None:
        factors = CachedAdmmFactors(matrix, rho)
    elif factors.matrix is not matrix or factors.rho != rho:
        raise SolverError("provided CachedAdmmFactors were built for a different (matrix, rho)")

    atb = matrix.conj().T @ rhs
    x = np.zeros(n, dtype=complex)
    z = np.zeros(n, dtype=complex)
    u = np.zeros(n, dtype=complex)

    history: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        x = factors.solve(atb + rho * (z - u))
        z_prev = z
        z = soft_threshold(x + u, half_kappa / rho)
        u = u + x - z

        primal_residual = np.linalg.norm(x - z)
        dual_residual = rho * np.linalg.norm(z - z_prev)
        if track_history:
            history.append(lasso_objective(matrix, rhs, z, kappa))
        scale = max(1.0, float(np.linalg.norm(z)))
        if primal_residual <= tolerance * scale and dual_residual <= tolerance * scale:
            converged = True
            break

    return SolverResult(
        x=z,
        objective=lasso_objective(matrix, rhs, z, kappa),
        iterations=iterations,
        converged=converged,
        history=history,
    )
