"""ADMM for the complex LASSO.

Solves the same program as :mod:`repro.optim.fista`,

    min_x  ‖A x − y‖₂² + κ ‖x‖₁,

by the alternating direction method of multipliers (Boyd et al. [18] in
the paper's bibliography).  ADMM trades a one-time factorization of
``AᴴA + ρI`` for very cheap iterations, which wins when the same
dictionary is solved against many right-hand sides — exactly the
multi-AP, multi-location sweeps of the evaluation harness.

The solver normalizes the problem by κ internally (solve ``A, y/κ`` with
unit sparsity weight, then un-scale the minimizer), so the cached
factorization depends on ``(A, ρ)`` plus the backend/device/dtype that
holds it — never on κ — and one :class:`CachedAdmmFactors` serves every
κ on its backend.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import SolverError
from repro.obs.convergence import ConvergenceTrace, support_size
from repro.optim.backend import resolve_backend
from repro.optim.fista import lasso_objective
from repro.optim.linalg import validate_system
from repro.optim.operators import DenseOperator, DictionaryOperator, as_operator
from repro.optim.result import SolverResult


class CachedAdmmFactors:
    """Pre-factorized normal equations for repeated ADMM solves.

    The factorization depends on the dictionary, ρ, and the array
    backend/device/dtype holding it — *not* on the right-hand side or on
    κ — so one instance serves a whole sweep of measurements and
    sparsity weights on one backend.  The backend/device/dtype triple is
    part of the cache key (:attr:`key`): the same dictionary factored on
    another backend — or recast to another precision — produces
    numerically different factors and must never be reused across that
    boundary.

    For an ``(m, n)`` dictionary with ``m < n`` (always the case for the
    paper's overcomplete grids) we factor the *small* ``m × m`` system
    via the matrix-inversion lemma:

        (AᴴA + ρI)⁻¹ = (I − Aᴴ(ρI + AAᴴ)⁻¹A) / ρ
    """

    def __init__(self, matrix, rho: float, *, backend=None, dtype=None) -> None:
        if rho <= 0:
            raise SolverError(f"rho must be positive, got {rho}")
        # Keep the caller's handle for identity checks; structured
        # operators are materialized once here (ADMM's x-update needs
        # the factored Gram either way).
        self.source = matrix
        operator = as_operator(matrix, backend=backend, dtype=dtype)
        self.backend = operator.backend
        self.matrix = operator.to_dense()
        self.rho = rho
        bk = self.backend
        m, n = tuple(self.matrix.shape)
        self.wide = m < n
        # The ρI ridge is built in the gram's *real* dtype: a float64
        # eye would promote a complex64 gram to complex128.
        ridge_dtype = bk.real_dtype(operator.precision)
        if self.wide:
            gram_small = self.matrix @ bk.conj_transpose(self.matrix)
            ridge = bk.asarray(rho * bk.eye(m), dtype=ridge_dtype)
            self._factor = bk.cholesky(gram_small + ridge)
        else:
            gram = bk.conj_transpose(self.matrix) @ self.matrix
            ridge = bk.asarray(rho * bk.eye(n), dtype=ridge_dtype)
            self._factor = bk.cholesky(gram + ridge)

    @property
    def key(self) -> tuple:
        """The full cache key: ``(backend, device, dtype, rho)``."""
        return (
            self.backend.name,
            self.backend.device,
            self.backend.dtype_name(self.matrix),
            self.rho,
        )

    def solve(self, q):
        """Return ``(AᴴA + ρI)⁻¹ q``."""
        bk = self.backend
        if self.wide:
            inner = bk.cholesky_solve(self._factor, self.matrix @ q)
            return (q - bk.conj_transpose(self.matrix) @ inner) / self.rho
        return bk.cholesky_solve(self._factor, q)

    def matches(self, matrix) -> bool:
        """Whether these factors can serve ``matrix`` as-is.

        Identity with the source (or the materialized dense form) is
        necessary but no longer sufficient: the candidate must also live
        on the same backend/device with the same dtype — factors built
        with ``backend="torch"`` or ``dtype="complex64"`` never serve
        the original numpy float64 dictionary, even though the *object*
        is the same (the PR 2 keying collision).
        """
        # A DenseOperator is just a view over its array — factors built
        # from the array serve the wrapper and vice versa (solve_batch
        # wraps the caller's matrix before reaching the ADMM core).
        handles = [matrix]
        if isinstance(matrix, DenseOperator):
            handles.append(matrix.matrix)
        if isinstance(self.source, DenseOperator):
            handles.append(self.source.matrix)
        if not any(h is self.source or h is self.matrix for h in handles):
            return False
        if isinstance(matrix, DictionaryOperator):
            candidate = matrix.backend
            candidate_dtype = matrix.dtype_name
        else:
            candidate = resolve_backend(None, array=matrix)
            candidate_dtype = candidate.dtype_name(matrix)
        return (
            candidate.name == self.backend.name
            and candidate.device == self.backend.device
            and candidate_dtype == self.backend.dtype_name(self.matrix)
        )


def solve_lasso_admm(
    matrix,
    rhs: np.ndarray,
    kappa: float,
    *,
    rho: float | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-6,
    factors: CachedAdmmFactors | None = None,
    track_history: bool = False,
    telemetry: ConvergenceTrace | None = None,
    callback: Callable[[int, np.ndarray, float], None] | None = None,
) -> SolverResult:
    """Solve ``min ‖Ax − y‖₂² + κ‖x‖₁`` by ADMM.

    Parameters
    ----------
    matrix:
        Dictionary ``A`` — a dense ndarray or any
        :class:`~repro.optim.operators.DictionaryOperator` (materialized
        once for the factorization).
    rho:
        ADMM penalty parameter, defaulting to 1.  Because the iterations
        run on the κ-normalized problem (see below), the effective
        shrinkage threshold is ``1/(2ρ)`` regardless of κ and the
        default needs no κ coupling.
    factors:
        Optional pre-built :class:`CachedAdmmFactors` for ``(matrix,
        rho)``; build once and reuse across right-hand sides *and*
        sparsity weights κ.
    telemetry / callback:
        Per-iteration hooks as in
        :func:`~repro.optim.fista.solve_lasso_fista`, measured on the
        un-normalized iterate ``κ·z`` so traces are comparable across
        solvers.  One extra dictionary multiply per iteration when
        enabled, nothing otherwise.

    Notes
    -----
    The split is ``min ‖Ax − y‖² + κ‖z‖₁  s.t. x = z``.  Internally the
    problem is normalized by κ: substituting ``x = κ x̃`` and
    ``ỹ = y/κ`` turns Eq. 11 into ``κ²(‖Ax̃ − ỹ‖² + ‖x̃‖₁)``, so we run
    the textbook updates with unit sparsity weight on ``(A, ỹ)`` and
    scale the minimizer back by κ.  For a fixed ρ the two trajectories
    are *exactly* equivalent (soft-thresholding commutes with positive
    scaling), and the factorization of ``AᴴA + ρI`` is untouched by κ.
    """
    validate_system(matrix, rhs)
    if rhs.ndim != 1:
        raise SolverError("solve_lasso_admm expects a 1-D measurement vector")
    if kappa < 0:
        raise SolverError(f"kappa must be non-negative, got {kappa}")

    if rho is None:
        rho = factors.rho if factors is not None else 1.0
    if factors is None:
        factors = CachedAdmmFactors(matrix, rho)
    elif not factors.matches(matrix) or factors.rho != rho:
        raise SolverError(
            "provided CachedAdmmFactors were built for a different "
            "(matrix, rho, backend/device/dtype)"
        )

    dense = factors.matrix
    bk = factors.backend
    cdtype = bk.complex_dtype(bk.precision_of(dense))
    n = tuple(dense.shape)[1]
    # Cast to the factor precision so a complex64 dictionary keeps the
    # whole iteration in complex64 (no-op for the default path).
    rhs = bk.asarray(rhs, dtype=cdtype)

    # κ-normalized problem: min ‖Ax̃ − ỹ‖² + ‖x̃‖₁ with ỹ = y/κ; the
    # 1/2-scaled textbook updates then threshold at (1/2)/ρ.
    scale_factor = kappa if kappa > 0 else 1.0
    scaled_rhs = rhs / scale_factor
    threshold = 0.5 / rho if kappa > 0 else 0.0

    atb = bk.conj_transpose(dense) @ scaled_rhs
    x = bk.zeros(n, cdtype)
    z = bk.zeros(n, cdtype)
    u = bk.zeros(n, cdtype)

    history: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        x = factors.solve(atb + rho * (z - u))
        z_prev = z
        z = bk.soft_threshold(x + u, threshold)
        u = u + x - z

        primal_residual = bk.norm(x - z)
        dual_residual = rho * bk.norm(z - z_prev)
        if track_history:
            history.append(lasso_objective(dense, rhs, scale_factor * z, kappa))
        if telemetry is not None or callback is not None:
            iterate = scale_factor * z
            residual_norm = bk.norm(dense @ iterate - rhs)
            current = residual_norm**2 + kappa * bk.abs_sum(iterate)
            if telemetry is not None:
                telemetry.record(
                    objective=current,
                    residual_norm=residual_norm,
                    support_size=support_size(iterate),
                )
            if callback is not None:
                callback(iterations, iterate, current)
        scale = max(1.0, bk.norm(z))
        if primal_residual <= tolerance * scale and dual_residual <= tolerance * scale:
            converged = True
            break

    x_final = scale_factor * z
    return SolverResult(
        x=x_final,
        objective=lasso_objective(dense, rhs, x_final, kappa),
        iterations=iterations,
        converged=converged,
        history=history,
        convergence=telemetry,
    )
