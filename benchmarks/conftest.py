"""Shared configuration for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's figures and prints the
series/rows that figure plots.  Scale knobs:

``REPRO_BENCH_SCALE``
    Integer multiplier on the number of test locations (default 1).
    The paper evaluates 300 locations; the default benchmark scale uses
    a smaller sample so a full run finishes in tens of minutes on a
    laptop.  ``REPRO_BENCH_SCALE=5`` roughly reproduces paper scale.
"""

from __future__ import annotations

import os


def bench_scale() -> int:
    """The location-count multiplier from the environment."""
    return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
