"""Robustness-tax microbenchmark: plain LASSO vs outlier-augmented solve.

Runs :func:`repro.runtime.bench.robust_solve_benchmark` — the same
measurement ``roarray bench`` prints — asserts the augmented ``[Ã | I]``
path stays within the acceptance overhead of the plain solve, and
writes the numbers to ``BENCH_robust_solve.json`` (repo root, or
``REPRO_BENCH_OUTPUT_DIR``) so CI can upload the perf trajectory as an
artifact.

Scale knobs:

``REPRO_SMOKE=1``
    Fewer timing repeats and a reduced iteration pin — what CI's
    ``nlos-smoke`` job runs.  The ratio assertion stays on: both paths
    run identical iteration counts on the same problem, so the ratio is
    robust even on a noisy shared runner.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.runtime.bench import robust_solve_benchmark
from repro.runtime.checkpoint import atomic_write

# Acceptance ceiling: the augmented solve adds one shrinkage over the
# e-block and a residual subtraction per iteration — measured ~1.2x on
# a laptop core; 1.6x leaves headroom for noisy CI runners.
OVERHEAD_CEILING = 1.6
# A clean trace must not have its energy explained away as corruption.
CLEAN_OUTLIER_CEILING = 0.05


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "") == "1"


def _output_path() -> Path:
    root = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    base = Path(root) if root else Path(__file__).resolve().parent.parent
    return base / "BENCH_robust_solve.json"


@pytest.mark.benchmark(group="runtime")
def test_robust_solve_overhead_within_ceiling():
    if _smoke():
        repeats, iterations = 2, 120
    else:
        repeats, iterations = 5, None  # None = the evaluation config's 250

    result = robust_solve_benchmark(repeats=repeats, max_iterations=iterations)

    path = _output_path()
    atomic_write(path, result)
    print(
        f"\n-- robust solve ({result['grid']['rows']}x{result['grid']['columns']}, "
        f"{result['iterations']} iterations) --"
    )
    print(f"plain:    {result['plain_seconds'] * 1e3:8.2f} ms")
    print(f"robust:   {result['robust_seconds'] * 1e3:8.2f} ms")
    print(f"overhead: {result['overhead_ratio']:8.2f}x  -> {path.name}")

    assert result["overhead_ratio"] <= OVERHEAD_CEILING, (
        f"outlier-augmented solve exceeds the {OVERHEAD_CEILING}x robustness "
        f"budget: {result['overhead_ratio']:.2f}x"
    )
    assert result["clean_outlier_fraction"] <= CLEAN_OUTLIER_CEILING, (
        "robust solve attributed clean-trace energy to corruption: "
        f"{result['clean_outlier_fraction']:.3f}"
    )
