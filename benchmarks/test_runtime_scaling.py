"""Runtime scaling: sequential vs parallel batch evaluation.

Measures ``BatchEvaluator`` throughput on a Fig. 6-style workload
(random classroom scenes × APs, the paper's evaluation shape) for a
ladder of worker counts, asserts batch/sequential parity on every rung,
and — on hardware with enough cores — asserts the ≥1.5× speedup target
at 4 workers.

Scale knobs:

``REPRO_SMOKE=1``
    Tiny workload, parity assertions only — what CI runs.
``REPRO_BENCH_SCALE``
    Location multiplier, as for the figure benchmarks.

The speedup assertion self-gates on ``os.sched_getaffinity``: on a
1-core container 4 workers cannot beat sequential and the benchmark
reports throughput without failing.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.channel.impairments import ImpairmentModel
from repro.core.pipeline import RoArrayEstimator
from repro.experiments.runner import _scene_traces, evaluation_roarray_config
from repro.experiments.scenarios import SNR_BANDS, build_random_scene
from repro.runtime import BatchEvaluator

SPEEDUP_TARGET = 1.5
SPEEDUP_WORKERS = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "") == "1"


def _fig6_workload(n_locations: int, n_aps: int, n_packets: int, seed: int = 2017):
    """The paper's evaluation shape: spots × APs, one trace per link."""
    band = SNR_BANDS["medium"]
    rng = np.random.default_rng(seed)
    traces = []
    for location in range(n_locations):
        scene = build_random_scene(rng, n_aps=n_aps)
        traces.extend(
            _scene_traces(
                scene,
                snr_db_per_ap=[band.draw(rng) for _ in range(n_aps)],
                n_packets=n_packets,
                impairments=ImpairmentModel(),
                rng=rng,
                boot_seed=seed + location * 100,
                blockage_db_per_ap=[band.draw_blockage(rng) for _ in range(n_aps)],
            )
        )
    return traces


def _fingerprint(result):
    return [
        (o.index, o.ok, repr(o.analysis), repr(o.failure)) for o in result.outcomes
    ]


@pytest.mark.benchmark(group="runtime")
@pytest.mark.slow
def test_runtime_scaling():
    if _smoke():
        n_locations, n_aps, n_packets = 1, 4, 4
        worker_ladder = (2,)
    else:
        n_locations, n_aps, n_packets = 2 * bench_scale(), 6, 10
        worker_ladder = (1, 2, SPEEDUP_WORKERS)

    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    traces = _fig6_workload(n_locations, n_aps, n_packets)

    sequential = BatchEvaluator(estimator, workers=0).evaluate(traces)
    print(f"\n-- runtime scaling: {len(traces)} traces "
          f"({n_locations} spots x {n_aps} APs, {n_packets} packets) --")
    print(f"workers=0 (sequential): {sequential.report.throughput_jobs_per_s:6.2f} jobs/s")

    speedups = {}
    for workers in worker_ladder:
        parallel = BatchEvaluator(estimator, workers=workers).evaluate(traces)
        assert _fingerprint(parallel) == _fingerprint(sequential), (
            f"parity violated at workers={workers}"
        )
        speedups[workers] = parallel.report.speedup_over(sequential.report)
        print(
            f"workers={workers}: {parallel.report.throughput_jobs_per_s:6.2f} jobs/s "
            f"(speedup {speedups[workers]:4.2f}x)"
        )

    assert sequential.report.n_failures == 0
    cores = _usable_cores()
    if _smoke():
        return
    if cores >= SPEEDUP_WORKERS:
        assert speedups[SPEEDUP_WORKERS] >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x at {SPEEDUP_WORKERS} workers on "
            f"{cores} cores, got {speedups[SPEEDUP_WORKERS]:.2f}x"
        )
    else:
        print(f"({cores} usable core(s): skipping the {SPEEDUP_TARGET}x assertion)")


@pytest.mark.benchmark(group="runtime")
def test_runtime_scaling_smoke_parity():
    """The always-on, CI-sized slice: parity plus failure isolation."""
    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    traces = _fig6_workload(1, 3, 3)
    sequential = BatchEvaluator(estimator, workers=0).evaluate(traces)
    parallel = BatchEvaluator(estimator, workers=2).evaluate(traces)
    assert _fingerprint(parallel) == _fingerprint(sequential)
    assert parallel.report.n_failures == 0
