"""Paper Fig. 8b — localization under three phase-calibration schemes.

Paper: without calibration the median error is 2.0 m; MUSIC (Phaser)
calibration improves it; ROArray-spectrum-driven calibration is another
0.71 m better.  Shape target: roarray-cal ≤ music-cal < none.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.runner import run_calibration_experiment

MODES = ("roarray", "music", "none")


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_calibration_schemes(benchmark):
    results = benchmark.pedantic(
        lambda: run_calibration_experiment(
            modes=MODES,
            n_locations=6 * bench_scale(),
            n_packets=8,
            n_aps=4,
            seed=82,
        ),
        rounds=1,
        iterations=1,
    )

    print("\n=== Fig. 8b: localization error by calibration scheme ===")
    for mode in MODES:
        cdf = results[mode]
        print(f"{mode:>8} | median {cdf.median:.2f} m | p90 {cdf.percentile(90):.2f} m")

    # Figure shape: any calibration beats none; ROArray-driven calibration
    # is at least as good as MUSIC-driven.
    assert results["roarray"].median < results["none"].median
    assert results["music"].median < results["none"].median
    assert results["roarray"].median <= results["music"].median + 0.3
