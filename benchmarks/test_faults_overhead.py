"""Validation-gate overhead budget: the clean path must be ~free.

The acceptance bound is <= 2% added cost on the joint-solve working
point when the gate runs on defect-free traces.  Two guards:

* a structural one — on a clean trace :func:`sanitize_trace` returns
  the *same object* (identity, no copy), so the gate cannot silently
  perturb or reallocate clean data; and
* a measured one — the per-trace cost of classify-and-pass, on a trace
  at the evaluation working point, against the measured joint-solve
  wall time (the gate runs once per job, the solve at least once).

Scale knobs: ``REPRO_SMOKE=1`` shortens the solve pin (CI).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.paths import random_profile
from repro.core.pipeline import RoArrayEstimator
from repro.experiments.runner import evaluation_roarray_config
from repro.faults.validate import sanitize_trace
from repro.runtime.bench import joint_solve_benchmark

OVERHEAD_LIMIT = 0.02


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "") == "1"


def _working_point_trace(n_packets: int = 10):
    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    rng = np.random.default_rng(2017)
    profile = random_profile(rng, direct_aoa_deg=150.0)
    synthesizer = CsiSynthesizer(
        estimator.array, estimator.layout, ImpairmentModel(), seed=2017
    )
    trace = synthesizer.packets(profile, n_packets=n_packets, snr_db=12.0, rng=rng)
    expected = (estimator.array.n_antennas, estimator.layout.n_subcarriers)
    return trace, expected


def test_clean_gate_is_identity():
    """No copy, no normalization: the input object itself comes back."""
    trace, expected = _working_point_trace()
    cleaned, report = sanitize_trace(trace, expected_shape=expected)
    assert cleaned is trace
    assert report.clean
    assert report.n_quarantined == 0


@pytest.mark.benchmark(group="faults")
def test_clean_gate_overhead_within_two_percent():
    iterations = 120 if _smoke() else None
    result = joint_solve_benchmark(repeats=2, max_iterations=iterations)
    solve_s = result["operator_seconds"]

    trace, expected = _working_point_trace()
    n = 50 if _smoke() else 200
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(n):
            sanitize_trace(trace, expected_shape=expected)
        best = min(best, (time.perf_counter() - start) / n)

    overhead = best / solve_s
    print(
        f"\n-- faults overhead -- gate {best * 1e6:.1f} us/trace, "
        f"solve {solve_s * 1e3:.2f} ms, "
        f"overhead {overhead * 100:.3f}% (limit {OVERHEAD_LIMIT * 100:.0f}%)"
    )
    assert overhead <= OVERHEAD_LIMIT, (
        f"clean-path validation overhead {overhead * 100:.2f}% exceeds "
        f"{OVERHEAD_LIMIT * 100:.0f}% of the joint solve"
    )
