"""Ablation — the sparse-recovery family on one AoA problem.

Beyond the plain ℓ1 program the paper uses, this repository implements
two upgrades from the paper's own citation neighborhood: iteratively
reweighted ℓ1 (Candès & Wakin [23]) and sparse Bayesian learning (the
engine of Yang et al. [31]).  This bench runs all three on identical
multipath AoA problems and compares peak accuracy, spectrum sharpness
and wall-clock.
"""

import time

import numpy as np
import pytest

from repro.channel.array import UniformLinearArray
from repro.channel.csi import synthesize_csi_matrix
from repro.channel.noise import awgn
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.core.grids import AngleGrid
from repro.core.steering import angle_steering_dictionary
from repro.optim import solve_lasso_fista, solve_reweighted_lasso, solve_sbl
from repro.optim.tuning import residual_kappa
from repro.spectral.spectrum import AngleSpectrum

N_TRIALS = 8
SNR_DB = 10.0


def run_family():
    array = UniformLinearArray()
    from repro.channel.ofdm import intel5300_layout

    layout = intel5300_layout()
    grid = AngleGrid(n_points=181)
    dictionary = angle_steering_dictionary(array, grid)

    stats = {name: {"error": [], "sharpness": [], "seconds": 0.0}
             for name in ("l1", "reweighted l1", "SBL")}
    for trial in range(N_TRIALS):
        rng = np.random.default_rng(500 + trial)
        true_aoa = float(rng.uniform(30.0, 150.0))
        other = true_aoa - 50.0 if true_aoa > 90.0 else true_aoa + 50.0
        profile = MultipathProfile(
            paths=[
                PropagationPath(true_aoa, 0.0, 1.0, is_direct=True),
                PropagationPath(other, 0.0, 0.6 * np.exp(1j)),
            ]
        )
        y = awgn(synthesize_csi_matrix(profile, array, layout)[:, 0], SNR_DB, rng)
        kappa = residual_kappa(dictionary, y, fraction=0.15)

        # With only M = 3 measurements, SBL needs the noise level pinned
        # (co-estimating σ² from 3 samples is hopeless); the ℓ1 solvers
        # get the equivalent information through κ.
        snr_linear = 10.0 ** (SNR_DB / 10.0)
        noise_variance = float(np.mean(np.abs(y) ** 2)) / (1.0 + snr_linear)
        solvers = {
            "l1": lambda: solve_lasso_fista(dictionary, y, kappa, max_iterations=300),
            "reweighted l1": lambda: solve_reweighted_lasso(dictionary, y, kappa),
            "SBL": lambda: solve_sbl(dictionary, y, noise_variance=noise_variance),
        }
        for name, solve in solvers.items():
            start = time.perf_counter()
            result = solve()
            stats[name]["seconds"] += time.perf_counter() - start
            spectrum = AngleSpectrum(grid.angles_deg, np.abs(result.x)).normalized()
            stats[name]["error"].append(
                spectrum.closest_peak_error(true_aoa, max_peaks=4, min_relative_height=0.2)
            )
            stats[name]["sharpness"].append(spectrum.sharpness())

    return {
        name: (
            float(np.median(s["error"])),
            float(np.median(s["sharpness"])),
            s["seconds"] / N_TRIALS,
        )
        for name, s in stats.items()
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_sparse_recovery_family(benchmark):
    results = benchmark.pedantic(run_family, rounds=1, iterations=1)

    print(f"\n=== Ablation: sparse-recovery family (2-path AoA, {SNR_DB:.0f} dB) ===")
    for name, (error, sharpness, seconds) in results.items():
        print(
            f"{name:>14}: median err {error:5.1f}° | sharpness {sharpness:.3f} "
            f"| {seconds * 1e3:7.1f} ms/solve"
        )

    # The ℓ1 members recover the direct path on this problem...
    assert results["l1"][0] < 8.0
    assert results["reweighted l1"][0] <= results["l1"][0] + 1.0
    # ...and reweighting sharpens the spectrum over plain ℓ1.
    assert results["reweighted l1"][1] >= results["l1"][1]
    # SBL's Gaussian-prior posterior mean blurs *coherent* two-path
    # mixtures on a 3-sensor single snapshot — a real limitation worth
    # pinning: it must stay within the two-path angular span, but we do
    # not require peak-level accuracy from it here.
    assert results["SBL"][0] < 55.0
