"""Extension (§IV-F) — a dual-polarized planar array vs client tilt.

Fig. 8c shows the 1-D single-polarization array collapsing as the
client antenna tilts; the paper proposes a 2-D array with both
polarizations.  This bench implements that proposal and measures the
azimuth error of a 3×3 dual-pol planar array against the 1-D baseline
across tilt angles: the extension should hold its accuracy where the
baseline degrades.
"""

import numpy as np
import pytest

from repro.channel.array import UniformLinearArray
from repro.channel.array2d import DualPolarizationFeed, PlanarArray
from repro.channel.impairments import polarization_loss
from repro.channel.noise import awgn
from repro.core.aoa import estimate_aoa_spectrum
from repro.core.aoa2d import AzimuthElevationGrid, estimate_aoa2d_spectrum
from repro.core.grids import AngleGrid

N_TRIALS = 6
DEVIATIONS_DEG = (0.0, 20.0, 45.0)
BASE_SNR_DB = 12.0


def run_comparison():
    ula = UniformLinearArray()
    planar = PlanarArray(n_x=3, n_y=3)
    feed = DualPolarizationFeed()
    angle_grid = AngleGrid(n_points=91)
    planar_grid = AzimuthElevationGrid(n_azimuths=73, n_elevations=7, max_elevation_deg=60.0)

    results = {}
    for deviation in DEVIATIONS_DEG:
        ula_errors, planar_errors = [], []
        for trial in range(N_TRIALS):
            rng = np.random.default_rng(300 + trial)
            true_angle = float(rng.uniform(30.0, 150.0))

            # 1-D single-pol baseline: amplitude collapses with tilt and
            # the tilted manifold acquires per-antenna ripple (matching
            # ImpairmentModel's default severity).
            severity = deviation / 90.0 * 2.5
            ripple = 1.0 + severity * (
                rng.standard_normal(3) + 1j * rng.standard_normal(3)
            )
            y_ula = polarization_loss(deviation) * ripple * ula.steering_vector(true_angle)
            y_ula = awgn(y_ula, BASE_SNR_DB, rng)
            spectrum, _ = estimate_aoa_spectrum(y_ula, ula, angle_grid)
            ula_errors.append(
                spectrum.closest_peak_error(true_angle, max_peaks=4, min_relative_height=0.3)
            )

            # 2-D dual-pol extension: combining keeps the amplitude and a
            # clean manifold at any tilt.
            y_planar = feed.amplitude(deviation) * planar.steering_vector(true_angle, 15.0)
            y_planar = awgn(y_planar, BASE_SNR_DB, rng)
            planar_spectrum, _ = estimate_aoa2d_spectrum(y_planar, planar, planar_grid)
            planar_errors.append(planar_spectrum.closest_azimuth_error(true_angle))

        results[deviation] = (
            float(np.median(ula_errors)),
            float(np.median(planar_errors)),
        )
    return results


@pytest.mark.benchmark(group="extension")
def test_extension_dual_polarized_planar_array(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    print("\n=== §IV-F extension: dual-pol planar array vs client tilt ===")
    for deviation, (ula_error, planar_error) in results.items():
        print(
            f"tilt {deviation:4.0f}° | 1-D single-pol: {ula_error:5.1f}° "
            f"| 3×3 dual-pol: {planar_error:5.1f}°"
        )

    # The baseline degrades with tilt (the Fig. 8c effect)...
    assert results[45.0][0] >= results[0.0][0]
    # ...while the dual-pol planar array stays accurate throughout.
    assert results[45.0][1] <= results[0.0][1] + 3.0
    assert results[45.0][1] < results[45.0][0]
