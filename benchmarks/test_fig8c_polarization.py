"""Paper Fig. 8c — impact of client antenna polarization deviation.

Paper medians: small at 0° deviation, 2.21 m for (0°, 20°] and 4.71 m
for (20°, 45°] — a 1-D array suffers badly when the client antenna
tilts out of the polarization plane.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.runner import run_polarization_experiment

RANGES = ((0.0, 0.0), (0.0, 20.0), (20.0, 45.0))


@pytest.mark.benchmark(group="fig8c")
def test_fig8c_polarization_deviation(benchmark):
    results = benchmark.pedantic(
        lambda: run_polarization_experiment(
            deviation_ranges_deg=RANGES,
            n_locations=8 * bench_scale(),
            n_packets=8,
            n_aps=5,
            seed=83,
        ),
        rounds=1,
        iterations=1,
    )

    print("\n=== Fig. 8c: ROArray localization error vs polarization deviation ===")
    for deviation_range in RANGES:
        cdf = results[deviation_range]
        label = f"{deviation_range[0]:.0f}–{deviation_range[1]:.0f}°"
        print(f"dev {label:>7} | median {cdf.median:.2f} m | p90 {cdf.percentile(90):.2f} m")

    aligned = results[(0.0, 0.0)]
    mild = results[(0.0, 20.0)]
    severe = results[(20.0, 45.0)]

    # Figure shape: accuracy degrades monotonically with deviation, and
    # the worst band is substantially worse than perfect alignment.
    assert aligned.median <= mild.median + 0.2
    assert mild.median <= severe.median + 0.2
    assert severe.median > 1.5 * aligned.median
