"""Observability overhead budget: disabled telemetry must be ~free.

The acceptance bound is <= 2% added cost on the joint-solve working
point when telemetry is off.  Two guards:

* a structural one — the null tracer allocates nothing per span, so the
  disabled path cannot scale with span count; and
* a measured one — the per-span cost of the null tracer, multiplied by
  a generous per-solve span budget, against the measured joint-solve
  wall time.

Scale knobs: ``REPRO_SMOKE=1`` shortens the solve pin (CI).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.obs import NULL_TRACER
from repro.runtime.bench import joint_solve_benchmark

OVERHEAD_LIMIT = 0.02
#: Upper bound on spans the pipeline opens around ONE joint solve
#: (steering_warmup, fusion, delay_alignment, svd_reduction, solver,
#: direct_path, job, batch_evaluate) — counted generously.
SPANS_PER_SOLVE = 16


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "") == "1"


def test_null_span_is_allocation_free():
    """The disabled path reuses one context object for every span."""
    contexts = {id(NULL_TRACER.span(f"name_{i}", attr=i)) for i in range(100)}
    assert len(contexts) == 1
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.spans == []


@pytest.mark.benchmark(group="obs")
def test_disabled_tracing_overhead_within_two_percent():
    iterations = 120 if _smoke() else None
    result = joint_solve_benchmark(repeats=2, max_iterations=iterations)
    solve_s = result["operator_seconds"]

    n = 200_000
    start = time.perf_counter()
    for _ in range(n):
        with NULL_TRACER.span("solver"):
            pass
    per_span_s = (time.perf_counter() - start) / n

    overhead = SPANS_PER_SOLVE * per_span_s / solve_s
    print(
        f"\n-- obs overhead -- null span {per_span_s * 1e9:.0f} ns, "
        f"solve {solve_s * 1e3:.2f} ms, "
        f"budgeted overhead {overhead * 100:.3f}% (limit {OVERHEAD_LIMIT * 100:.0f}%)"
    )
    assert overhead <= OVERHEAD_LIMIT, (
        f"disabled-telemetry overhead {overhead * 100:.2f}% exceeds "
        f"{OVERHEAD_LIMIT * 100:.0f}% of the joint solve"
    )
