"""Streaming-service benchmark: sustained fixes/sec under load (ISSUE 7).

Drives :class:`repro.serve.LocalizationService` with a
:class:`~repro.serve.loadgen.LoadGenerator` population and records the
numbers the acceptance criteria name — sustained fix throughput, fix
latency quantiles (p50/p99), the largest micro-batch observed, warm-start
hit rates — plus a paired accuracy comparison against the offline path
(:func:`~repro.serve.loadgen.offline_reference`: cold, unbatched
``batch_size=1`` solves, byte-identical to the sequential solver).
Results go to ``BENCH_serve.json`` (repo root, or
``REPRO_BENCH_OUTPUT_DIR``).

Scale knobs:

``REPRO_SMOKE=1``
    A 40-client population — what CI runs.  All structural assertions
    (every client fixed, batches reach the size trigger, no accuracy
    regression) stay on; only the population shrinks.

The full run streams 1000 concurrent clients (the acceptance scale);
the accuracy pairing always runs at subsample scale so the slow
unbatched baseline does not dominate the benchmark.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import pytest

from repro.core.grids import AngleGrid, DelayGrid
from repro.obs import MetricsRegistry
from repro.runtime.checkpoint import atomic_write
from repro.serve import (
    BackpressureController,
    BackpressurePolicy,
    BreakerBoard,
    LoadGenerator,
    LocalizationService,
    ServeConfig,
    ServiceSupervisor,
    SnapshotPolicy,
    median_fix_error_m,
    offline_reference,
    replay,
)

#: Service medians may beat the offline baseline (warm starts, fused
#: windows) but must never regress beyond this margin.
ACCURACY_MARGIN_M = 0.15
BATCH_TARGET = 16

#: Snapshots + ack journal + breakers + backpressure may cost at most
#: this fraction of clean-path serve throughput (ISSUE 9 acceptance).
RESILIENCE_BUDGET = 0.02


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "") == "1"


def _output_path() -> Path:
    root = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    base = Path(root) if root else Path(__file__).resolve().parent.parent
    return base / "BENCH_serve.json"


def _merge_payload(updates: dict) -> Path:
    """Fold ``updates`` into BENCH_serve.json without clobbering the
    keys the other benchmark in this file wrote."""
    path = _output_path()
    payload: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict):
            payload = existing
    payload.update(updates)
    atomic_write(path, payload)
    return path


def _config(**overrides) -> ServeConfig:
    # window_packets=2: windows saturate at width 2 by the second
    # sample, so the warm-start chain (same key, same shape) engages
    # within the short stream instead of only in the long-run limit.
    defaults = dict(
        batch_size=BATCH_TARGET,
        max_delay_s=0.05,
        window_packets=2,
        resolution_m=0.5,
        angle_grid=AngleGrid(n_points=61),
        delay_grid=DelayGrid(n_points=21),
        max_iterations=100,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _serve(workload, config) -> tuple:
    service = LocalizationService(
        workload.room,
        workload.access_points,
        array=workload.array,
        layout=workload.layout,
        config=config,
    )
    result = asyncio.run(service.run(replay(workload)))
    return service, result


@pytest.mark.benchmark(group="serve")
def test_streaming_service_throughput_and_accuracy():
    n_clients = 40 if _smoke() else 1000
    generator = LoadGenerator(
        n_clients=n_clients,
        duration_s=1.0,
        sample_interval_s=0.5,
        stationary_fraction=0.3,
        n_aps=3,
        band="high",
        seed=2017,
    )
    workload = generator.generate()
    config = _config()
    _, result = _serve(workload, config)

    # -- structural acceptance --------------------------------------------
    missing = set(workload.clients) - set(result.fix_counts)
    assert not missing, f"{len(missing)} client(s) never got a fix"
    assert result.max_batch_observed >= BATCH_TARGET
    assert result.reject_counts == {}

    latency = result.metrics["serve.fix_latency_s"]
    service_median = median_fix_error_m(result.fixes, workload)

    # -- paired accuracy vs the offline path ------------------------------
    # The offline baseline solves one problem at a time (byte-identical
    # to the sequential solver) with warm starts off, so it is run on a
    # subsample population; the streaming path replays the same packets.
    accuracy_workload = (
        workload
        if n_clients <= 40
        else LoadGenerator(
            n_clients=40,
            duration_s=1.0,
            sample_interval_s=0.5,
            stationary_fraction=0.3,
            n_aps=3,
            band="high",
            seed=2017,
        ).generate()
    )
    offline_fixes = offline_reference(accuracy_workload, config=config)
    offline_median = median_fix_error_m(offline_fixes, accuracy_workload)
    if accuracy_workload is workload:
        paired_median = service_median
    else:
        _, paired = _serve(accuracy_workload, config)
        paired_median = median_fix_error_m(paired.fixes, accuracy_workload)
    assert paired_median <= offline_median + ACCURACY_MARGIN_M, (
        f"streaming path regressed accuracy: {paired_median:.3f} m vs "
        f"offline {offline_median:.3f} m"
    )

    payload = {
        "scale": "smoke" if _smoke() else "full",
        "n_clients": n_clients,
        "n_aps": 3,
        "n_packets": result.n_packets,
        "wall_seconds": result.wall_seconds,
        "fixes": result.n_fixes,
        "fixes_per_second": result.fixes_per_second,
        "fix_latency_s": {
            key: latency[key] for key in ("p50", "p90", "p99", "mean", "count")
        },
        "max_batch_observed": result.max_batch_observed,
        "batch_triggers": result.batch_triggers,
        "warm": result.warm,
        "accuracy": {
            "paired_clients": len(accuracy_workload.clients),
            "service_median_m": paired_median,
            "offline_median_m": offline_median,
            "full_run_median_m": service_median,
        },
        "config": {
            "batch_size": config.batch_size,
            "max_delay_s": config.max_delay_s,
            "window_packets": config.window_packets,
            "angle_points": config.angle_grid.n_points,
            "delay_points": config.delay_grid.n_points,
            "max_iterations": config.max_iterations,
        },
    }
    path = _merge_payload(payload)
    print(
        f"\n-- serve ({n_clients} clients, {result.n_packets} packets) --\n"
        f"fixes {result.n_fixes} @ {result.fixes_per_second:.1f}/s | "
        f"latency p50 {latency['p50'] * 1e3:.1f} ms p99 {latency['p99'] * 1e3:.1f} ms | "
        f"max batch {result.max_batch_observed}\n"
        f"accuracy: service {paired_median:.3f} m vs offline {offline_median:.3f} m "
        f"(full-run median {service_median:.3f} m)\n"
        f"-> {path.name}"
    )


@pytest.mark.benchmark(group="serve")
def test_resilience_overhead_within_budget(tmp_path):
    """Snapshots + journal + breakers + backpressure cost <= 2% (ISSUE 9).

    The supervisor self-accounts its wall time in snapshot writes and
    journal fsyncs (``SupervisorResult.snapshot_seconds`` /
    ``journal_seconds``), so the I/O share is measured inside the run —
    immune to run-to-run solver noise that makes paired plain-vs-
    supervised timings flap.  The per-packet breaker and backpressure
    arithmetic never touches disk; its share comes from a micro-timed
    per-operation cost scaled by the packet count.
    """
    workload = LoadGenerator(
        n_clients=40,
        duration_s=1.0,
        sample_interval_s=0.5,
        stationary_fraction=0.3,
        n_aps=3,
        band="high",
        seed=2017,
    ).generate()
    config = _config()

    def build(clock):
        return LocalizationService(
            workload.room,
            workload.access_points,
            array=workload.array,
            layout=workload.layout,
            config=config,
            clock=clock,
            metrics=MetricsRegistry(),
        )

    trials = []
    for trial in range(2):
        policy = SnapshotPolicy(directory=tmp_path / f"trial-{trial}")
        started = time.perf_counter()
        with ServiceSupervisor(build, policy) as supervisor:
            result = supervisor.run(workload.packets)
        wall = time.perf_counter() - started
        assert result.n_delivered > 0 and result.n_restarts == 0
        trials.append((result, wall))
    # Best-of-n: transient I/O hiccups (a slow fsync on shared CI disk)
    # should not fail the structural budget.
    result, wall = min(trials, key=lambda pair: (
        (pair[0].snapshot_seconds + pair[0].journal_seconds) / pair[1]
    ))
    io_share = (result.snapshot_seconds + result.journal_seconds) / wall

    # Breakers + backpressure: pure in-memory arithmetic, micro-timed.
    names = [ap.name for ap in workload.access_points]
    board = BreakerBoard(names)
    ladder = BackpressureController(BackpressurePolicy(), max_pending=256)
    reps = 10_000
    started = time.perf_counter()
    for index in range(reps):
        board.allow(names[index % len(names)], float(index))
        board.record_success(names[index % len(names)], float(index))
        ladder.update(index % 256)
    per_packet = (time.perf_counter() - started) / reps
    guard_share = per_packet * len(workload.packets) / wall

    overhead = io_share + guard_share
    assert overhead <= RESILIENCE_BUDGET, (
        f"resilience overhead {overhead:.2%} exceeds the "
        f"{RESILIENCE_BUDGET:.0%} budget (snapshot {result.snapshot_seconds:.3f}s "
        f"+ journal {result.journal_seconds:.3f}s over {wall:.3f}s, "
        f"guards {per_packet * 1e6:.1f} us/packet)"
    )

    path = _merge_payload(
        {
            "resilience_overhead": {
                "budget": RESILIENCE_BUDGET,
                "overhead": overhead,
                "io_share": io_share,
                "guard_share": guard_share,
                "wall_seconds": wall,
                "snapshot_seconds": result.snapshot_seconds,
                "journal_seconds": result.journal_seconds,
                "n_snapshots": result.n_snapshots,
                "n_delivered": result.n_delivered,
                "snapshot_every_packets": SnapshotPolicy("unused").every_packets,
                "snapshot_max_duty": SnapshotPolicy("unused").max_duty,
                "n_clients": 40,
                "n_packets": len(workload.packets),
            }
        }
    )
    print(
        f"\n-- serve resilience overhead --\n"
        f"io {io_share:.2%} (snapshots {result.n_snapshots}, "
        f"{result.snapshot_seconds * 1e3:.1f} ms + journal "
        f"{result.journal_seconds * 1e3:.1f} ms of {wall:.2f} s) "
        f"+ guards {guard_share:.2%} = {overhead:.2%} "
        f"(budget {RESILIENCE_BUDGET:.0%})\n"
        f"-> {path.name}"
    )
