"""Shared, cached experiment runs for the benchmark suite.

Figures 6 and 7 come from the *same* measurement campaign (the paper
scores localization and AoA error on one dataset), so the band
experiment is run once per band and cached at module scope.
"""

from __future__ import annotations

from functools import lru_cache

from benchmarks.conftest import bench_scale
from repro.experiments.runner import SnrBandResult, run_snr_band_experiment

SYSTEMS = ("ROArray", "SpotFi", "ArrayTrack")


@lru_cache(maxsize=None)
def band_result(band: str) -> SnrBandResult:
    """The Figs. 6/7 comparison campaign for one SNR band (cached)."""
    return run_snr_band_experiment(
        band,
        n_locations=10 * bench_scale(),
        n_packets=10,
        n_aps=6,
        seed=2017,
    )
