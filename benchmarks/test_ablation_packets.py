"""Ablation — operating range in packets: 1, 5, 15.

Paper §I: ROArray "works with one or a limited number of packets",
unlike clustering- or motion-based baselines.  This bench measures
ROArray's direct-path accuracy as the packet budget grows, at medium
SNR: a single packet must already be usable, more packets must not
hurt.
"""

import numpy as np
import pytest

from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.paths import random_profile
from repro.core.pipeline import RoArrayEstimator
from repro.experiments.runner import evaluation_roarray_config

N_TRIALS = 8
PACKET_BUDGETS = (1, 5, 15)
SNR_DB = 6.0


def run_sweep():
    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    medians = {}
    for budget in PACKET_BUDGETS:
        errors = []
        for trial in range(N_TRIALS):
            rng = np.random.default_rng(200 + trial)
            true_aoa = float(rng.uniform(30.0, 150.0))
            profile = random_profile(rng, n_paths=4, direct_aoa_deg=true_aoa)
            synthesizer = CsiSynthesizer(
                estimator.array, estimator.layout, ImpairmentModel(), seed=trial
            )
            trace = synthesizer.packets(profile, n_packets=budget, snr_db=SNR_DB, rng=rng)
            estimate = estimator.estimate_direct_path(trace)
            errors.append(abs(estimate.aoa_deg - true_aoa))
        medians[budget] = float(np.median(errors))
    return medians


@pytest.mark.benchmark(group="ablation")
def test_ablation_packet_budget(benchmark):
    medians = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print(f"\n=== Ablation: packet budget at {SNR_DB:.0f} dB SNR ===")
    for budget, median in medians.items():
        print(f"{budget:3d} packet(s): median direct-AoA error {median:5.1f}°")

    # A single packet is already usable (the §I operating-range claim)...
    assert medians[1] < 15.0
    # ...and a bigger budget never hurts much.
    assert medians[15] <= medians[1] + 1.0
