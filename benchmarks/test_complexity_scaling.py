"""Paper §III-C — computational complexity of the joint estimator.

Claims benchmarked:

1. Solve cost grows steeply with the grid product Nθ·Nτ (the paper says
   O((NθNτ)³) for the interior-point solve; FISTA's per-iteration cost
   is O(M·L·NθNτ), still dominated by the grid product).
2. Cost is *almost independent* of the number of antennas M and
   subcarriers L (they only set the short dimension of the dictionary).
"""

import time

import numpy as np
import pytest

from repro.channel.array import UniformLinearArray
from repro.channel.csi import synthesize_csi_matrix
from repro.channel.ofdm import SubcarrierLayout
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.joint import estimate_joint_spectrum
from repro.core.steering import SteeringCache


def profile():
    return MultipathProfile(
        paths=[
            PropagationPath(60.0, 40e-9, 1.0, is_direct=True),
            PropagationPath(130.0, 220e-9, 0.5),
        ]
    )


def solve_once(n_antennas: int, n_subcarriers: int, n_angles: int, n_toas: int) -> float:
    """Wall-clock seconds for one joint solve at a given problem size."""
    array = UniformLinearArray(n_antennas=n_antennas, spacing=0.02, wavelength=0.056)
    layout = SubcarrierLayout(n_subcarriers=n_subcarriers, spacing=1.25e6)
    cache = SteeringCache(array, layout, AngleGrid(n_points=n_angles), DelayGrid(n_points=n_toas))
    csi = synthesize_csi_matrix(profile(), array, layout)
    cache.joint_dictionary  # build outside the timed region
    cache.joint_lipschitz
    start = time.perf_counter()
    estimate_joint_spectrum(csi, cache, max_iterations=100)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="complexity")
def test_complexity_grid_dominates_hardware_size(benchmark):
    def run():
        return {
            "grid small (31×11)": solve_once(3, 30, 31, 11),
            "grid medium (61×21)": solve_once(3, 30, 61, 21),
            "grid large (91×41)": solve_once(3, 30, 91, 41),
            "antennas 2 (61×21)": solve_once(2, 30, 61, 21),
            "antennas 3 (61×21)": solve_once(3, 30, 61, 21),
            "subcarriers 16 (61×21)": solve_once(3, 16, 61, 21),
            "subcarriers 30 (61×21)": solve_once(3, 30, 61, 21),
        }

    timings = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== §III-C: joint-solve wall clock vs problem size ===")
    for label, seconds in timings.items():
        print(f"{label:>24}: {seconds * 1e3:8.1f} ms")

    # Grid growth dominates: the large grid costs much more than the small.
    assert timings["grid large (91×41)"] > 2.0 * timings["grid small (31×11)"]

    # Hardware dimensions barely matter (paper: "almost independent of M
    # and Nsub").  Allow generous slack for timer noise.
    assert timings["antennas 3 (61×21)"] < 4.0 * timings["antennas 2 (61×21)"]
    assert timings["subcarriers 30 (61×21)"] < 4.0 * timings["subcarriers 16 (61×21)"]


@pytest.mark.benchmark(group="complexity")
def test_single_joint_solve_throughput(benchmark):
    """Microbenchmark: one full-size (91×50) joint solve, timed properly."""
    array = UniformLinearArray()
    layout = SubcarrierLayout(n_subcarriers=30, spacing=1.25e6)
    cache = SteeringCache(array, layout, AngleGrid(n_points=91), DelayGrid(n_points=50))
    csi = synthesize_csi_matrix(profile(), array, layout)
    cache.joint_dictionary
    cache.joint_lipschitz

    spectrum, _ = benchmark(lambda: estimate_joint_spectrum(csi, cache, max_iterations=100))
    assert spectrum.power.shape == (91, 50)
    # Sanity: the spectrum still localizes the strongest path.
    assert abs(spectrum.peaks(max_peaks=2)[0].aoa_deg - 60.0) <= 4.0
