"""Paper Fig. 3 — the sparse AoA spectrum sharpening over solver iterations.

The paper shows the second-order-cone solve after 3/6/9/14 iterations:
early iterates are feasible but blunt; later ones yield a sharp two-peak
spectrum with one peak on the ground truth.  We replay the same
progression with FISTA iterates; one interior-point iteration is worth
many first-order steps, so the iteration axis is scaled accordingly
(3/10/30/100) while the qualitative progression is identical.
"""

import pytest

from repro.experiments.reporting.text import format_spectrum_ascii
from repro.experiments.runner import run_iteration_progress_experiment

ITERATIONS = (3, 10, 30, 100)


@pytest.mark.benchmark(group="fig3")
def test_fig3_spectrum_sharpens_with_iterations(benchmark):
    points = benchmark.pedantic(
        lambda: run_iteration_progress_experiment(iteration_counts=ITERATIONS, seed=1),
        rounds=1,
        iterations=1,
    )

    print("\n=== Fig. 3: spectrum vs solver iterations (true AoA = 150°) ===")
    for point in points:
        print(
            f"{point.iterations:3d} iterations | closest-peak err "
            f"{point.closest_peak_error_deg:5.1f}° | sharpness {point.sharpness:.3f}"
        )
    print("\nFinal spectrum:")
    print(format_spectrum_ascii(points[-1].spectrum))

    # Figure shape: monotone-ish sharpening, final estimate on the truth.
    assert points[-1].sharpness >= points[0].sharpness
    assert points[-1].closest_peak_error_deg < 5.0
