"""Ablation — what multi-packet fusion and delay alignment each buy.

Paper §III-D argues coherent fusion improves robustness; Fig. 4 shows
why naive fusion would fail (per-packet detection delay).  This bench
isolates the two mechanisms at low SNR:

* single packet (no fusion),
* fusion without delay alignment (joint-support assumption broken),
* full ROArray fusion (align + SVD + ℓ2,1).
"""

import numpy as np
import pytest

from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.paths import random_profile
from repro.core.direct_path import identify_direct_path
from repro.core.fusion import fuse_packets
from repro.core.joint import estimate_joint_spectrum
from repro.core.pipeline import RoArrayEstimator
from repro.experiments.runner import evaluation_roarray_config

N_TRIALS = 8
SNR_DB = 0.0


def run_ablation():
    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    cache = estimator.cache
    errors = {"single packet": [], "fusion w/o alignment": [], "full fusion": []}
    for trial in range(N_TRIALS):
        rng = np.random.default_rng(trial)
        true_aoa = float(rng.uniform(30.0, 150.0))
        profile = random_profile(rng, n_paths=4, direct_aoa_deg=true_aoa)
        synthesizer = CsiSynthesizer(
            estimator.array,
            estimator.layout,
            ImpairmentModel(detection_delay_range_s=200e-9),
            seed=trial,
        )
        trace = synthesizer.packets(profile, n_packets=12, snr_db=SNR_DB, rng=rng)

        single, _ = estimate_joint_spectrum(trace.packet(0), cache)
        unaligned, _ = fuse_packets(trace.csi, cache, align_delays=False)
        full, _ = fuse_packets(trace.csi, cache, align_delays=True)
        for label, spectrum in [
            ("single packet", single),
            ("fusion w/o alignment", unaligned),
            ("full fusion", full),
        ]:
            direct = identify_direct_path(spectrum, peak_floor=0.3, max_paths=6)
            errors[label].append(abs(direct.aoa_deg - true_aoa))
    return {label: float(np.median(values)) for label, values in errors.items()}


@pytest.mark.benchmark(group="ablation")
def test_ablation_fusion_and_alignment(benchmark):
    medians = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print(f"\n=== Ablation: fusion mechanisms at {SNR_DB:.0f} dB SNR ===")
    for label, median in medians.items():
        print(f"{label:>22}: median direct-AoA error {median:5.1f}°")

    # Full fusion must beat the single packet at this SNR, and must not
    # be worse than skipping alignment.
    assert medians["full fusion"] <= medians["single packet"]
    assert medians["full fusion"] <= medians["fusion w/o alignment"] + 1.0
