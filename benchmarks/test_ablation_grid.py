"""Ablation — grid resolution: accuracy vs solve cost (off-grid sensitivity).

The discretized basis (paper §III-A) trades resolution against the
solve cost discussed in §III-C, and real paths fall between grid points
(basis mismatch, Chi et al. [19]).  This bench sweeps the angle-grid
density on off-grid scenes and reports accuracy and wall-clock
together — the ablation behind the default Nθ = 91 working point.
"""

import time

import numpy as np
import pytest

from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.paths import random_profile
from repro.core.direct_path import identify_direct_path
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.joint import estimate_joint_spectrum
from repro.core.steering import SteeringCache
from repro.channel.array import UniformLinearArray
from repro.channel.ofdm import intel5300_layout

N_TRIALS = 5
GRID_SIZES = (31, 61, 91, 181)


def run_sweep():
    array = UniformLinearArray()
    layout = intel5300_layout()
    results = {}
    for n_angles in GRID_SIZES:
        cache = SteeringCache(
            array, layout, AngleGrid(n_points=n_angles), DelayGrid(n_points=25)
        )
        cache.joint_dictionary
        cache.joint_lipschitz
        errors, elapsed = [], 0.0
        for trial in range(N_TRIALS):
            rng = np.random.default_rng(trial)
            true_aoa = float(rng.uniform(30.0, 150.0))  # generically off-grid
            profile = random_profile(rng, n_paths=3, direct_aoa_deg=true_aoa)
            synthesizer = CsiSynthesizer(array, layout, ImpairmentModel(), seed=trial)
            trace = synthesizer.packets(profile, n_packets=1, snr_db=15.0, rng=rng)
            start = time.perf_counter()
            spectrum, _ = estimate_joint_spectrum(trace.packet(0), cache)
            elapsed += time.perf_counter() - start
            direct = identify_direct_path(spectrum, peak_floor=0.3, max_paths=6)
            errors.append(abs(direct.aoa_deg - true_aoa))
        results[n_angles] = (float(np.median(errors)), elapsed / N_TRIALS)
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_grid_resolution(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\n=== Ablation: angle-grid density (off-grid targets, 15 dB) ===")
    for n_angles, (median_error, seconds) in results.items():
        spacing = 180.0 / (n_angles - 1)
        print(
            f"Nθ={n_angles:4d} ({spacing:4.1f}°/cell) | median AoA err "
            f"{median_error:5.1f}° | {seconds * 1e3:7.1f} ms/solve"
        )

    coarse_error = results[31][0]
    fine_error = results[181][0]
    # Finer grids reduce the off-grid quantization error...
    assert fine_error <= coarse_error
    # ...but cost more per solve.
    assert results[181][1] > results[31][1]
    # The default working point already sits near the fine-grid accuracy.
    assert results[91][0] <= coarse_error
