"""Checkpoint overhead budget: journaling must cost <= 2% of a job.

The journal appends one fsync'd JSONL record per finished job, so the
relevant comparison is per-append cost against the joint-solve wall
time at the evaluation working point (the solve runs at least once per
job, the append exactly once).  The payload is a realistic journaled
outcome — a full :class:`~repro.runtime.jobs.JobOutcome` dict with an
analysis attached — not a toy record.

Scale knobs: ``REPRO_SMOKE=1`` shortens the solve pin and the append
loop (CI).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.paths import random_profile
from repro.core.pipeline import RoArrayEstimator
from repro.experiments.runner import evaluation_roarray_config
from repro.runtime import BatchEvaluator, CheckpointPolicy
from repro.runtime.bench import joint_solve_benchmark
from repro.runtime.checkpoint import CheckpointJournal, job_key

OVERHEAD_LIMIT = 0.02


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "") == "1"


def _journaled_payload() -> dict:
    """One realistic job record: a real analysis at a small working point."""
    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    rng = np.random.default_rng(2017)
    profile = random_profile(rng, direct_aoa_deg=150.0)
    synthesizer = CsiSynthesizer(
        estimator.array, estimator.layout, ImpairmentModel(), seed=2017
    )
    trace = synthesizer.packets(profile, n_packets=4, snr_db=12.0, rng=rng)
    outcome = BatchEvaluator(estimator).evaluate([trace]).outcomes[0]
    return outcome.to_dict()


@pytest.mark.benchmark(group="checkpoint")
def test_journal_append_overhead_within_two_percent(tmp_path):
    iterations = 120 if _smoke() else None
    result = joint_solve_benchmark(repeats=2, max_iterations=iterations)
    solve_s = result["operator_seconds"]

    payload = _journaled_payload()
    n = 50 if _smoke() else 200
    best = float("inf")
    for attempt in range(3):
        policy = CheckpointPolicy(
            path=tmp_path / f"bench_{attempt}.jsonl", experiment="bench"
        )
        with CheckpointJournal(policy) as journal:
            journal.open(experiment="bench", config_digest="bench", n_jobs=n)
            start = time.perf_counter()
            for index in range(n):
                journal.append(job_key("bench", index, index), payload, index=index)
            best = min(best, (time.perf_counter() - start) / n)

    overhead = best / solve_s
    print(
        f"\n-- checkpoint overhead -- append {best * 1e6:.1f} us/job, "
        f"solve {solve_s * 1e3:.2f} ms, "
        f"overhead {overhead * 100:.3f}% (limit {OVERHEAD_LIMIT * 100:.0f}%)"
    )
    assert overhead <= OVERHEAD_LIMIT, (
        f"per-job journaling overhead {overhead * 100:.2f}% exceeds "
        f"{OVERHEAD_LIMIT * 100:.0f}% of the joint solve"
    )
