"""Extension — structured co-channel interference (paper §V regime).

The paper names interference as one of the three causes of the low-SNR
regime.  AWGN benchmarks cannot show it: interference is *structured*
(it looks like extra paths from the interferer's directions), so it
attacks subspace methods through their model order while the sparse
formulation simply recovers extra atoms.  This bench interferes the
same victim link at increasing INR and compares ROArray and SpotFi's
direct-path error.
"""

import numpy as np
import pytest

from repro.baselines.spotfi import SpotFiEstimator
from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.interference import Interferer, add_interference
from repro.channel.ofdm import intel5300_layout
from repro.channel.paths import random_profile
from repro.channel.array import UniformLinearArray
from repro.channel.trace import CsiTrace
from repro.core.pipeline import RoArrayEstimator
from repro.experiments.runner import evaluation_roarray_config

N_TRIALS = 6
INRS_DB = (-10.0, 0.0, 6.0)


def run_sweep():
    array = UniformLinearArray()
    layout = intel5300_layout()
    roarray = RoArrayEstimator(config=evaluation_roarray_config())
    spotfi = SpotFiEstimator()

    results = {}
    for inr_db in INRS_DB:
        errors = {"ROArray": [], "SpotFi": []}
        for trial in range(N_TRIALS):
            rng = np.random.default_rng(400 + trial)
            true_aoa = float(rng.uniform(40.0, 140.0))
            victim = random_profile(rng, n_paths=3, direct_aoa_deg=true_aoa, direct_toa_s=30e-9)
            jammer = random_profile(rng, n_paths=2, direct_toa_s=50e-9)
            synthesizer = CsiSynthesizer(array, layout, ImpairmentModel(), seed=trial)
            trace = synthesizer.packets(victim, n_packets=8, snr_db=15.0, rng=rng)
            interfered = add_interference(
                trace.csi,
                [Interferer(jammer, power_db=inr_db, delay_s=300e-9)],
                array,
                layout,
                rng,
            )
            corrupted = CsiTrace(csi=interfered, snr_db=trace.snr_db, rssi_dbm=trace.rssi_dbm)
            for system in (roarray, spotfi):
                estimate = system.estimate_direct_path(corrupted)
                errors[system.name].append(abs(estimate.aoa_deg - true_aoa))
        results[inr_db] = {k: float(np.median(v)) for k, v in errors.items()}
    return results


@pytest.mark.benchmark(group="extension")
def test_extension_cochannel_interference(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\n=== §V extension: direct-path error under co-channel interference ===")
    for inr_db, medians in results.items():
        print(
            f"INR {inr_db:+5.1f} dB | ROArray {medians['ROArray']:5.1f}° "
            f"| SpotFi {medians['SpotFi']:5.1f}°"
        )

    # ROArray stays usable at 0 dB INR (interferer as strong as the victim).
    assert results[0.0]["ROArray"] < 15.0
    # And is never substantially worse than SpotFi as interference grows.
    for inr_db in INRS_DB:
        assert results[inr_db]["ROArray"] <= results[inr_db]["SpotFi"] + 3.0