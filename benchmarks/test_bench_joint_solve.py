"""Joint-solve microbenchmark: dense GEMM vs Kronecker operator (ISSUE 2).

Runs :func:`repro.runtime.bench.joint_solve_benchmark` — the same
measurement ``roarray bench`` prints — asserts the structured path's
speedup and dense-parity acceptance criteria, and writes the numbers to
``BENCH_joint_solve.json`` (repo root, or ``REPRO_BENCH_OUTPUT_DIR``)
so CI can upload the perf trajectory as an artifact.

Scale knobs:

``REPRO_SMOKE=1``
    Fewer timing repeats and a reduced iteration pin — what CI runs.
    The speedup assertion stays on: the two paths run identical
    iteration counts on the same problem, so the ratio is robust even
    on a noisy shared runner.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.runtime.bench import joint_solve_benchmark
from repro.runtime.checkpoint import atomic_write

SPEEDUP_TARGET = 3.0  # acceptance floor; measured ~8x on a laptop core
PARITY_LIMIT = 1e-8


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "") == "1"


def _output_path() -> Path:
    root = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    base = Path(root) if root else Path(__file__).resolve().parent.parent
    return base / "BENCH_joint_solve.json"


@pytest.mark.benchmark(group="runtime")
def test_joint_solve_operator_speedup():
    if _smoke():
        repeats, iterations = 2, 120
    else:
        repeats, iterations = 5, None  # None = the evaluation config's 250

    result = joint_solve_benchmark(repeats=repeats, max_iterations=iterations)

    path = _output_path()
    atomic_write(path, result)
    print(
        f"\n-- joint solve ({result['grid']['rows']}x{result['grid']['columns']}, "
        f"{result['iterations']} iterations) --"
    )
    print(f"dense:    {result['dense_seconds'] * 1e3:8.2f} ms")
    print(f"operator: {result['operator_seconds'] * 1e3:8.2f} ms")
    print(f"speedup:  {result['speedup']:8.2f}x  -> {path.name}")

    assert result["max_relative_spectrum_error"] <= PARITY_LIMIT, (
        "operator and dense spectra disagree beyond acceptance: "
        f"{result['max_relative_spectrum_error']:.2e}"
    )
    assert result["speedup"] >= SPEEDUP_TARGET, (
        f"expected the Kronecker path >= {SPEEDUP_TARGET}x faster than dense, "
        f"got {result['speedup']:.2f}x"
    )
