"""Ablation — ℓ1 sparse recovery vs OMP vs 2-D MUSIC on identical scenes.

The paper's core design decision is ℓ1 convex recovery rather than
greedy pursuit or subspace methods.  This bench runs all three
estimators on the same joint (AoA, ToA) measurements across SNRs and
reports the median direct-path AoA error of each.
"""

import numpy as np
import pytest

from repro.baselines.music import forward_backward_average, music_joint_spectrum
from repro.baselines.spotfi import smoothed_csi_matrix, subarray_joint_steering
from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.paths import random_profile
from repro.core.direct_path import identify_direct_path
from repro.core.joint import coefficients_to_joint_power, estimate_joint_spectrum
from repro.core.pipeline import RoArrayEstimator
from repro.core.steering import vectorize_csi_matrix
from repro.experiments.runner import evaluation_roarray_config
from repro.optim import solve_omp
from repro.spectral.spectrum import JointSpectrum

N_TRIALS = 10
SNRS_DB = (15.0, 2.0)


def run_ablation():
    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    cache = estimator.cache
    music_steering = subarray_joint_steering(
        estimator.array, estimator.layout, cache.angle_grid, cache.delay_grid
    )

    results = {}
    for snr_db in SNRS_DB:
        errors = {
            "l1 (ROArray)": [],
            "OMP (K=2)": [],
            "OMP (K=5)": [],
            "OMP (K=10)": [],
            "2D MUSIC": [],
        }
        for trial in range(N_TRIALS):
            rng = np.random.default_rng(100 + trial)
            true_aoa = float(rng.uniform(30.0, 150.0))
            blockage = 6.0 if snr_db <= 2.0 else 0.0
            profile = random_profile(
                rng, n_paths=4, direct_aoa_deg=true_aoa
            ).with_direct_attenuation(blockage)
            synthesizer = CsiSynthesizer(
                estimator.array, estimator.layout, ImpairmentModel(), seed=trial
            )
            trace = synthesizer.packets(profile, n_packets=1, snr_db=snr_db, rng=rng)
            csi = trace.packet(0)
            y = vectorize_csi_matrix(csi)

            # ℓ1
            spectrum, _ = estimate_joint_spectrum(csi, cache)
            direct = identify_direct_path(spectrum, peak_floor=0.3, max_paths=6)
            errors["l1 (ROArray)"].append(abs(direct.aoa_deg - true_aoa))

            # OMP on the identical dictionary — it *needs* a model order,
            # and its quality swings with it (the §III-A sensitivity).
            for k in (2, 5, 10):
                omp = solve_omp(cache.joint_dictionary, y, sparsity=k)
                power = coefficients_to_joint_power(
                    omp.x, cache.angle_grid.n_points, cache.delay_grid.n_points
                )
                omp_spectrum = JointSpectrum(
                    cache.angle_grid.angles_deg, cache.delay_grid.toas_s, power
                )
                direct = identify_direct_path(omp_spectrum, peak_floor=0.3, max_paths=6)
                errors[f"OMP (K={k})"].append(abs(direct.aoa_deg - true_aoa))

            # SpotFi-style smoothed 2-D MUSIC.
            smoothed = smoothed_csi_matrix(csi)
            covariance = forward_backward_average(
                smoothed @ smoothed.conj().T / smoothed.shape[1]
            )
            music = music_joint_spectrum(
                covariance,
                music_steering,
                cache.angle_grid.angles_deg,
                cache.delay_grid.toas_s,
                n_sources=5,
            )
            direct = identify_direct_path(music, peak_floor=0.3, max_paths=6)
            errors["2D MUSIC"].append(abs(direct.aoa_deg - true_aoa))

        results[snr_db] = {k: float(np.median(v)) for k, v in errors.items()}
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_l1_vs_omp_vs_music(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print("\n=== Ablation: estimator family, single packet ===")
    for snr_db, medians in results.items():
        row = " | ".join(f"{k}: {v:5.1f}°" for k, v in medians.items())
        print(f"SNR {snr_db:+5.1f} dB (blocked LoS at low SNR): {row}")

    low = results[2.0]
    # At low SNR with a blocked LoS, ℓ1 must beat the subspace method...
    assert low["l1 (ROArray)"] <= low["2D MUSIC"] + 1.0
    # ...and, *without* being told a model order, must be at least as
    # good as OMP run with a wrong one (the §III-A sensitivity claim).
    worst_omp = max(low[f"OMP (K={k})"] for k in (2, 5, 10))
    assert low["l1 (ROArray)"] <= worst_omp + 1.0
