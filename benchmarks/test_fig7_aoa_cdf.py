"""Paper Fig. 7 — direct-path AoA-error CDFs per SNR band.

Paper medians (degrees):

====== ========= ======== ============
band   ROArray   SpotFi   ArrayTrack
====== ========= ======== ============
high     6.7       6.62      9.10
medium   7.32      7.40     10.0
low      7.9      12.3      15.2
====== ========= ======== ============

Metric, per the paper §IV-C: the difference between the ground-truth
direct-path AoA and the *closest peak* in each system's spectrum.
Shape targets: all three are close at high/medium SNR; at low SNR
ROArray degrades only mildly while MUSIC-based systems fall off.
"""

import pytest

from benchmarks._shared import SYSTEMS, band_result
from repro.experiments.reporting.text import format_comparison

THRESHOLDS_DEG = (2.0, 5.0, 10.0, 20.0, 40.0)


def run_all_bands():
    return {band: band_result(band) for band in ("high", "medium", "low")}


@pytest.mark.benchmark(group="fig7")
def test_fig7_aoa_error_cdfs(benchmark):
    results = benchmark.pedantic(run_all_bands, rounds=1, iterations=1)

    closest, direct = {}, {}
    for band, result in results.items():
        closest[band] = {name: result.cdf(name, kind="aoa") for name in SYSTEMS}
        direct[band] = {name: result.cdf(name, kind="direct_aoa") for name in SYSTEMS}
        print(f"\n=== Fig. 7 ({band} SNR): closest-peak AoA error ===")
        print(format_comparison(closest[band], unit="deg", thresholds=THRESHOLDS_DEG))
        print(f"--- ({band} SNR) chosen-direct-path AoA error (stricter) ---")
        print(format_comparison(direct[band], unit="deg"))

    # High SNR: ROArray ≈ SpotFi (within a factor), ArrayTrack behind.
    high = closest["high"]
    assert high["ROArray"].median <= high["ArrayTrack"].median + 2.0

    # Low SNR: ROArray's direct-path identification degrades least.
    low_direct = direct["low"]
    assert low_direct["ROArray"].median <= low_direct["SpotFi"].median
    assert low_direct["ROArray"].median <= low_direct["ArrayTrack"].median

    # ROArray low-SNR degradation is mild (paper: 6.7° → 7.9°).
    ratio = direct["low"]["ROArray"].median / max(direct["high"]["ROArray"].median, 1.0)
    assert ratio < 4.0
