"""Paper Fig. 8a — ROArray localization error vs number of APs.

Paper medians: 1.04 m (5 APs), 1.56 m (4 APs), 2.79 m (3 APs) — accuracy
improves monotonically with AP density because the RSSI-weighted
localizer can lean on more high-quality direct paths.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.runner import run_ap_density_experiment

AP_COUNTS = (5, 4, 3)


@pytest.mark.benchmark(group="fig8a")
def test_fig8a_accuracy_vs_ap_density(benchmark):
    results = benchmark.pedantic(
        lambda: run_ap_density_experiment(
            ap_counts=AP_COUNTS,
            n_locations=8 * bench_scale(),
            n_packets=10,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    print("\n=== Fig. 8a: ROArray localization error vs #APs (paired scenes) ===")
    for n_aps in AP_COUNTS:
        cdf = results[n_aps]
        print(f"{n_aps} APs | median {cdf.median:.2f} m | p90 {cdf.percentile(90):.2f} m")

    # Figure shape: more APs → better accuracy, in the median and the
    # tail (allow small-sample slack between adjacent counts, but the
    # endpoints must be well ordered).
    assert results[5].median < results[3].median
    assert results[5].percentile(90) <= results[3].percentile(90)
    assert results[4].median <= results[3].median + 0.25
    assert results[5].median <= results[4].median + 0.25
