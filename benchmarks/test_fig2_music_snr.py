"""Paper Fig. 2 — SpotFi's (MUSIC) AoA spectrum vs SNR.

The paper pins the direct path at 150° and shows the spectrum staying
sharp at 18/7 dB, drifting ~12° at 2 dB and collapsing below 0 dB.  This
benchmark regenerates the four panels and prints each panel's
closest-peak error and beam sharpness, plus ROArray's spectra on the
same data for contrast.
"""

import pytest

from repro.core.pipeline import RoArrayEstimator
from repro.experiments.reporting.text import format_spectrum_ascii
from repro.experiments.runner import evaluation_roarray_config, run_music_snr_experiment

SNRS_DB = (18.0, 7.0, 2.0, -2.0)
TRUE_AOA = 150.0


def run_both_systems():
    spotfi = run_music_snr_experiment(snrs_db=SNRS_DB, true_aoa_deg=TRUE_AOA, n_packets=15)
    roarray = run_music_snr_experiment(
        snrs_db=SNRS_DB,
        true_aoa_deg=TRUE_AOA,
        n_packets=15,
        system=RoArrayEstimator(config=evaluation_roarray_config()),
    )
    return spotfi, roarray


@pytest.mark.benchmark(group="fig2")
def test_fig2_music_spectrum_degrades_with_snr(benchmark):
    spotfi, roarray = benchmark.pedantic(run_both_systems, rounds=1, iterations=1)

    print("\n=== Fig. 2: AoA spectra vs SNR (true AoA = 150°) ===")
    for sf_point, ro_point in zip(spotfi, roarray):
        print(
            f"SNR {sf_point.snr_db:+5.1f} dB | SpotFi(MUSIC): err "
            f"{sf_point.closest_peak_error_deg:5.1f}°, sharpness {sf_point.sharpness:.3f} "
            f"| ROArray: err {ro_point.closest_peak_error_deg:5.1f}°, "
            f"sharpness {ro_point.sharpness:.3f}"
        )
    print("\nSpotFi spectrum at lowest SNR:")
    print(format_spectrum_ascii(spotfi[-1].spectrum))
    print("ROArray spectrum at lowest SNR:")
    print(format_spectrum_ascii(roarray[-1].spectrum))

    # Figure shape: MUSIC is accurate at high SNR and degraded at low SNR.
    assert spotfi[0].closest_peak_error_deg < 6.0
    assert spotfi[-1].closest_peak_error_deg >= spotfi[0].closest_peak_error_deg
    # MUSIC's beam dulls as SNR drops (panel (a) vs (d)).
    assert spotfi[-1].sharpness <= spotfi[0].sharpness
    # The sparse estimator keeps the peak near the truth where MUSIC drifts.
    assert roarray[-1].closest_peak_error_deg <= spotfi[-1].closest_peak_error_deg
    assert roarray[-1].closest_peak_error_deg < 10.0
