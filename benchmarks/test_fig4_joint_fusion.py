"""Paper Fig. 4 — joint ToA&AoA spectra: single packets vs 30-packet fusion.

Fig. 4a/b show that two packets of the *same static link* put the
spectrum ridge at different delays (random packet detection delay);
Fig. 4c shows that after delay estimation and multi-packet fusion the
spectrum is sharper and the AoA estimate tighter.
"""

import numpy as np
import pytest

from repro.experiments.runner import run_fusion_experiment


@pytest.mark.benchmark(group="fig4")
def test_fig4_single_vs_fused_joint_spectrum(benchmark):
    result = benchmark.pedantic(
        lambda: run_fusion_experiment(n_packets=30, n_single_examples=3, snr_db=8.0),
        rounds=1,
        iterations=1,
    )

    print("\n=== Fig. 4: joint (ToA, AoA) spectra, single packets vs fusion ===")
    for i, (toa, error, sharpness) in enumerate(
        zip(result.single_direct_toas_s, result.single_direct_aoa_errors_deg, result.single_sharpness)
    ):
        print(
            f"packet {chr(ord('A') + i)}: direct ToA {toa * 1e9:6.1f} ns | "
            f"AoA err {error:5.1f}° | sharpness {sharpness:.3f}"
        )
    print(
        f"fused 30p: AoA err {result.fused_direct_aoa_error_deg:5.1f}° | "
        f"sharpness {result.fused_sharpness:.3f}"
    )

    # Fig. 4a vs 4b: same link, different detection delay → ToA ridges differ.
    toas = np.array(result.single_direct_toas_s)
    assert toas.max() - toas.min() > 0.0

    # Fig. 4c: fusion at least matches the single-packet estimates and
    # concentrates the spectrum.
    assert result.fused_direct_aoa_error_deg <= max(result.single_direct_aoa_errors_deg) + 1e-9
    assert result.fused_sharpness >= 0.8 * max(result.single_sharpness)
