"""Batched-solve benchmark: solve_batch vs the per-problem loop (ISSUE 6).

Runs :func:`repro.runtime.bench.batched_solve_benchmark` — the same
measurement ``roarray bench --batched`` prints — asserts the acceptance
criteria (batched numpy ≥ 2× the sequential loop at batch 64, float64
deviation within the 1e-12 parity budget), and writes the numbers to
``BENCH_batched_solve.json`` (repo root, or ``REPRO_BENCH_OUTPUT_DIR``)
so CI can upload the perf trajectory next to ``BENCH_joint_solve.json``.

Scale knobs:

``REPRO_SMOKE=1``
    Fewer timing repeats and a reduced iteration pin — what CI runs.
    The speedup assertion stays on: both paths run identical pinned
    iteration counts on the same problems, so the ratio is robust even
    on a noisy shared runner.
``REPRO_BENCH_BACKEND``
    Backend for an optional second measurement (e.g. ``torch``); the
    acceptance assertions always bind to the numpy run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.optim.backend import available_backends
from repro.runtime.bench import batched_solve_benchmark
from repro.runtime.checkpoint import atomic_write

SPEEDUP_TARGET = 2.0  # acceptance floor at batch 64; measured ~2.5x
PARITY_LIMIT = 1e-12
BATCH_SIZES = (1, 8, 64)


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "") == "1"


def _output_path() -> Path:
    root = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    base = Path(root) if root else Path(__file__).resolve().parent.parent
    return base / "BENCH_batched_solve.json"


@pytest.mark.benchmark(group="runtime")
def test_batched_solve_speedup():
    if _smoke():
        repeats, iterations = 3, 40
    else:
        repeats, iterations = 3, None  # None = the evaluation config's pin

    result = batched_solve_benchmark(
        batch_sizes=BATCH_SIZES, repeats=repeats, max_iterations=iterations
    )

    extra_backend = os.environ.get("REPRO_BENCH_BACKEND", "")
    if extra_backend and extra_backend != "numpy":
        if extra_backend in available_backends():
            result["extra"] = batched_solve_benchmark(
                backend=extra_backend,
                batch_sizes=BATCH_SIZES,
                repeats=repeats,
                max_iterations=iterations,
            )
        else:
            result["extra"] = {"backend": extra_backend, "skipped": "not installed"}

    path = _output_path()
    atomic_write(path, result)
    print(
        f"\n-- batched solve ({result['grid']['rows']}x{result['grid']['columns']}, "
        f"{result['iterations']} iterations, backend {result['backend']}) --"
    )
    for row in result["batches"]:
        print(
            f"batch {row['batch_size']:>3}: loop {row['loop_seconds'] * 1e3:8.2f} ms | "
            f"batched {row['batched_seconds'] * 1e3:8.2f} ms | "
            f"speedup {row['speedup']:5.2f}x | dev {row['max_relative_deviation']:.2e}"
        )
    print(f"-> {path.name}")

    worst_deviation = max(row["max_relative_deviation"] for row in result["batches"])
    assert worst_deviation <= PARITY_LIMIT, (
        "batched float64 solutions drift beyond the parity budget: "
        f"{worst_deviation:.2e} > {PARITY_LIMIT:.0e}"
    )
    largest = result["batches"][-1]
    assert largest["batch_size"] >= 64
    assert largest["speedup"] >= SPEEDUP_TARGET, (
        f"expected solve_batch >= {SPEEDUP_TARGET}x the sequential loop at "
        f"batch {largest['batch_size']}, got {largest['speedup']:.2f}x"
    )
