"""Paper Fig. 6 — localization-error CDFs per SNR band.

Paper medians (meters):

====== ========= ======== ============
band   ROArray   SpotFi   ArrayTrack
====== ========= ======== ============
high     0.63      0.64      2.3
low      0.91      2.61      3.52
====== ========= ======== ============

(90th percentile at high SNR: 2.66 / 2.51 / 5.66.)

The reproduction targets the *shape*: ROArray ≈ SpotFi ≪ ArrayTrack at
high SNR; ROArray ≪ SpotFi < ArrayTrack at low SNR.
"""

import pytest

from benchmarks._shared import SYSTEMS, band_result
from repro.experiments.reporting.text import format_comparison

THRESHOLDS_M = (0.5, 1.0, 2.0, 4.0, 8.0)


def run_all_bands():
    return {band: band_result(band) for band in ("high", "medium", "low")}


@pytest.mark.benchmark(group="fig6")
def test_fig6_localization_error_cdfs(benchmark):
    results = benchmark.pedantic(run_all_bands, rounds=1, iterations=1)

    cdfs = {}
    for band, result in results.items():
        cdfs[band] = {name: result.cdf(name) for name in SYSTEMS}
        print(f"\n=== Fig. 6 ({band} SNR): localization error ===")
        print(format_comparison(cdfs[band], unit="m", thresholds=THRESHOLDS_M))

    high, low = cdfs["high"], cdfs["low"]

    # High SNR: ROArray comparable to SpotFi, both well ahead of ArrayTrack.
    assert high["ROArray"].median <= 1.5 * high["SpotFi"].median + 0.3
    assert high["ROArray"].median < high["ArrayTrack"].median
    assert high["SpotFi"].median < high["ArrayTrack"].median

    # Low SNR: the headline result — ROArray clearly best.
    assert low["ROArray"].median < low["SpotFi"].median
    assert low["ROArray"].median < low["ArrayTrack"].median
    # The paper's gap is ~2.9×/3.9×; require at least ~1.8× to confirm shape.
    assert low["SpotFi"].median / low["ROArray"].median > 1.8

    # Within each system, low SNR is no easier than high SNR.
    assert low["SpotFi"].median >= high["SpotFi"].median
