"""Golden-spectrum regression tests.

The whole evaluation rests on the spectra these fixtures pin: ROArray's
fused joint (AoA, ToA) spectrum and the baselines' AoA outputs on one
seeded trace at the paper's evaluation working point.  If a solver,
fusion, or runtime change shifts any of them beyond tight numerical
tolerance, these tests fail — silently "slightly different" accuracy is
the failure mode they exist to catch.

To re-baseline after a *deliberate* algorithm change::

    PYTHONPATH=src python tests/fixtures/generate_golden.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.baselines.arraytrack import ArrayTrackEstimator
from repro.baselines.spotfi import SpotFiEstimator
from repro.channel.trace import CsiTrace
from repro.core.pipeline import RoArrayEstimator
from repro.experiments.runner import evaluation_roarray_config
from tests.fixtures.generate_golden import golden_trace

FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures"

# Tight enough that any algorithmic change trips the test; loose enough
# to absorb BLAS/LAPACK rounding differences across platforms.
RTOL = 1e-5
ATOL = 1e-8


@pytest.fixture(scope="module")
def trace() -> CsiTrace:
    return CsiTrace.load(FIXTURE_DIR / "golden_trace.npz")


@pytest.fixture(scope="module")
def golden():
    with np.load(FIXTURE_DIR / "golden_outputs.npz") as data:
        return {key: data[key] for key in data.files}


class TestFixtureIntegrity:
    def test_trace_fixture_matches_its_recipe(self, trace):
        """The committed trace is exactly what the generator produces —
        guards against fixture/generator drift (e.g. a channel-model
        change that silently invalidates the pinned outputs)."""
        regenerated = golden_trace()
        np.testing.assert_allclose(trace.csi, regenerated.csi, rtol=1e-12, atol=1e-15)
        assert trace.snr_db == regenerated.snr_db
        assert trace.direct_aoa_deg == regenerated.direct_aoa_deg


class TestRoArrayGoldenSpectrum:
    def test_joint_spectrum_matches(self, trace, golden):
        spectrum = RoArrayEstimator(config=evaluation_roarray_config()).joint_spectrum(
            trace
        ).normalized()
        np.testing.assert_allclose(spectrum.angles_deg, golden["joint_angles_deg"])
        np.testing.assert_allclose(spectrum.toas_s, golden["joint_toas_s"])
        np.testing.assert_allclose(
            spectrum.power, golden["joint_power"], rtol=RTOL, atol=ATOL
        )

    def test_direct_path_matches(self, trace, golden):
        analysis = RoArrayEstimator(config=evaluation_roarray_config()).analyze(trace)
        assert analysis.direct.aoa_deg == pytest.approx(
            float(golden["roarray_direct_aoa_deg"]), abs=1e-9
        )
        assert analysis.direct.toa_s == pytest.approx(
            float(golden["roarray_direct_toa_s"]), abs=1e-15
        )
        np.testing.assert_allclose(
            np.array(analysis.candidate_aoas_deg),
            golden["roarray_candidate_aoas_deg"],
            atol=1e-9,
        )

    def test_direct_path_is_accurate(self, golden):
        """Sanity anchor: the pinned output itself is a good estimate —
        a re-baseline that regresses accuracy cannot slip through."""
        error = abs(float(golden["roarray_direct_aoa_deg"]) - float(golden["true_aoa_deg"]))
        assert error <= 2.0


class TestBaselineGoldenOutputs:
    def test_spotfi_spectrum_and_estimate(self, trace, golden):
        spectrum = SpotFiEstimator().aoa_spectrum(trace).normalized()
        np.testing.assert_allclose(spectrum.angles_deg, golden["spotfi_angles_deg"])
        np.testing.assert_allclose(
            spectrum.power, golden["spotfi_power"], rtol=RTOL, atol=ATOL
        )
        estimate = SpotFiEstimator().analyze(trace).direct.aoa_deg
        assert estimate == pytest.approx(float(golden["spotfi_direct_aoa_deg"]), abs=1e-6)

    def test_arraytrack_spectrum_and_estimate(self, trace, golden):
        spectrum = ArrayTrackEstimator().aoa_spectrum(trace).normalized()
        np.testing.assert_allclose(spectrum.angles_deg, golden["arraytrack_angles_deg"])
        np.testing.assert_allclose(
            spectrum.power, golden["arraytrack_power"], rtol=RTOL, atol=ATOL
        )
        estimate = ArrayTrackEstimator().analyze(trace).direct.aoa_deg
        assert estimate == pytest.approx(
            float(golden["arraytrack_direct_aoa_deg"]), abs=1e-6
        )


class TestGoldenUnderTracing:
    """Telemetry observes — spectra must be byte-identical either way."""

    def test_traced_joint_spectrum_is_byte_identical(self, trace, golden):
        from repro.obs import Tracer

        tracer = Tracer()
        traced = RoArrayEstimator(
            config=evaluation_roarray_config(), tracer=tracer
        ).joint_spectrum(trace).normalized()
        plain = RoArrayEstimator(config=evaluation_roarray_config()).joint_spectrum(
            trace
        ).normalized()
        np.testing.assert_array_equal(traced.power, plain.power)
        np.testing.assert_allclose(traced.power, golden["joint_power"], rtol=RTOL, atol=ATOL)
        # The run actually recorded: a fusion span with solver telemetry.
        (fusion,) = tracer.find("fusion")
        (solver,) = tracer.find("solver")
        assert solver.attributes["convergence"]["solver"] == "mmv_fista"
        assert fusion.wall_s > 0.0

    def test_traced_batch_is_byte_identical(self, trace, golden):
        from repro.obs import Tracer
        from repro.runtime import BatchEvaluator

        plain = BatchEvaluator(
            RoArrayEstimator(config=evaluation_roarray_config()), workers=0
        ).evaluate([trace])
        traced = BatchEvaluator(
            RoArrayEstimator(config=evaluation_roarray_config()),
            workers=0,
            tracer=Tracer(),
        ).evaluate([trace])
        assert (
            traced.strict_analyses()[0].direct.aoa_deg
            == plain.strict_analyses()[0].direct.aoa_deg
        )
        assert traced.strict_analyses()[0].direct.aoa_deg == pytest.approx(
            float(golden["roarray_direct_aoa_deg"]), abs=1e-9
        )


class TestGoldenThroughBatchedSolve:
    """The batched engine against the pinned working point (ISSUE 6).

    A singleton batch must be byte-identical to the sequential solver on
    the golden packet; the full six-packet trace solved as one batch
    must match the per-packet loop within the 1e-12 float64 parity
    budget — per problem, iteration counts included.
    """

    @pytest.fixture(scope="class")
    def joint_setup(self, trace):
        from repro.core.steering import vectorize_csi_matrix
        from repro.optim.tuning import residual_kappa

        estimator = RoArrayEstimator(config=evaluation_roarray_config())
        cache, config = estimator.cache, estimator.config
        operator = cache.joint_operator
        ys = [vectorize_csi_matrix(trace.packet(i)) for i in range(trace.n_packets)]
        kappas = [
            residual_kappa(operator, y, fraction=config.kappa_fraction) for y in ys
        ]
        return operator, cache.joint_lipschitz, config, ys, kappas

    def test_singleton_batch_is_byte_identical(self, joint_setup):
        from repro.optim import solve_batch, solve_lasso_fista

        operator, lipschitz, config, ys, kappas = joint_setup
        solo = solve_lasso_fista(
            operator, ys[0], kappas[0],
            max_iterations=config.max_iterations, lipschitz=lipschitz,
        )
        batch = solve_batch(
            operator, ys[:1], method="fista", kappa=kappas[0],
            max_iterations=config.max_iterations, lipschitz=lipschitz,
        )
        np.testing.assert_array_equal(batch.to_numpy()[0], solo.x)
        assert batch.iterations[0] == solo.iterations

    def test_full_trace_batch_matches_sequential_loop(self, joint_setup):
        from repro.optim import solve_batch, solve_lasso_fista

        operator, lipschitz, config, ys, kappas = joint_setup
        batch = solve_batch(
            operator, ys, method="fista", kappa=kappas,
            max_iterations=config.max_iterations, lipschitz=lipschitz,
        )
        for index, (y, kappa) in enumerate(zip(ys, kappas)):
            solo = solve_lasso_fista(
                operator, y, kappa,
                max_iterations=config.max_iterations, lipschitz=lipschitz,
            )
            scale = max(1.0, float(np.abs(solo.x).max()))
            deviation = float(np.abs(batch.to_numpy()[index] - solo.x).max())
            assert deviation <= 1e-12 * scale
            assert batch.iterations[index] == solo.iterations

    def test_derived_kappas_match_the_sequential_derivation(self, joint_setup):
        from repro.optim import solve_batch

        operator, lipschitz, config, ys, kappas = joint_setup
        batch = solve_batch(
            operator, ys, method="fista",
            kappa_fraction=config.kappa_fraction,
            max_iterations=5, tolerance=0.0, lipschitz=lipschitz,
        )
        assert batch.kappas == tuple(kappas)


class TestGoldenThroughBatchRuntime:
    def test_batch_runtime_reproduces_golden_direct_path(self, trace, golden):
        """The runtime layer must not perturb pinned outputs either."""
        from repro.runtime import BatchEvaluator

        estimator = RoArrayEstimator(config=evaluation_roarray_config())
        result = BatchEvaluator(estimator, workers=0).evaluate([trace])
        direct = result.strict_analyses()[0].direct
        assert direct.aoa_deg == pytest.approx(
            float(golden["roarray_direct_aoa_deg"]), abs=1e-9
        )
