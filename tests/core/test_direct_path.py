"""Tests for smallest-ToA direct-path identification."""

import numpy as np
import pytest

from repro.core.direct_path import ApAnalysis, DirectPathEstimate, identify_direct_path
from repro.spectral.spectrum import JointSpectrum


def spectrum_with(cells):
    """cells: list of (angle_index, toa_index, power) on a 19×11 grid."""
    angles = np.linspace(0, 180, 19)
    toas = np.linspace(0, 800e-9, 11)
    power = np.zeros((19, 11))
    for i, j, p in cells:
        power[i, j] = p
    return JointSpectrum(angles, toas, power)


class TestIdentifyDirectPath:
    def test_picks_earliest_not_strongest(self):
        spectrum = spectrum_with([(15, 8, 1.0), (5, 2, 0.5)])
        estimate = identify_direct_path(spectrum)
        assert estimate.toa_s == pytest.approx(2 * 80e-9)
        assert estimate.aoa_deg == pytest.approx(50.0)
        assert estimate.n_paths == 2

    def test_subthreshold_early_blip_ignored(self):
        spectrum = spectrum_with([(15, 8, 1.0), (2, 0, 0.05)])
        estimate = identify_direct_path(spectrum, peak_floor=0.3)
        assert estimate.toa_s == pytest.approx(8 * 80e-9)

    def test_max_paths_caps_candidates(self):
        cells = [(i, 10 - i, 1.0 - 0.1 * i) for i in range(8)]
        spectrum = spectrum_with(cells)
        generous = identify_direct_path(spectrum, max_paths=8, peak_floor=0.05)
        strict = identify_direct_path(spectrum, max_paths=2, peak_floor=0.05)
        # With only the 2 strongest peaks considered, the earliest of those wins.
        assert strict.toa_s >= generous.toa_s

    def test_flat_spectrum_fallback(self):
        spectrum = spectrum_with([])
        estimate = identify_direct_path(spectrum)
        assert estimate.n_paths == 1
        assert 0 <= estimate.aoa_deg <= 180

    def test_single_peak(self):
        spectrum = spectrum_with([(9, 5, 1.0)])
        estimate = identify_direct_path(spectrum)
        assert estimate.aoa_deg == pytest.approx(90.0)
        assert estimate.power == 1.0


class TestDirectPathEstimate:
    def test_rejects_nan_aoa(self):
        with pytest.raises(ValueError):
            DirectPathEstimate(aoa_deg=float("nan"), toa_s=0.0, power=1.0, n_paths=1)

    def test_nan_toa_allowed(self):
        """ArrayTrack reports no ToA; the estimate must still be valid."""
        estimate = DirectPathEstimate(aoa_deg=90.0, toa_s=float("nan"), power=1.0, n_paths=1)
        assert np.isnan(estimate.toa_s)


class TestApAnalysis:
    def test_closest_aoa_error_uses_candidates(self):
        direct = DirectPathEstimate(aoa_deg=60.0, toa_s=1e-9, power=1.0, n_paths=3)
        analysis = ApAnalysis(direct=direct, candidate_aoas_deg=(60.0, 118.0, 150.0))
        assert analysis.closest_aoa_error(120.0) == pytest.approx(2.0)

    def test_falls_back_to_direct_when_no_candidates(self):
        direct = DirectPathEstimate(aoa_deg=60.0, toa_s=1e-9, power=1.0, n_paths=1)
        analysis = ApAnalysis(direct=direct, candidate_aoas_deg=())
        assert analysis.closest_aoa_error(70.0) == pytest.approx(10.0)
