"""Tests for 2-D (azimuth, elevation) sparse AoA estimation."""

import numpy as np
import pytest

from repro.channel.array2d import PlanarArray
from repro.core.aoa2d import (
    AzimuthElevationGrid,
    PlanarSpectrum,
    estimate_aoa2d_spectrum,
)
from repro.exceptions import ConfigurationError, SolverError

GRID = AzimuthElevationGrid(n_azimuths=36, n_elevations=7, max_elevation_deg=60.0)


@pytest.fixture
def planar():
    return PlanarArray(n_x=3, n_y=3)


def on_grid_direction(index_az=9, index_el=3):
    return float(GRID.azimuths_deg[index_az]), float(GRID.elevations_deg[index_el])


class TestRecovery:
    def test_recovers_single_direction(self, planar):
        azimuth, elevation = on_grid_direction()
        y = planar.steering_vector(azimuth, elevation)
        spectrum, result = estimate_aoa2d_spectrum(y, planar, GRID)
        found_az, found_el = spectrum.strongest_direction()
        assert found_az == pytest.approx(azimuth, abs=10.0)
        assert found_el == pytest.approx(elevation, abs=10.0)

    def test_recovers_two_directions(self, planar, rng):
        az1, el1 = on_grid_direction(4, 2)
        az2, el2 = on_grid_direction(22, 5)
        y = planar.steering_vector(az1, el1) + 0.8 * planar.steering_vector(az2, el2)
        y = y + 0.02 * (rng.standard_normal(9) + 1j * rng.standard_normal(9))
        spectrum, _ = estimate_aoa2d_spectrum(y, planar, GRID)
        assert spectrum.closest_azimuth_error(az1) <= 10.0
        assert spectrum.closest_azimuth_error(az2) <= 10.0

    def test_multi_snapshot_input(self, planar, rng):
        azimuth, elevation = on_grid_direction()
        base = planar.steering_vector(azimuth, elevation)
        snapshots = np.stack([base * np.exp(1j * rng.uniform()) for _ in range(4)], axis=1)
        spectrum, _ = estimate_aoa2d_spectrum(snapshots, planar, GRID)
        assert spectrum.closest_azimuth_error(azimuth) <= 10.0

    def test_azimuth_error_wraps(self):
        spectrum = PlanarSpectrum(
            azimuths_deg=np.array([0.0, 350.0]),
            elevations_deg=np.array([0.0, 30.0]),
            power=np.array([[0.0, 0.0], [1.0, 0.0]]),
        )
        assert spectrum.closest_azimuth_error(5.0) == pytest.approx(15.0)


class TestValidation:
    def test_rejects_sensor_mismatch(self, planar):
        with pytest.raises(SolverError, match="sensors"):
            estimate_aoa2d_spectrum(np.zeros(5, dtype=complex), planar, GRID)

    def test_rejects_3d_input(self, planar):
        with pytest.raises(SolverError):
            estimate_aoa2d_spectrum(np.zeros((9, 2, 2), dtype=complex), planar, GRID)

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            AzimuthElevationGrid(n_azimuths=1)
        with pytest.raises(ConfigurationError):
            AzimuthElevationGrid(max_elevation_deg=0.0)

    def test_spectrum_shape_validation(self):
        with pytest.raises(ConfigurationError):
            PlanarSpectrum(np.zeros(3), np.zeros(2), np.zeros((2, 3)))
