"""Tests for the Kalman tracker over localization fixes."""

import numpy as np
import pytest

from repro.core.tracking import KalmanTracker, track_fixes
from repro.exceptions import ConfigurationError


def noisy_line_fixes(rng, n=30, noise=0.3, dt=0.5, vx=1.0):
    """Fixes along a straight line with Gaussian fix noise."""
    fixes = []
    for i in range(n):
        t = i * dt
        truth = np.array([vx * t, 2.0])
        fix = truth + rng.normal(0, noise, 2)
        fixes.append((t, (float(fix[0]), float(fix[1])), tuple(truth)))
    return fixes


class TestTracking:
    def test_first_fix_initializes(self):
        tracker = KalmanTracker()
        state = tracker.update(0.0, (3.0, 4.0))
        assert state.position == (3.0, 4.0)
        assert state.velocity == (0.0, 0.0)
        assert state.accepted
        assert tracker.initialized

    def test_smooths_noise(self, rng):
        fixes = noisy_line_fixes(rng)
        tracker = KalmanTracker(measurement_noise_m=0.3)
        raw_errors, tracked_errors = [], []
        for t, fix, truth in fixes:
            state = tracker.update(t, fix)
            raw_errors.append(np.linalg.norm(np.array(fix) - truth))
            tracked_errors.append(np.linalg.norm(np.array(state.position) - truth))
        # Steady-state (after convergence) tracking beats raw fixes.
        assert np.mean(tracked_errors[10:]) < np.mean(raw_errors[10:])

    def test_estimates_velocity(self, rng):
        fixes = noisy_line_fixes(rng, n=40, noise=0.1, vx=1.2)
        tracker = KalmanTracker(measurement_noise_m=0.1)
        state = None
        for t, fix, _ in fixes:
            state = tracker.update(t, fix)
        assert state.velocity[0] == pytest.approx(1.2, abs=0.3)
        assert state.velocity[1] == pytest.approx(0.0, abs=0.3)

    def test_gates_gross_outlier(self, rng):
        tracker = KalmanTracker(measurement_noise_m=0.2, gate_sigmas=4.0)
        for i in range(10):
            tracker.update(i * 0.5, (i * 0.5, 2.0))
        outlier_state = tracker.update(5.0, (15.0, 10.0))  # 10+ m jump
        assert not outlier_state.accepted
        # The coasted prediction stays near the trajectory.
        assert outlier_state.position[0] == pytest.approx(5.0, abs=1.0)

    def test_recovers_after_outlier(self, rng):
        tracker = KalmanTracker(measurement_noise_m=0.2)
        for i in range(10):
            tracker.update(i * 0.5, (i * 0.5, 2.0))
        tracker.update(5.0, (20.0, 20.0))
        state = tracker.update(5.5, (5.5, 2.0))
        assert state.accepted

    def test_rejects_time_reversal(self):
        tracker = KalmanTracker()
        tracker.update(1.0, (0.0, 0.0))
        with pytest.raises(ConfigurationError):
            tracker.update(0.5, (0.1, 0.0))

    def test_rejects_bad_fix_shape(self):
        tracker = KalmanTracker()
        with pytest.raises(ConfigurationError):
            tracker.update(0.0, (1.0, 2.0, 3.0))  # type: ignore[arg-type]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            KalmanTracker(process_noise=0.0)
        with pytest.raises(ConfigurationError):
            KalmanTracker(gate_sigmas=-1.0)


class TestTrackFixes:
    def test_runs_full_sequence(self, rng):
        sequence = [(t, fix) for t, fix, _ in noisy_line_fixes(rng, n=10)]
        states = track_fixes(sequence)
        assert len(states) == 10
        assert all(s.accepted for s in states[:1])


class TestRejectStreakReinit:
    def _converged_tracker(self, **kwargs):
        tracker = KalmanTracker(measurement_noise_m=0.2, **kwargs)
        for i in range(10):
            tracker.update(i * 0.5, (i * 0.5, 2.0))
        return tracker

    def test_teleporting_client_reacquired(self):
        """A genuine teleport (elevator, stairwell) must not strand the track.

        After the client reappears far away, every honest fix fails the
        gate; once the streak hits the limit the filter restarts there
        instead of coasting on the stale trajectory forever.
        """
        tracker = self._converged_tracker(reinit_after_rejects=3)
        states = [
            tracker.update(5.0 + i * 0.5, (20.0, 15.0)) for i in range(4)
        ]
        assert [s.accepted for s in states[:2]] == [False, False]
        reinit = states[2]
        assert reinit.reinitialized
        assert reinit.accepted
        assert reinit.position == (20.0, 15.0)
        # Subsequent fixes near the new location pass the gate normally.
        assert states[3].accepted
        assert not states[3].reinitialized

    def test_streak_resets_on_accept(self):
        tracker = self._converged_tracker(reinit_after_rejects=3)
        tracker.update(5.0, (20.0, 15.0))
        tracker.update(5.5, (20.0, 15.0))
        tracker.update(6.0, (5.9, 2.0))  # honest fix breaks the streak
        state = tracker.update(6.5, (20.0, 15.0))
        assert not state.accepted
        assert not state.reinitialized

    def test_streak_survives_snapshot_roundtrip(self):
        tracker = self._converged_tracker(reinit_after_rejects=3)
        tracker.update(5.0, (20.0, 15.0))
        tracker.update(5.5, (20.0, 15.0))
        restored = KalmanTracker.from_state_dict(tracker.state_dict())
        state = restored.update(6.0, (20.0, 15.0))
        assert state.reinitialized
        assert state.position == (20.0, 15.0)

    def test_legacy_snapshot_without_streak_fields(self):
        tracker = self._converged_tracker()
        payload = tracker.state_dict()
        del payload["reject_streak"]
        del payload["reinit_after_rejects"]
        restored = KalmanTracker.from_state_dict(payload)
        assert restored.reinit_after_rejects == 5
        state = restored.update(5.0, (5.0, 2.0))
        assert state.accepted

    def test_rejects_bad_reinit_parameter(self):
        with pytest.raises(ConfigurationError):
            KalmanTracker(reinit_after_rejects=0)
        with pytest.raises(ConfigurationError):
            KalmanTracker(reinit_after_rejects=2.5)  # type: ignore[arg-type]
