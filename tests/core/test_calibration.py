"""Tests for phase autocalibration (paper §III-D / Fig. 8b)."""

import numpy as np
import pytest

from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.core.calibration import apply_phase_calibration, calibrate_phase_offsets
from repro.exceptions import CalibrationError


def los_profile(aoa=70.0):
    return MultipathProfile(
        paths=[
            PropagationPath(aoa, 30e-9, 1.0, is_direct=True),
            PropagationPath(140.0, 180e-9, 0.3),
        ]
    )


def offset_trace(array, layout, rng, seed=11, snr_db=25.0, aoa=70.0):
    impairments = ImpairmentModel(
        detection_delay_range_s=0.0, sfo_std_s=0.0, phase_offset_std_rad=1.0
    )
    synthesizer = CsiSynthesizer(array, layout, impairments, seed=seed)
    trace = synthesizer.packets(los_profile(aoa), n_packets=4, snr_db=snr_db, rng=rng)
    return trace, synthesizer.phase_offsets


class TestApply:
    def test_apply_inverts_injected_offsets(self, array, layout, rng):
        trace, true_offsets = offset_trace(array, layout, rng)
        corrected = apply_phase_calibration(trace.csi, true_offsets)
        # After exact correction, inter-antenna ratios match the clean model.
        from repro.channel.csi import synthesize_csi_matrix

        clean = synthesize_csi_matrix(los_profile().normalized(), array, layout)
        ratio_corrected = np.angle(corrected[0, 1, 0] / corrected[0, 0, 0])
        ratio_clean = np.angle(clean[1, 0] / clean[0, 0])
        assert abs(ratio_corrected - ratio_clean) < 0.3  # noise-limited

    def test_2d_and_3d_inputs(self, rng):
        offsets = np.array([0.0, 0.5, 1.0])
        matrix = rng.standard_normal((3, 8)) + 0j
        batch = rng.standard_normal((2, 3, 8)) + 0j
        assert apply_phase_calibration(matrix, offsets).shape == (3, 8)
        assert apply_phase_calibration(batch, offsets).shape == (2, 3, 8)

    def test_rejects_1d(self):
        with pytest.raises(CalibrationError):
            apply_phase_calibration(np.zeros(5), np.zeros(3))

    def test_zero_offsets_identity(self, rng):
        batch = rng.standard_normal((2, 3, 8)) + 1j * rng.standard_normal((2, 3, 8))
        np.testing.assert_allclose(apply_phase_calibration(batch, np.zeros(3)), batch)


class TestCalibrate:
    @pytest.mark.parametrize(
        ("estimator", "tolerance_rad"),
        [("roarray", 0.6), ("music", 1.3)],  # sharper ℓ1 objective → tighter recovery
    )
    def test_recovers_offsets_up_to_wrap(self, array, layout, rng, estimator, tolerance_rad):
        trace, true_offsets = offset_trace(array, layout, rng)
        estimated = calibrate_phase_offsets(
            trace.csi, array, estimator=estimator, known_aoa_deg=70.0
        )
        residual = np.angle(np.exp(1j * (estimated - true_offsets)))
        # Antenna 0 is the reference; others recovered within a tolerance.
        assert abs(residual[0]) == 0.0
        assert np.max(np.abs(residual[1:])) < tolerance_rad

    def test_correction_restores_aoa_estimate(self, array, layout, rng):
        from repro.core.aoa import estimate_aoa_spectrum
        from repro.core.grids import AngleGrid

        trace, _ = offset_trace(array, layout, rng, seed=13)
        offsets = calibrate_phase_offsets(
            trace.csi, array, estimator="roarray", known_aoa_deg=70.0
        )
        corrected = apply_phase_calibration(trace.csi, offsets)

        def direct_error(csi_batch):
            snapshots = np.moveaxis(csi_batch, 1, 0).reshape(3, -1)
            spectrum, _ = estimate_aoa_spectrum(snapshots, array, AngleGrid(n_points=91))
            return spectrum.closest_peak_error(70.0, max_peaks=3, min_relative_height=0.2)

        assert direct_error(corrected) <= direct_error(trace.csi)
        assert direct_error(corrected) < 10.0

    def test_no_offsets_yields_near_zero_correction_error(self, array, layout, rng):
        impairments = ImpairmentModel(detection_delay_range_s=0.0, sfo_std_s=0.0)
        synthesizer = CsiSynthesizer(array, layout, impairments, seed=0)
        trace = synthesizer.packets(los_profile(), n_packets=3, snr_db=25.0, rng=rng)
        estimated = calibrate_phase_offsets(
            trace.csi, array, estimator="roarray", known_aoa_deg=70.0, coarse_steps=8,
            refinement_rounds=1,
        )
        corrected = apply_phase_calibration(trace.csi, estimated)
        # Whatever offsets the search picked, the corrected spectrum must
        # still peak at the true angle.
        from repro.core.aoa import estimate_aoa_spectrum
        from repro.core.grids import AngleGrid

        snapshots = np.moveaxis(corrected, 1, 0).reshape(3, -1)
        spectrum, _ = estimate_aoa_spectrum(snapshots, array, AngleGrid(n_points=91))
        assert spectrum.closest_peak_error(70.0, max_peaks=3, min_relative_height=0.2) < 8.0


class TestValidation:
    def test_rejects_wrong_antenna_count(self, array, rng):
        with pytest.raises(CalibrationError):
            calibrate_phase_offsets(rng.standard_normal((2, 5, 8)) + 0j, array)

    def test_rejects_1d_csi(self, array):
        with pytest.raises(CalibrationError):
            calibrate_phase_offsets(np.zeros(8), array)

    def test_rejects_tiny_coarse_steps(self, array, rng):
        with pytest.raises(CalibrationError):
            calibrate_phase_offsets(
                rng.standard_normal((1, 3, 8)) + 0j, array, coarse_steps=2
            )
