"""Failure-injection tests: broken hardware and hostile inputs.

A deployed localization system sees dead RF chains, dropped
subcarriers and corrupt CSI reports.  These tests pin down how the
pipeline behaves in each case: either a clean, early, typed error or a
graceful accuracy degradation — never NaNs propagating into a fix.
"""

import numpy as np
import pytest

from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.paths import random_profile
from repro.channel.trace import CsiTrace
from repro.core.pipeline import RoArrayEstimator
from repro.exceptions import SolverError


@pytest.fixture
def estimator(small_config):
    return RoArrayEstimator(config=small_config)


def healthy_trace(estimator, rng, n_packets=4, snr_db=15.0):
    profile = random_profile(rng, n_paths=3, direct_aoa_deg=120.0, direct_toa_s=30e-9)
    synthesizer = CsiSynthesizer(estimator.array, estimator.layout, ImpairmentModel(), seed=1)
    return synthesizer.packets(profile, n_packets=n_packets, snr_db=snr_db, rng=rng)


def replace_csi(trace, csi):
    return CsiTrace(csi=csi, snr_db=trace.snr_db, rssi_dbm=trace.rssi_dbm)


class TestNanCorruption:
    def test_nan_csi_raises_typed_error(self, estimator, rng):
        trace = healthy_trace(estimator, rng)
        corrupt = trace.csi.copy()
        corrupt[0, 1, 5] = np.nan
        with pytest.raises(SolverError, match="non-finite"):
            estimator.estimate_direct_path(replace_csi(trace, corrupt))

    def test_inf_csi_raises_typed_error(self, estimator, rng):
        trace = healthy_trace(estimator, rng)
        corrupt = trace.csi.copy()
        corrupt[0, 0, 0] = np.inf
        with pytest.raises(SolverError, match="non-finite"):
            estimator.estimate_direct_path(replace_csi(trace, corrupt))


class TestDeadAntenna:
    def test_dead_antenna_degrades_gracefully(self, estimator, rng):
        """A zeroed RF chain loses aperture but must not crash or NaN."""
        trace = healthy_trace(estimator, rng, n_packets=6)
        dead = trace.csi.copy()
        dead[:, 2, :] = 0.0
        estimate = estimator.estimate_direct_path(replace_csi(trace, dead))
        assert np.isfinite(estimate.aoa_deg)
        assert 0.0 <= estimate.aoa_deg <= 180.0

    def test_dead_antenna_worse_than_healthy(self, estimator, rng):
        healthy_errors, dead_errors = [], []
        for seed in range(5):
            local = np.random.default_rng(seed)
            trace = healthy_trace(estimator, local, n_packets=4, snr_db=5.0)
            healthy_errors.append(
                abs(estimator.estimate_direct_path(trace).aoa_deg - 120.0)
            )
            dead = trace.csi.copy()
            dead[:, 2, :] = 0.0
            dead_errors.append(
                abs(estimator.estimate_direct_path(replace_csi(trace, dead)).aoa_deg - 120.0)
            )
        assert np.mean(dead_errors) >= np.mean(healthy_errors) - 1.0


class TestDroppedSubcarriers:
    def test_zeroed_subcarriers_still_produce_estimate(self, estimator, rng):
        """Some NICs blank guard subcarriers; zero columns must be survivable."""
        trace = healthy_trace(estimator, rng)
        sparse_csi = trace.csi.copy()
        sparse_csi[:, :, ::4] = 0.0
        estimate = estimator.estimate_direct_path(replace_csi(trace, sparse_csi))
        assert np.isfinite(estimate.aoa_deg)


class TestExtremeConditions:
    def test_pure_noise_trace_yields_valid_if_meaningless_estimate(self, estimator, rng):
        shape = (3, estimator.array.n_antennas, estimator.layout.n_subcarriers)
        noise = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        trace = CsiTrace(csi=noise, snr_db=-100.0)
        estimate = estimator.estimate_direct_path(trace)
        assert 0.0 <= estimate.aoa_deg <= 180.0
        assert np.isfinite(estimate.toa_s)

    def test_wrong_subcarrier_count_raises_typed_error(self, estimator, rng):
        noise = rng.standard_normal((3, 3, 16)) + 1j * rng.standard_normal((3, 3, 16))
        with pytest.raises(SolverError, match="expected"):
            estimator.estimate_direct_path(CsiTrace(csi=noise, snr_db=0.0))

    def test_very_high_snr_is_exact(self, estimator, rng):
        trace = healthy_trace(estimator, rng, snr_db=60.0)
        estimate = estimator.estimate_direct_path(trace)
        assert estimate.aoa_deg == pytest.approx(120.0, abs=estimator.config.angle_grid.spacing_deg)

    def test_single_antenna_pair(self, rng, small_config):
        """M = 2, the minimum array: the pipeline must still run."""
        from repro.channel.array import UniformLinearArray
        from repro.channel.ofdm import SubcarrierLayout

        array = UniformLinearArray(n_antennas=2)
        layout = SubcarrierLayout(n_subcarriers=16, spacing=1.25e6)
        estimator = RoArrayEstimator(array=array, layout=layout, config=small_config)
        profile = random_profile(rng, n_paths=2, direct_aoa_deg=60.0)
        synthesizer = CsiSynthesizer(array, layout, ImpairmentModel(), seed=0)
        trace = synthesizer.packets(profile, n_packets=3, snr_db=20.0, rng=rng)
        estimate = estimator.estimate_direct_path(trace)
        assert estimate.aoa_deg == pytest.approx(60.0, abs=12.0)
