"""Tests for sparse AoA estimation (paper §III-A)."""

import numpy as np
import pytest

from repro.channel.csi import synthesize_csi_matrix
from repro.channel.noise import awgn
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.core.aoa import estimate_aoa_spectrum
from repro.core.grids import AngleGrid
from repro.exceptions import SolverError

GRID = AngleGrid(n_points=181)


def snapshot_for(array, aoas, gains):
    profile = MultipathProfile(
        paths=[
            PropagationPath(aoa, 0.0, gain, is_direct=(i == 0))
            for i, (aoa, gain) in enumerate(zip(aoas, gains))
        ]
    )
    return profile


class TestSingleSnapshot:
    def test_recovers_single_angle(self, array, layout):
        y = array.steering_vector(150.0)
        spectrum, result = estimate_aoa_spectrum(y, array, GRID)
        assert spectrum.strongest_aoa() == pytest.approx(150.0, abs=1.0)
        assert result.converged or result.iterations > 0

    def test_two_snapshots_vs_multipath(self, array, layout, rng):
        """Multiple subcarrier snapshots sharpen a multipath estimate."""
        profile = snapshot_for(array, [60.0, 140.0], [1.0, 0.7])
        csi = synthesize_csi_matrix(profile, array, layout)
        noisy = awgn(csi, 15.0, rng)
        spectrum, _ = estimate_aoa_spectrum(noisy, array, GRID)
        assert spectrum.closest_peak_error(60.0, min_relative_height=0.2) < 8.0
        assert spectrum.closest_peak_error(140.0, min_relative_height=0.2) < 8.0

    def test_spectrum_is_sparse(self, array):
        """Most grid cells must be exactly zero — the ℓ1 sharpness claim."""
        y = array.steering_vector(90.0)
        spectrum, _ = estimate_aoa_spectrum(y, array, GRID, kappa_fraction=0.1)
        occupied = np.count_nonzero(spectrum.power > 1e-6 * spectrum.power.max())
        assert occupied < 30  # ≪ 181 grid points

    def test_iteration_budget_controls_refinement(self, array):
        """Fewer iterations → blunter spectrum (paper Fig. 3)."""
        y = array.steering_vector(150.0)
        coarse, _ = estimate_aoa_spectrum(y, array, GRID, max_iterations=3)
        fine, _ = estimate_aoa_spectrum(y, array, GRID, max_iterations=200)
        assert fine.normalized().sharpness() >= coarse.normalized().sharpness()

    def test_explicit_kappa_respected(self, array):
        y = array.steering_vector(90.0)
        huge = 10 * float(np.abs(2 * array.steering_matrix(GRID.angles_deg).conj().T @ y).max())
        spectrum, _ = estimate_aoa_spectrum(y, array, GRID, kappa=huge)
        assert np.all(spectrum.power == 0)

    def test_insensitive_to_model_order(self, array, layout, rng):
        """No K parameter exists at all — the §III-A robustness claim.

        The same call recovers 1-path and 4-path scenes without being
        told the path count.
        """
        for n_paths, aoas in [(1, [90.0]), (4, [20.0, 70.0, 120.0, 165.0])]:
            profile = snapshot_for(array, aoas, [1.0] * n_paths)
            csi = synthesize_csi_matrix(profile, array, layout)
            spectrum, _ = estimate_aoa_spectrum(awgn(csi, 15.0, rng), array, GRID)
            peaks = spectrum.peaks(max_peaks=n_paths, min_relative_height=0.2)
            assert len(peaks) >= 1


class TestValidation:
    def test_rejects_3d_snapshots(self, array):
        with pytest.raises(SolverError):
            estimate_aoa_spectrum(np.zeros((3, 2, 2)), array)

    def test_rejects_sensor_mismatch(self, array):
        with pytest.raises(SolverError, match="sensors"):
            estimate_aoa_spectrum(np.zeros(5, dtype=complex), array, GRID)

    def test_rejects_zero_snapshots_matrix(self, array):
        with pytest.raises(SolverError):
            estimate_aoa_spectrum(np.zeros((3, 2), dtype=complex), array, GRID)

    def test_default_grid_used_when_omitted(self, array):
        y = array.steering_vector(45.0)
        spectrum, _ = estimate_aoa_spectrum(y, array)
        assert spectrum.angles_deg.size == 181
