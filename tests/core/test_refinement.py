"""Tests for off-grid continuous (θ, τ) refinement."""

import numpy as np
import pytest

from repro.channel.csi import synthesize_csi_matrix
from repro.channel.noise import awgn
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.joint import estimate_joint_spectrum
from repro.core.refinement import (
    continuous_steering_vector,
    refine_paths,
    refine_spectrum_peaks,
)
from repro.core.steering import SteeringCache, vectorize_csi_matrix
from repro.exceptions import SolverError


def make_offgrid_measurement(array, layout, aoa=101.3, toa=137.5e-9, rng=None, snr=None):
    profile = MultipathProfile(paths=[PropagationPath(aoa, toa, 1.0, is_direct=True)])
    csi = synthesize_csi_matrix(profile, array, layout)
    if snr is not None:
        csi = awgn(csi, snr, rng)
    return vectorize_csi_matrix(csi)


class TestContinuousSteering:
    def test_matches_grid_dictionary_on_grid(self, array, layout):
        cache = SteeringCache(array, layout, AngleGrid(n_points=13), DelayGrid(n_points=7))
        theta = cache.angle_grid.angles_deg[5]
        tau = cache.delay_grid.toas_s[3]
        vector = continuous_steering_vector(array, layout, theta, tau)
        column = cache.joint_dictionary[:, 3 * 13 + 5]
        np.testing.assert_allclose(vector, column, atol=1e-12)


class TestRefinePaths:
    def test_beats_grid_quantization_noiseless(self, array, layout):
        true_aoa, true_toa = 101.3, 137.5e-9
        y = make_offgrid_measurement(array, layout, true_aoa, true_toa)
        # Start from the nearest 3°/40 ns grid cell.
        refined = refine_paths(
            y,
            [(102.0, 120e-9)],
            array,
            layout,
            angle_halfwidth_deg=3.0,
            delay_halfwidth_s=40e-9,
        )
        assert len(refined) == 1
        assert refined[0].aoa_deg == pytest.approx(true_aoa, abs=0.4)
        assert refined[0].toa_s == pytest.approx(true_toa, abs=3e-9)

    def test_gain_recovered(self, array, layout):
        y = make_offgrid_measurement(array, layout)
        refined = refine_paths(
            y, [(102.0, 130e-9)], array, layout, angle_halfwidth_deg=3.0,
            delay_halfwidth_s=30e-9,
        )
        assert abs(refined[0].gain) == pytest.approx(1.0, abs=0.05)

    def test_two_paths_jointly_refined(self, array, layout, rng):
        profile = MultipathProfile(
            paths=[
                PropagationPath(61.7, 42.5e-9, 1.0, is_direct=True),
                PropagationPath(128.4, 211.0e-9, 0.6),
            ]
        )
        y = vectorize_csi_matrix(
            awgn(synthesize_csi_matrix(profile, array, layout), 30.0, rng)
        )
        refined = refine_paths(
            y,
            [(60.0, 40e-9), (130.0, 220e-9)],
            array,
            layout,
            angle_halfwidth_deg=3.0,
            delay_halfwidth_s=20e-9,
        )
        aoas = sorted(p.aoa_deg for p in refined)
        assert aoas[0] == pytest.approx(61.7, abs=1.0)
        assert aoas[1] == pytest.approx(128.4, abs=1.0)

    def test_never_worse_than_initial(self, array, layout, rng):
        y = make_offgrid_measurement(array, layout, rng=rng, snr=5.0)
        initial = (102.0, 130e-9)

        def residual(aoa, toa):
            basis = continuous_steering_vector(array, layout, aoa, toa)[:, None]
            gains, *_ = np.linalg.lstsq(basis, y, rcond=None)
            return np.linalg.norm(y - basis @ gains)

        refined = refine_paths(
            y, [initial], array, layout, angle_halfwidth_deg=3.0, delay_halfwidth_s=30e-9
        )
        assert residual(refined[0].aoa_deg, refined[0].toa_s) <= residual(*initial) + 1e-12

    def test_rejects_bad_input(self, array, layout):
        y = make_offgrid_measurement(array, layout)
        with pytest.raises(SolverError):
            refine_paths(y[:-1], [(90.0, 0.0)], array, layout)
        with pytest.raises(SolverError):
            refine_paths(y, [], array, layout)
        with pytest.raises(SolverError):
            refine_paths(y, [(90.0, 0.0)], array, layout, probes=2)


class TestRefineSpectrumPeaks:
    def test_end_to_end_beats_grid(self, array, layout, rng):
        """Sparse recovery → peaks → refinement lands within a fraction
        of a grid cell of the true off-grid parameters."""
        cache = SteeringCache(
            array, layout, AngleGrid(n_points=61), DelayGrid(n_points=21, stop_s=800e-9)
        )
        true_aoa, true_toa = 101.3, 137.5e-9
        profile = MultipathProfile(
            paths=[PropagationPath(true_aoa, true_toa, 1.0, is_direct=True)]
        )
        csi = awgn(synthesize_csi_matrix(profile, array, layout), 25.0, rng)
        spectrum, _ = estimate_joint_spectrum(csi, cache)
        grid_error = abs(spectrum.peaks(max_peaks=1)[0].aoa_deg - true_aoa)

        refined = refine_spectrum_peaks(
            vectorize_csi_matrix(csi), spectrum, array, layout, max_paths=2
        )
        best = min(refined, key=lambda p: abs(p.aoa_deg - true_aoa))
        assert abs(best.aoa_deg - true_aoa) <= grid_error
        assert abs(best.aoa_deg - true_aoa) < 1.0
