"""End-to-end tests for the ROArray estimator."""

import numpy as np
import pytest

from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.paths import random_profile
from repro.core.config import RoArrayConfig
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.pipeline import RoArrayEstimator


@pytest.fixture
def estimator(small_config):
    return RoArrayEstimator(config=small_config)


def trace_for(estimator, rng, *, n_packets=5, snr_db=15.0, direct_aoa=150.0, blockage_db=0.0):
    profile = random_profile(
        rng, n_paths=4, direct_aoa_deg=direct_aoa, direct_toa_s=30e-9
    ).with_direct_attenuation(blockage_db)
    synthesizer = CsiSynthesizer(estimator.array, estimator.layout, ImpairmentModel(), seed=3)
    return synthesizer.packets(profile, n_packets=n_packets, snr_db=snr_db, rng=rng)


class TestDirectPath:
    def test_single_packet_operation(self, estimator, rng):
        """The §I claim: works with as little as one packet."""
        trace = trace_for(estimator, rng, n_packets=1)
        estimate = estimator.estimate_direct_path(trace)
        assert estimate.aoa_deg == pytest.approx(150.0, abs=10.0)

    def test_multi_packet_operation(self, estimator, rng):
        trace = trace_for(estimator, rng, n_packets=10)
        estimate = estimator.estimate_direct_path(trace)
        assert estimate.aoa_deg == pytest.approx(150.0, abs=6.0)

    def test_low_snr_with_blockage(self, estimator, rng):
        """The headline robustness: blocked LoS at 0 dB still localized."""
        trace = trace_for(estimator, rng, n_packets=15, snr_db=0.0, blockage_db=6.0)
        estimate = estimator.estimate_direct_path(trace)
        assert estimate.aoa_deg == pytest.approx(150.0, abs=15.0)

    def test_estimate_reports_toa_within_grid(self, estimator, rng):
        trace = trace_for(estimator, rng)
        estimate = estimator.estimate_direct_path(trace)
        assert 0 <= estimate.toa_s <= estimator.config.delay_grid.stop_s

    def test_analyze_candidates_contain_direct(self, estimator, rng):
        trace = trace_for(estimator, rng)
        analysis = estimator.analyze(trace)
        assert analysis.direct.aoa_deg in analysis.candidate_aoas_deg


class TestSpectra:
    def test_aoa_spectrum_grid(self, estimator, rng):
        trace = trace_for(estimator, rng)
        spectrum = estimator.aoa_spectrum(trace)
        assert spectrum.angles_deg.size == estimator.config.angle_grid.n_points

    def test_joint_spectrum_grids(self, estimator, rng):
        trace = trace_for(estimator, rng)
        spectrum = estimator.joint_spectrum(trace)
        assert spectrum.power.shape == (
            estimator.config.angle_grid.n_points,
            estimator.config.delay_grid.n_points,
        )

    def test_packet_selection(self, estimator, rng):
        trace = trace_for(estimator, rng, n_packets=3)
        s0 = estimator.joint_spectrum(trace, packet=0)
        s2 = estimator.joint_spectrum(trace, packet=2)
        assert not np.allclose(s0.power, s2.power)


class TestOffGridRefinement:
    def test_refined_estimate_beats_grid_on_offgrid_target(self, rng, small_config):
        from dataclasses import replace

        coarse = RoArrayEstimator(config=small_config)  # 3° angle cells
        refined = RoArrayEstimator(config=replace(small_config, refine_off_grid=True))
        errors = {"coarse": [], "refined": []}
        for seed in range(4):
            local = np.random.default_rng(seed)
            true_aoa = 97.3  # generically off-grid
            profile = random_profile(local, n_paths=1, direct_aoa_deg=true_aoa)
            synthesizer = CsiSynthesizer(
                coarse.array, coarse.layout,
                ImpairmentModel(detection_delay_range_s=0.0, sfo_std_s=0.0,
                                cfo_residual_rad=0.0),
                seed=seed,
            )
            trace = synthesizer.packets(profile, n_packets=1, snr_db=25.0, rng=local)
            errors["coarse"].append(abs(coarse.estimate_direct_path(trace).aoa_deg - true_aoa))
            errors["refined"].append(abs(refined.estimate_direct_path(trace).aoa_deg - true_aoa))
        assert np.mean(errors["refined"]) <= np.mean(errors["coarse"])
        assert np.mean(errors["refined"]) < 1.5

    def test_refined_candidates_are_continuous(self, rng, small_config):
        from dataclasses import replace

        estimator = RoArrayEstimator(config=replace(small_config, refine_off_grid=True))
        trace = trace_for(estimator, rng, n_packets=1)
        analysis = estimator.analyze(trace)
        grid = set(np.round(estimator.config.angle_grid.angles_deg, 6))
        # Refined angles generally leave the grid lattice.
        off_lattice = [a for a in analysis.candidate_aoas_deg if round(a, 6) not in grid]
        assert off_lattice or len(analysis.candidate_aoas_deg) == 0


class TestConfiguration:
    def test_default_construction(self):
        estimator = RoArrayEstimator()
        assert estimator.array.n_antennas == 3
        assert estimator.layout.n_subcarriers == 30

    def test_custom_grids_flow_through(self):
        config = RoArrayConfig(
            angle_grid=AngleGrid(n_points=31), delay_grid=DelayGrid(n_points=11)
        )
        estimator = RoArrayEstimator(config=config)
        assert estimator.cache.joint_dictionary.shape == (90, 31 * 11)

    def test_name(self):
        assert RoArrayEstimator().name == "ROArray"
