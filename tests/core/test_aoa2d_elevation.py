"""Elevation-axis tests for 2-D sparse AoA (complements test_aoa2d)."""

import numpy as np
import pytest

from repro.channel.array2d import PlanarArray
from repro.core.aoa2d import AzimuthElevationGrid, estimate_aoa2d_spectrum


@pytest.fixture
def planar():
    return PlanarArray(n_x=4, n_y=4)


GRID = AzimuthElevationGrid(n_azimuths=24, n_elevations=10, max_elevation_deg=81.0)


class TestElevationRecovery:
    def test_recovers_elevation(self, planar):
        azimuth = float(GRID.azimuths_deg[5])
        elevation = float(GRID.elevations_deg[4])
        y = planar.steering_vector(azimuth, elevation)
        spectrum, _ = estimate_aoa2d_spectrum(y, planar, GRID)
        _, found_el = spectrum.strongest_direction()
        assert found_el == pytest.approx(elevation, abs=GRID.elevations_deg[1])

    def test_low_vs_high_elevation_distinguished(self, planar):
        azimuth = float(GRID.azimuths_deg[8])
        low = planar.steering_vector(azimuth, float(GRID.elevations_deg[1]))
        high = planar.steering_vector(azimuth, float(GRID.elevations_deg[7]))
        spec_low, _ = estimate_aoa2d_spectrum(low, planar, GRID)
        spec_high, _ = estimate_aoa2d_spectrum(high, planar, GRID)
        assert spec_low.strongest_direction()[1] < spec_high.strongest_direction()[1]

    def test_near_boresight_azimuth_ambiguity_is_physical(self, planar):
        """At 90° elevation all azimuths coincide — the spectrum may pick
        any azimuth but the elevation must be ~boresight."""
        y = planar.steering_vector(123.0, 89.0)
        grid = AzimuthElevationGrid(n_azimuths=24, n_elevations=10, max_elevation_deg=90.0)
        spectrum, _ = estimate_aoa2d_spectrum(y, planar, grid)
        _, found_el = spectrum.strongest_direction()
        assert found_el >= 70.0

    def test_noise_robustness(self, planar, rng):
        azimuth = float(GRID.azimuths_deg[10])
        elevation = float(GRID.elevations_deg[3])
        y = planar.steering_vector(azimuth, elevation)
        y = y + 0.1 * (rng.standard_normal(16) + 1j * rng.standard_normal(16))
        spectrum, _ = estimate_aoa2d_spectrum(y, planar, GRID)
        assert spectrum.closest_azimuth_error(azimuth) <= 2 * 360.0 / GRID.n_azimuths
