"""Tests for the sampling grids."""

import numpy as np
import pytest

from repro.core.grids import AngleGrid, DelayGrid
from repro.exceptions import ConfigurationError


class TestAngleGrid:
    def test_default_spans_paper_range(self):
        grid = AngleGrid()
        assert grid.angles_deg[0] == 0.0
        assert grid.angles_deg[-1] == 180.0
        assert grid.n_points == 181
        assert grid.spacing_deg == pytest.approx(1.0)

    def test_fine_grid(self):
        grid = AngleGrid(n_points=361)
        assert grid.spacing_deg == pytest.approx(0.5)

    def test_partial_span(self):
        grid = AngleGrid(start_deg=30.0, stop_deg=150.0, n_points=121)
        assert grid.angles_deg[0] == 30.0
        assert grid.angles_deg[-1] == 150.0

    def test_rejects_reversed_range(self):
        with pytest.raises(ConfigurationError):
            AngleGrid(start_deg=100.0, stop_deg=50.0)

    def test_rejects_out_of_physical_range(self):
        with pytest.raises(ConfigurationError):
            AngleGrid(stop_deg=200.0)

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            AngleGrid(n_points=1)

    def test_equally_spaced(self):
        grid = AngleGrid(n_points=91)
        np.testing.assert_allclose(np.diff(grid.angles_deg), grid.spacing_deg)


class TestDelayGrid:
    def test_default_covers_intel5300_range(self):
        grid = DelayGrid()
        assert grid.toas_s[0] == 0.0
        assert grid.toas_s[-1] == pytest.approx(800e-9)

    def test_rejects_negative_start(self):
        with pytest.raises(ConfigurationError):
            DelayGrid(start_s=-1e-9)

    def test_rejects_empty_range(self):
        with pytest.raises(ConfigurationError):
            DelayGrid(start_s=100e-9, stop_s=100e-9)

    def test_spacing(self):
        grid = DelayGrid(stop_s=100e-9, n_points=11)
        assert grid.spacing_s == pytest.approx(10e-9)
