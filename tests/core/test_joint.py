"""Tests for joint ToA&AoA sparse recovery (paper §III-B)."""

import numpy as np
import pytest

from repro.channel.csi import synthesize_csi_matrix
from repro.channel.noise import awgn
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.joint import coefficients_to_joint_power, estimate_joint_spectrum
from repro.core.steering import SteeringCache
from repro.exceptions import SolverError


@pytest.fixture
def cache(array, layout):
    return SteeringCache(
        array, layout, AngleGrid(n_points=61), DelayGrid(n_points=21, stop_s=800e-9)
    )


def joint_profile(aoas_toas_gains):
    return MultipathProfile(
        paths=[
            PropagationPath(aoa, toa, gain, is_direct=(i == 0))
            for i, (aoa, toa, gain) in enumerate(aoas_toas_gains)
        ]
    )


class TestReshape:
    def test_delay_major_ordering(self):
        coefficients = np.arange(6, dtype=complex)  # 3 angles × 2 delays
        power = coefficients_to_joint_power(coefficients, n_angles=3, n_toas=2)
        assert power.shape == (3, 2)
        # Column j·Nθ + i ↔ (angle i, delay j).
        assert power[0, 0] == 0 and power[1, 0] == 1 and power[0, 1] == 3

    def test_rejects_wrong_size(self):
        with pytest.raises(SolverError):
            coefficients_to_joint_power(np.zeros(5), n_angles=2, n_toas=2)

    def test_mmv_coefficients_use_row_norms(self):
        coefficients = np.ones((6, 2), dtype=complex)
        power = coefficients_to_joint_power(coefficients, n_angles=3, n_toas=2)
        np.testing.assert_allclose(power, np.sqrt(2.0))


class TestJointEstimation:
    def test_recovers_on_grid_path(self, array, layout, cache):
        theta = cache.angle_grid.angles_deg[40]
        tau = cache.delay_grid.toas_s[7]
        profile = joint_profile([(theta, tau, 1.0)])
        csi = synthesize_csi_matrix(profile, array, layout)
        spectrum, result = estimate_joint_spectrum(csi, cache)
        peak = spectrum.peaks(max_peaks=1)[0]
        assert peak.aoa_deg == pytest.approx(theta, abs=cache.angle_grid.spacing_deg)
        assert peak.toa_s == pytest.approx(tau, abs=cache.delay_grid.spacing_s)

    def test_resolves_more_paths_than_antennas(self, array, layout, cache, rng):
        """The aperture argument of §III-B: 4 paths on a 3-antenna array."""
        grid_a, grid_t = cache.angle_grid.angles_deg, cache.delay_grid.toas_s
        spec = [
            (grid_a[10], grid_t[2], 1.0),
            (grid_a[25], grid_t[6], 0.8),
            (grid_a[40], grid_t[10], 0.7),
            (grid_a[55], grid_t[14], 0.6),
        ]
        csi = synthesize_csi_matrix(joint_profile(spec), array, layout)
        spectrum, _ = estimate_joint_spectrum(awgn(csi, 25.0, rng), cache)
        peaks = spectrum.peaks(max_peaks=6, min_relative_height=0.2)
        assert len(peaks) >= 4
        recovered = {(round(p.aoa_deg), round(p.toa_s * 1e9)) for p in peaks}
        expected = {(round(a), round(t * 1e9)) for a, t, _ in spec}
        matched = sum(
            1
            for (ea, et) in expected
            if any(abs(ea - ra) <= 4 and abs(et - rt) <= 45 for ra, rt in recovered)
        )
        assert matched >= 3

    def test_separates_same_angle_different_delay(self, array, layout, cache, rng):
        """Two paths at one AoA but distinct ToAs — spatial-only methods
        cannot tell them apart; the joint estimator must."""
        grid_a, grid_t = cache.angle_grid.angles_deg, cache.delay_grid.toas_s
        csi = synthesize_csi_matrix(
            joint_profile([(grid_a[30], grid_t[2], 1.0), (grid_a[30], grid_t[12], 0.9)]),
            array,
            layout,
        )
        spectrum, _ = estimate_joint_spectrum(awgn(csi, 25.0, rng), cache)
        peaks = spectrum.peaks(max_peaks=4, min_relative_height=0.3)
        toas = sorted(p.toa_s for p in peaks)
        assert len(toas) >= 2
        assert toas[-1] - toas[0] > 5 * cache.delay_grid.spacing_s

    def test_noisy_recovery(self, array, layout, cache, rng):
        theta = cache.angle_grid.angles_deg[20]
        tau = cache.delay_grid.toas_s[5]
        csi = synthesize_csi_matrix(joint_profile([(theta, tau, 1.0)]), array, layout)
        spectrum, _ = estimate_joint_spectrum(awgn(csi, 0.0, rng), cache)
        peak = spectrum.peaks(max_peaks=1)[0]
        assert peak.aoa_deg == pytest.approx(theta, abs=3 * cache.angle_grid.spacing_deg)

    def test_rejects_wrong_shape(self, cache):
        with pytest.raises(SolverError, match="shape"):
            estimate_joint_spectrum(np.zeros((3, 5), dtype=complex), cache)
