"""Off-grid (basis mismatch) behaviour.

The paper's formulation discretizes the continuous (θ, τ) space onto a
grid; real paths fall *between* grid points.  Chi et al. [19] (cited in
the paper) show sparse recovery degrades gracefully under such basis
mismatch.  These tests pin the expected behaviour: the error of an
off-grid path is bounded by about one grid cell, and refining the grid
shrinks it.
"""

import numpy as np
import pytest

from repro.channel.csi import synthesize_csi_matrix
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.joint import estimate_joint_spectrum
from repro.core.steering import SteeringCache


def solve_at(array, layout, aoa_deg, toa_s, n_angles):
    cache = SteeringCache(
        array, layout, AngleGrid(n_points=n_angles), DelayGrid(n_points=21, stop_s=800e-9)
    )
    profile = MultipathProfile(
        paths=[PropagationPath(aoa_deg, toa_s, 1.0, is_direct=True)]
    )
    csi = synthesize_csi_matrix(profile, array, layout)
    spectrum, _ = estimate_joint_spectrum(csi, cache)
    peak = spectrum.peaks(max_peaks=1)[0]
    return peak, cache


class TestOffGridAngle:
    def test_error_bounded_by_grid_cell(self, array, layout):
        """A path exactly between two grid angles lands on one of them."""
        grid = AngleGrid(n_points=61)  # 3° spacing
        off_grid_aoa = grid.angles_deg[30] + grid.spacing_deg / 2
        peak, cache = solve_at(array, layout, off_grid_aoa, 160e-9, 61)
        assert abs(peak.aoa_deg - off_grid_aoa) <= cache.angle_grid.spacing_deg

    def test_finer_grid_reduces_error(self, array, layout):
        off_grid_aoa = 101.3
        errors = {}
        for n_angles in (31, 121):
            peak, _ = solve_at(array, layout, off_grid_aoa, 160e-9, n_angles)
            errors[n_angles] = abs(peak.aoa_deg - off_grid_aoa)
        assert errors[121] <= errors[31]

    def test_off_grid_delay_bounded(self, array, layout):
        cache = SteeringCache(
            array, layout, AngleGrid(n_points=61), DelayGrid(n_points=21, stop_s=800e-9)
        )
        off_grid_toa = cache.delay_grid.toas_s[7] + cache.delay_grid.spacing_s * 0.4
        profile = MultipathProfile(
            paths=[PropagationPath(90.0, off_grid_toa, 1.0, is_direct=True)]
        )
        csi = synthesize_csi_matrix(profile, array, layout)
        spectrum, _ = estimate_joint_spectrum(csi, cache)
        peak = spectrum.peaks(max_peaks=1)[0]
        assert abs(peak.toa_s - off_grid_toa) <= cache.delay_grid.spacing_s

    def test_off_grid_energy_spread_is_local(self, array, layout):
        """Basis mismatch spreads energy onto *neighboring* cells, not
        across the whole grid (the graceful-degradation claim)."""
        grid = AngleGrid(n_points=61)
        off_grid_aoa = grid.angles_deg[30] + grid.spacing_deg / 2
        peak, cache = solve_at(array, layout, off_grid_aoa, 160e-9, 61)
        spectrum, _ = estimate_joint_spectrum(
            synthesize_csi_matrix(
                MultipathProfile(
                    paths=[PropagationPath(off_grid_aoa, 160e-9, 1.0, is_direct=True)]
                ),
                array,
                layout,
            ),
            cache,
        )
        marginal = spectrum.angle_marginal().normalized()
        significant = np.flatnonzero(marginal.power > 0.1)
        # All significant energy within ±3 cells of the true angle.
        true_index = np.argmin(np.abs(marginal.angles_deg - off_grid_aoa))
        assert np.all(np.abs(significant - true_index) <= 3)
