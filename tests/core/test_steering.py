"""Tests for the steering dictionaries (paper Eq. 6 / 13 / 15 / 16).

The load-bearing invariant: a clean CSI matrix vectorized per Eq. 15
must equal the joint dictionary column at its ground-truth (θ, τ) grid
cell.  If that holds, sparse recovery *must* be able to explain clean
measurements exactly.
"""

import numpy as np
import pytest

from repro.channel.csi import synthesize_csi_matrix
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.steering import (
    SteeringCache,
    angle_steering_dictionary,
    delay_ramp_dictionary,
    joint_steering_dictionary,
    vectorize_csi_matrix,
)


class TestAngleDictionary:
    def test_shape(self, array):
        grid = AngleGrid(n_points=37)
        assert angle_steering_dictionary(array, grid).shape == (3, 37)

    def test_columns_are_steering_vectors(self, array):
        grid = AngleGrid(n_points=19)
        dictionary = angle_steering_dictionary(array, grid)
        for j, angle in enumerate(grid.angles_deg):
            np.testing.assert_allclose(dictionary[:, j], array.steering_vector(angle))

    def test_unit_magnitude_entries(self, array):
        dictionary = angle_steering_dictionary(array, AngleGrid(n_points=13))
        np.testing.assert_allclose(np.abs(dictionary), 1.0)


class TestDelayDictionary:
    def test_shape(self, layout):
        grid = DelayGrid(n_points=9)
        assert delay_ramp_dictionary(layout, grid).shape == (16, 9)

    def test_columns_are_delay_responses(self, layout):
        grid = DelayGrid(n_points=5)
        dictionary = delay_ramp_dictionary(layout, grid)
        for j, tau in enumerate(grid.toas_s):
            np.testing.assert_allclose(dictionary[:, j], layout.delay_response(tau))


class TestVectorize:
    def test_eq15_ordering(self):
        """y[l·M + m] = csi[m, l] — antenna fastest (Eq. 15)."""
        csi = np.arange(6).reshape(2, 3)  # 2 antennas, 3 subcarriers
        y = vectorize_csi_matrix(csi)
        np.testing.assert_array_equal(y, [0, 3, 1, 4, 2, 5])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            vectorize_csi_matrix(np.zeros(6))


class TestJointDictionary:
    def test_shape(self, array, layout):
        angle_grid = AngleGrid(n_points=13)
        delay_grid = DelayGrid(n_points=7)
        dictionary = joint_steering_dictionary(array, layout, angle_grid, delay_grid)
        assert dictionary.shape == (3 * 16, 13 * 7)

    def test_column_matches_clean_measurement(self, array, layout):
        """THE invariant: dictionary column == vectorized clean CSI."""
        angle_grid = AngleGrid(n_points=13)
        delay_grid = DelayGrid(n_points=9, stop_s=800e-9)
        dictionary = joint_steering_dictionary(array, layout, angle_grid, delay_grid)

        angle_index, delay_index = 4, 6
        theta = angle_grid.angles_deg[angle_index]
        tau = delay_grid.toas_s[delay_index]
        profile = MultipathProfile(paths=[PropagationPath(theta, tau, 1.0, is_direct=True)])
        y = vectorize_csi_matrix(synthesize_csi_matrix(profile, array, layout))

        column = dictionary[:, delay_index * angle_grid.n_points + angle_index]
        np.testing.assert_allclose(y, column, atol=1e-12)

    def test_superposition_of_two_grid_paths(self, array, layout):
        angle_grid = AngleGrid(n_points=13)
        delay_grid = DelayGrid(n_points=9, stop_s=800e-9)
        dictionary = joint_steering_dictionary(array, layout, angle_grid, delay_grid)
        profile = MultipathProfile(
            paths=[
                PropagationPath(angle_grid.angles_deg[2], delay_grid.toas_s[1], 1.0, is_direct=True),
                PropagationPath(angle_grid.angles_deg[9], delay_grid.toas_s[5], 0.4j),
            ]
        )
        y = vectorize_csi_matrix(synthesize_csi_matrix(profile, array, layout))
        expected = (
            dictionary[:, 1 * 13 + 2] * 1.0 + dictionary[:, 5 * 13 + 9] * 0.4j
        )
        np.testing.assert_allclose(y, expected, atol=1e-12)

    def test_unit_magnitude(self, array, layout):
        dictionary = joint_steering_dictionary(
            array, layout, AngleGrid(n_points=5), DelayGrid(n_points=4)
        )
        np.testing.assert_allclose(np.abs(dictionary), 1.0)


class TestSteeringCache:
    def test_lazy_construction_and_identity(self, array, layout):
        cache = SteeringCache(array, layout, AngleGrid(n_points=9), DelayGrid(n_points=5))
        assert cache._joint_dictionary is None
        first = cache.joint_dictionary
        second = cache.joint_dictionary
        assert first is second  # built once

    def test_lipschitz_upper_bounds_spectral_norm(self, array, layout):
        cache = SteeringCache(array, layout, AngleGrid(n_points=9), DelayGrid(n_points=5))
        exact = float(np.linalg.norm(cache.joint_dictionary, 2) ** 2)
        assert exact <= cache.joint_lipschitz <= 1.05 * exact

    def test_angle_dictionary_consistent(self, array, layout):
        grid = AngleGrid(n_points=9)
        cache = SteeringCache(array, layout, grid, DelayGrid(n_points=5))
        np.testing.assert_array_equal(
            cache.angle_dictionary, angle_steering_dictionary(array, grid)
        )
