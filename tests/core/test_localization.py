"""Tests for RSSI-weighted multi-AP localization (paper Eq. 19)."""

import numpy as np
import pytest

from repro.channel.geometry import AccessPoint, Room
from repro.core.localization import (
    ApObservation,
    localize_weighted_aoa,
    predicted_aoa_grid,
    rssi_weights,
)
from repro.exceptions import ConfigurationError


ROOM = Room(width=10.0, depth=8.0)
AP_WEST = AccessPoint(position=(0.0, 4.0), axis_direction_deg=90.0, name="west")
AP_SOUTH = AccessPoint(position=(5.0, 0.0), axis_direction_deg=0.0, name="south")


def truth_observation(ap, client, rssi=-50.0):
    return ApObservation(ap, ap.bearing_to_aoa(np.array(client)), rssi)


class TestRssiWeights:
    def test_normalized(self):
        weights = rssi_weights(np.array([-40.0, -50.0, -60.0]))
        assert weights.sum() == pytest.approx(1.0)

    def test_stronger_link_gets_more_weight(self):
        weights = rssi_weights(np.array([-40.0, -60.0]))
        assert weights[0] > weights[1]

    def test_dynamic_range_clipped(self):
        weights = rssi_weights(np.array([-30.0, -100.0]))
        assert weights[1] > 0.0
        assert weights[0] / weights[1] <= 10.0 ** 3 + 1e-9  # 30 dB cap

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            rssi_weights(np.array([]))


class TestPredictedAoaGrid:
    def test_matches_pointwise_bearing(self):
        xs = np.linspace(0.5, 9.5, 7)
        ys = np.linspace(0.5, 7.5, 5)
        grid = predicted_aoa_grid(AP_WEST, xs, ys)
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                expected = AP_WEST.bearing_to_aoa(np.array([x, y]))
                assert grid[i, j] == pytest.approx(expected, abs=1e-9)

    def test_ap_cell_is_finite(self):
        grid = predicted_aoa_grid(AP_WEST, np.array([0.0]), np.array([4.0]))
        assert np.isfinite(grid).all()


class TestLocalization:
    def test_exact_recovery_with_true_aoas(self):
        client = (6.0, 5.0)
        observations = [
            truth_observation(AP_WEST, client),
            truth_observation(AP_SOUTH, client),
        ]
        result = localize_weighted_aoa(observations, ROOM, resolution_m=0.1)
        assert result.error_to(client) < 0.15

    def test_third_ap_improves_noisy_fix(self):
        client = (6.0, 5.0)
        ap_east = AccessPoint(position=(10.0, 4.0), axis_direction_deg=90.0, name="east")
        noisy = [
            ApObservation(AP_WEST, AP_WEST.bearing_to_aoa(np.array(client)) + 8.0, -50.0),
            ApObservation(AP_SOUTH, AP_SOUTH.bearing_to_aoa(np.array(client)) - 8.0, -50.0),
        ]
        two = localize_weighted_aoa(noisy, ROOM, resolution_m=0.1)
        three = localize_weighted_aoa(
            noisy + [truth_observation(ap_east, client)], ROOM, resolution_m=0.1
        )
        assert three.error_to(client) <= two.error_to(client)

    def test_rssi_weight_pulls_toward_trusted_ap(self):
        client = (6.0, 5.0)
        # West AP reports a wrong angle but with weak RSSI: the fix must
        # stay close to what the trusted (strong) APs indicate.
        ap_east = AccessPoint(position=(10.0, 4.0), axis_direction_deg=90.0, name="east")
        bad_weak = [
            ApObservation(AP_WEST, AP_WEST.bearing_to_aoa(np.array(client)) + 40.0, -80.0),
            truth_observation(AP_SOUTH, client, rssi=-40.0),
            truth_observation(ap_east, client, rssi=-40.0),
        ]
        bad_strong = [
            ApObservation(AP_WEST, AP_WEST.bearing_to_aoa(np.array(client)) + 40.0, -30.0),
            truth_observation(AP_SOUTH, client, rssi=-70.0),
            truth_observation(ap_east, client, rssi=-70.0),
        ]
        weak_error = localize_weighted_aoa(bad_weak, ROOM, resolution_m=0.1).error_to(client)
        strong_error = localize_weighted_aoa(bad_strong, ROOM, resolution_m=0.1).error_to(client)
        assert weak_error < strong_error

    def test_requires_two_aps(self):
        with pytest.raises(ConfigurationError):
            localize_weighted_aoa([truth_observation(AP_WEST, (5.0, 5.0))], ROOM)

    def test_rejects_bad_resolution(self):
        observations = [
            truth_observation(AP_WEST, (5.0, 5.0)),
            truth_observation(AP_SOUTH, (5.0, 5.0)),
        ]
        with pytest.raises(ConfigurationError):
            localize_weighted_aoa(observations, ROOM, resolution_m=0.0)

    def test_result_within_room(self):
        observations = [
            ApObservation(AP_WEST, 5.0, -50.0),
            ApObservation(AP_SOUTH, 175.0, -50.0),
        ]
        result = localize_weighted_aoa(observations, ROOM, resolution_m=0.25)
        assert 0 <= result.position[0] <= ROOM.width
        assert 0 <= result.position[1] <= ROOM.depth

    def test_observation_validates_aoa(self):
        with pytest.raises(ConfigurationError):
            ApObservation(AP_WEST, aoa_deg=200.0)
