"""Tests for RSSI-weighted multi-AP localization (paper Eq. 19)."""

import numpy as np
import pytest

from repro.channel.geometry import AccessPoint, Room
from repro.core.localization import (
    ApObservation,
    DroppedAp,
    localize_robust,
    localize_weighted_aoa,
    predicted_aoa_grid,
    rssi_weights,
)
from repro.exceptions import ConfigurationError, QuorumError


ROOM = Room(width=10.0, depth=8.0)
AP_WEST = AccessPoint(position=(0.0, 4.0), axis_direction_deg=90.0, name="west")
AP_SOUTH = AccessPoint(position=(5.0, 0.0), axis_direction_deg=0.0, name="south")


def truth_observation(ap, client, rssi=-50.0):
    return ApObservation(ap, ap.bearing_to_aoa(np.array(client)), rssi)


class TestRssiWeights:
    def test_normalized(self):
        weights = rssi_weights(np.array([-40.0, -50.0, -60.0]))
        assert weights.sum() == pytest.approx(1.0)

    def test_stronger_link_gets_more_weight(self):
        weights = rssi_weights(np.array([-40.0, -60.0]))
        assert weights[0] > weights[1]

    def test_dynamic_range_clipped(self):
        weights = rssi_weights(np.array([-30.0, -100.0]))
        assert weights[1] > 0.0
        assert weights[0] / weights[1] <= 10.0 ** 3 + 1e-9  # 30 dB cap

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            rssi_weights(np.array([]))


class TestPredictedAoaGrid:
    def test_matches_pointwise_bearing(self):
        xs = np.linspace(0.5, 9.5, 7)
        ys = np.linspace(0.5, 7.5, 5)
        grid = predicted_aoa_grid(AP_WEST, xs, ys)
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                expected = AP_WEST.bearing_to_aoa(np.array([x, y]))
                assert grid[i, j] == pytest.approx(expected, abs=1e-9)

    def test_ap_cell_is_finite(self):
        grid = predicted_aoa_grid(AP_WEST, np.array([0.0]), np.array([4.0]))
        assert np.isfinite(grid).all()


class TestLocalization:
    def test_exact_recovery_with_true_aoas(self):
        client = (6.0, 5.0)
        observations = [
            truth_observation(AP_WEST, client),
            truth_observation(AP_SOUTH, client),
        ]
        result = localize_weighted_aoa(observations, ROOM, resolution_m=0.1)
        assert result.error_to(client) < 0.15

    def test_third_ap_improves_noisy_fix(self):
        client = (6.0, 5.0)
        ap_east = AccessPoint(position=(10.0, 4.0), axis_direction_deg=90.0, name="east")
        noisy = [
            ApObservation(AP_WEST, AP_WEST.bearing_to_aoa(np.array(client)) + 8.0, -50.0),
            ApObservation(AP_SOUTH, AP_SOUTH.bearing_to_aoa(np.array(client)) - 8.0, -50.0),
        ]
        two = localize_weighted_aoa(noisy, ROOM, resolution_m=0.1)
        three = localize_weighted_aoa(
            noisy + [truth_observation(ap_east, client)], ROOM, resolution_m=0.1
        )
        assert three.error_to(client) <= two.error_to(client)

    def test_rssi_weight_pulls_toward_trusted_ap(self):
        client = (6.0, 5.0)
        # West AP reports a wrong angle but with weak RSSI: the fix must
        # stay close to what the trusted (strong) APs indicate.
        ap_east = AccessPoint(position=(10.0, 4.0), axis_direction_deg=90.0, name="east")
        bad_weak = [
            ApObservation(AP_WEST, AP_WEST.bearing_to_aoa(np.array(client)) + 40.0, -80.0),
            truth_observation(AP_SOUTH, client, rssi=-40.0),
            truth_observation(ap_east, client, rssi=-40.0),
        ]
        bad_strong = [
            ApObservation(AP_WEST, AP_WEST.bearing_to_aoa(np.array(client)) + 40.0, -30.0),
            truth_observation(AP_SOUTH, client, rssi=-70.0),
            truth_observation(ap_east, client, rssi=-70.0),
        ]
        weak_error = localize_weighted_aoa(bad_weak, ROOM, resolution_m=0.1).error_to(client)
        strong_error = localize_weighted_aoa(bad_strong, ROOM, resolution_m=0.1).error_to(client)
        assert weak_error < strong_error

    def test_requires_two_aps(self):
        with pytest.raises(ConfigurationError):
            localize_weighted_aoa([truth_observation(AP_WEST, (5.0, 5.0))], ROOM)

    def test_rejects_bad_resolution(self):
        observations = [
            truth_observation(AP_WEST, (5.0, 5.0)),
            truth_observation(AP_SOUTH, (5.0, 5.0)),
        ]
        with pytest.raises(ConfigurationError):
            localize_weighted_aoa(observations, ROOM, resolution_m=0.0)

    def test_result_within_room(self):
        observations = [
            ApObservation(AP_WEST, 5.0, -50.0),
            ApObservation(AP_SOUTH, 175.0, -50.0),
        ]
        result = localize_weighted_aoa(observations, ROOM, resolution_m=0.25)
        assert 0 <= result.position[0] <= ROOM.width
        assert 0 <= result.position[1] <= ROOM.depth

    def test_observation_validates_aoa(self):
        with pytest.raises(ConfigurationError):
            ApObservation(AP_WEST, aoa_deg=200.0)


AP_EAST = AccessPoint(position=(10.0, 4.0), axis_direction_deg=90.0, name="east")
AP_NORTH = AccessPoint(position=(5.0, 8.0), axis_direction_deg=0.0, name="north")


class TestDegradedLocalization:
    def _observations(self, client, aps=(AP_WEST, AP_SOUTH, AP_EAST, AP_NORTH)):
        return [truth_observation(ap, client) for ap in aps]

    def test_full_survivor_fix_matches_plain_localization(self):
        client = (4.0, 3.0)
        observations = self._observations(client)
        plain = localize_weighted_aoa(observations, ROOM, resolution_m=0.1)
        robust = localize_robust(observations, ROOM, resolution_m=0.1)
        assert robust.position == plain.position
        assert robust.cost == plain.cost
        assert not robust.degraded
        assert robust.dropped_aps == ()
        assert robust.used_aps == ("west", "south", "east", "north")

    def test_consistent_full_quorum_fix_has_high_confidence(self):
        robust = localize_robust(self._observations((4.0, 3.0)), ROOM)
        assert 0.9 < robust.confidence <= 1.0

    def test_dropping_aps_lowers_confidence_and_flags_degraded(self):
        client = (4.0, 3.0)
        full = localize_robust(self._observations(client), ROOM)
        degraded = localize_robust(
            self._observations(client, aps=(AP_WEST, AP_SOUTH)),
            ROOM,
            dropped=[DroppedAp("east", "outage"), DroppedAp("north", "outage")],
        )
        assert degraded.degraded
        assert degraded.confidence < full.confidence
        assert degraded.dropped_aps == (
            DroppedAp("east", "outage"),
            DroppedAp("north", "outage"),
        )

    def test_disagreeing_survivors_lower_confidence(self):
        client = (4.0, 3.0)
        consistent = localize_robust(self._observations(client), ROOM)
        skewed = [
            truth_observation(AP_WEST, client),
            truth_observation(AP_SOUTH, client),
            ApObservation(AP_EAST, 30.0, -50.0),  # way off the truth
            truth_observation(AP_NORTH, client),
        ]
        assert localize_robust(skewed, ROOM).confidence < consistent.confidence

    def test_below_quorum_raises_with_reasons(self):
        with pytest.raises(QuorumError, match="below quorum") as excinfo:
            localize_robust(
                [truth_observation(AP_WEST, (4.0, 3.0))],
                ROOM,
                dropped=[DroppedAp("south", "solver: diverged")],
            )
        assert "south: solver: diverged" in str(excinfo.value)

    def test_min_quorum_must_be_at_least_two(self):
        with pytest.raises(ConfigurationError):
            localize_robust(self._observations((4.0, 3.0)), ROOM, min_quorum=1)

    def test_raised_quorum_is_enforced(self):
        observations = self._observations((4.0, 3.0), aps=(AP_WEST, AP_SOUTH))
        localize_robust(observations, ROOM, min_quorum=2)  # passes
        with pytest.raises(QuorumError):
            localize_robust(observations, ROOM, min_quorum=3)

    def test_to_dict_is_json_serializable(self):
        import json

        robust = localize_robust(
            self._observations((4.0, 3.0), aps=(AP_WEST, AP_SOUTH)),
            ROOM,
            dropped=[DroppedAp("east", "outage")],
        )
        payload = json.loads(json.dumps(robust.to_dict()))
        assert payload["degraded"] is True
        assert payload["quorum"] == 2
        assert payload["dropped_aps"] == [{"name": "east", "reason": "outage"}]
