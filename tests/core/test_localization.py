"""Tests for RSSI-weighted multi-AP localization (paper Eq. 19)."""

import numpy as np
import pytest

from repro.channel.geometry import AccessPoint, Room
from repro.core.localization import (
    ApObservation,
    DroppedAp,
    localize_robust,
    localize_weighted_aoa,
    predicted_aoa_grid,
    rssi_weights,
)
from repro.exceptions import ConfigurationError, QuorumError


ROOM = Room(width=10.0, depth=8.0)
AP_WEST = AccessPoint(position=(0.0, 4.0), axis_direction_deg=90.0, name="west")
AP_SOUTH = AccessPoint(position=(5.0, 0.0), axis_direction_deg=0.0, name="south")


def truth_observation(ap, client, rssi=-50.0):
    return ApObservation(ap, ap.bearing_to_aoa(np.array(client)), rssi)


class TestRssiWeights:
    def test_normalized(self):
        weights = rssi_weights(np.array([-40.0, -50.0, -60.0]))
        assert weights.sum() == pytest.approx(1.0)

    def test_stronger_link_gets_more_weight(self):
        weights = rssi_weights(np.array([-40.0, -60.0]))
        assert weights[0] > weights[1]

    def test_dynamic_range_clipped(self):
        weights = rssi_weights(np.array([-30.0, -100.0]))
        assert weights[1] > 0.0
        assert weights[0] / weights[1] <= 10.0 ** 3 + 1e-9  # 30 dB cap

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            rssi_weights(np.array([]))


class TestPredictedAoaGrid:
    def test_matches_pointwise_bearing(self):
        xs = np.linspace(0.5, 9.5, 7)
        ys = np.linspace(0.5, 7.5, 5)
        grid = predicted_aoa_grid(AP_WEST, xs, ys)
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                expected = AP_WEST.bearing_to_aoa(np.array([x, y]))
                assert grid[i, j] == pytest.approx(expected, abs=1e-9)

    def test_ap_cell_is_finite(self):
        grid = predicted_aoa_grid(AP_WEST, np.array([0.0]), np.array([4.0]))
        assert np.isfinite(grid).all()


class TestLocalization:
    def test_exact_recovery_with_true_aoas(self):
        client = (6.0, 5.0)
        observations = [
            truth_observation(AP_WEST, client),
            truth_observation(AP_SOUTH, client),
        ]
        result = localize_weighted_aoa(observations, ROOM, resolution_m=0.1)
        assert result.error_to(client) < 0.15

    def test_third_ap_improves_noisy_fix(self):
        client = (6.0, 5.0)
        ap_east = AccessPoint(position=(10.0, 4.0), axis_direction_deg=90.0, name="east")
        noisy = [
            ApObservation(AP_WEST, AP_WEST.bearing_to_aoa(np.array(client)) + 8.0, -50.0),
            ApObservation(AP_SOUTH, AP_SOUTH.bearing_to_aoa(np.array(client)) - 8.0, -50.0),
        ]
        two = localize_weighted_aoa(noisy, ROOM, resolution_m=0.1)
        three = localize_weighted_aoa(
            noisy + [truth_observation(ap_east, client)], ROOM, resolution_m=0.1
        )
        assert three.error_to(client) <= two.error_to(client)

    def test_rssi_weight_pulls_toward_trusted_ap(self):
        client = (6.0, 5.0)
        # West AP reports a wrong angle but with weak RSSI: the fix must
        # stay close to what the trusted (strong) APs indicate.
        ap_east = AccessPoint(position=(10.0, 4.0), axis_direction_deg=90.0, name="east")
        bad_weak = [
            ApObservation(AP_WEST, AP_WEST.bearing_to_aoa(np.array(client)) + 40.0, -80.0),
            truth_observation(AP_SOUTH, client, rssi=-40.0),
            truth_observation(ap_east, client, rssi=-40.0),
        ]
        bad_strong = [
            ApObservation(AP_WEST, AP_WEST.bearing_to_aoa(np.array(client)) + 40.0, -30.0),
            truth_observation(AP_SOUTH, client, rssi=-70.0),
            truth_observation(ap_east, client, rssi=-70.0),
        ]
        weak_error = localize_weighted_aoa(bad_weak, ROOM, resolution_m=0.1).error_to(client)
        strong_error = localize_weighted_aoa(bad_strong, ROOM, resolution_m=0.1).error_to(client)
        assert weak_error < strong_error

    def test_requires_two_aps(self):
        with pytest.raises(ConfigurationError):
            localize_weighted_aoa([truth_observation(AP_WEST, (5.0, 5.0))], ROOM)

    def test_rejects_bad_resolution(self):
        observations = [
            truth_observation(AP_WEST, (5.0, 5.0)),
            truth_observation(AP_SOUTH, (5.0, 5.0)),
        ]
        with pytest.raises(ConfigurationError):
            localize_weighted_aoa(observations, ROOM, resolution_m=0.0)

    def test_result_within_room(self):
        observations = [
            ApObservation(AP_WEST, 5.0, -50.0),
            ApObservation(AP_SOUTH, 175.0, -50.0),
        ]
        result = localize_weighted_aoa(observations, ROOM, resolution_m=0.25)
        assert 0 <= result.position[0] <= ROOM.width
        assert 0 <= result.position[1] <= ROOM.depth

    def test_observation_validates_aoa(self):
        with pytest.raises(ConfigurationError):
            ApObservation(AP_WEST, aoa_deg=200.0)


AP_EAST = AccessPoint(position=(10.0, 4.0), axis_direction_deg=90.0, name="east")
AP_NORTH = AccessPoint(position=(5.0, 8.0), axis_direction_deg=0.0, name="north")


class TestDegradedLocalization:
    def _observations(self, client, aps=(AP_WEST, AP_SOUTH, AP_EAST, AP_NORTH)):
        return [truth_observation(ap, client) for ap in aps]

    def test_full_survivor_fix_matches_plain_localization(self):
        client = (4.0, 3.0)
        observations = self._observations(client)
        plain = localize_weighted_aoa(observations, ROOM, resolution_m=0.1)
        robust = localize_robust(observations, ROOM, resolution_m=0.1)
        assert robust.position == plain.position
        assert robust.cost == plain.cost
        assert not robust.degraded
        assert robust.dropped_aps == ()
        assert robust.used_aps == ("west", "south", "east", "north")

    def test_consistent_full_quorum_fix_has_high_confidence(self):
        robust = localize_robust(self._observations((4.0, 3.0)), ROOM)
        assert 0.9 < robust.confidence <= 1.0

    def test_dropping_aps_lowers_confidence_and_flags_degraded(self):
        client = (4.0, 3.0)
        full = localize_robust(self._observations(client), ROOM)
        degraded = localize_robust(
            self._observations(client, aps=(AP_WEST, AP_SOUTH)),
            ROOM,
            dropped=[DroppedAp("east", "outage"), DroppedAp("north", "outage")],
        )
        assert degraded.degraded
        assert degraded.confidence < full.confidence
        assert degraded.dropped_aps == (
            DroppedAp("east", "outage"),
            DroppedAp("north", "outage"),
        )

    def test_disagreeing_survivors_lower_confidence(self):
        client = (4.0, 3.0)
        consistent = localize_robust(self._observations(client), ROOM)
        skewed = [
            truth_observation(AP_WEST, client),
            truth_observation(AP_SOUTH, client),
            ApObservation(AP_EAST, 30.0, -50.0),  # way off the truth
            truth_observation(AP_NORTH, client),
        ]
        assert localize_robust(skewed, ROOM).confidence < consistent.confidence

    def test_below_quorum_raises_with_reasons(self):
        with pytest.raises(QuorumError, match="below quorum") as excinfo:
            localize_robust(
                [truth_observation(AP_WEST, (4.0, 3.0))],
                ROOM,
                dropped=[DroppedAp("south", "solver: diverged")],
            )
        assert "south: solver: diverged" in str(excinfo.value)

    def test_min_quorum_must_be_at_least_two(self):
        with pytest.raises(ConfigurationError):
            localize_robust(self._observations((4.0, 3.0)), ROOM, min_quorum=1)

    def test_raised_quorum_is_enforced(self):
        observations = self._observations((4.0, 3.0), aps=(AP_WEST, AP_SOUTH))
        localize_robust(observations, ROOM, min_quorum=2)  # passes
        with pytest.raises(QuorumError):
            localize_robust(observations, ROOM, min_quorum=3)

    def test_to_dict_is_json_serializable(self):
        import json

        robust = localize_robust(
            self._observations((4.0, 3.0), aps=(AP_WEST, AP_SOUTH)),
            ROOM,
            dropped=[DroppedAp("east", "outage")],
        )
        payload = json.loads(json.dumps(robust.to_dict()))
        assert payload["degraded"] is True
        assert payload["quorum"] == 2
        assert payload["dropped_aps"] == [{"name": "east", "reason": "outage"}]


# ---------------------------------------------------------------------------
# Trust scoring and consensus localization
# ---------------------------------------------------------------------------

from repro.core.localization import (  # noqa: E402
    TRUST_THRESHOLD,
    ApEvidence,
    ApTrustScore,
    ConsensusResult,
    localize_consensus,
    peak_dispersion,
    score_ap_trust,
)

ALL_APS = (AP_WEST, AP_SOUTH, AP_EAST, AP_NORTH)


def _biased_observation(ap, client, bias_deg, rssi=-50.0):
    aoa = float(np.clip(ap.bearing_to_aoa(np.array(client)) + bias_deg, 0.0, 180.0))
    return ApObservation(ap, aoa, rssi)


class TestPeakDispersion:
    def test_single_spike_has_zero_dispersion(self):
        angles = np.linspace(0.0, 180.0, 181)
        power = np.zeros(181)
        power[90] = 1.0
        assert peak_dispersion(angles, power) == 0.0

    def test_flat_spectrum_is_dispersed(self):
        angles = np.linspace(0.0, 180.0, 181)
        dispersion = peak_dispersion(angles, np.ones(181))
        assert dispersion > 0.8

    def test_zero_spectrum_is_maximally_dispersed(self):
        angles = np.linspace(0.0, 180.0, 11)
        assert peak_dispersion(angles, np.zeros(11)) == 1.0

    def test_rejects_shape_mismatch_and_bad_window(self):
        with pytest.raises(ConfigurationError):
            peak_dispersion(np.arange(5.0), np.ones(4))
        with pytest.raises(ConfigurationError):
            peak_dispersion(np.arange(5.0), np.ones(5), window_deg=0.0)


class TestScoreApTrust:
    def test_clean_ap_scores_near_one(self):
        assert score_ap_trust(0.0) == pytest.approx(1.0)
        assert score_ap_trust(2.0) > 0.9

    def test_large_disagreement_falls_below_threshold(self):
        assert score_ap_trust(15.0) < TRUST_THRESHOLD
        assert score_ap_trust(15.0) < score_ap_trust(8.0)

    def test_solver_evidence_lowers_trust(self):
        base = score_ap_trust(3.0)
        with_outliers = score_ap_trust(3.0, ApEvidence(outlier_fraction=0.6))
        with_smear = score_ap_trust(3.0, ApEvidence(peak_dispersion=0.8))
        assert with_outliers < base
        assert with_smear < base

    def test_small_evidence_is_free(self):
        # Below-floor evidence (noise-level e energy, ordinary multipath
        # spread) must not penalize clean APs.
        clean = score_ap_trust(3.0)
        slight = score_ap_trust(
            3.0, ApEvidence(outlier_fraction=0.05, peak_dispersion=0.2)
        )
        assert slight == pytest.approx(clean)

    def test_evidence_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            ApEvidence(outlier_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            ApEvidence(peak_dispersion=float("nan"))


class TestWeightedLocalization:
    def test_explicit_weights_override_rssi(self):
        client = (4.0, 3.0)
        observations = [
            truth_observation(AP_WEST, client, rssi=-40.0),
            truth_observation(AP_SOUTH, client, rssi=-70.0),
            ApObservation(AP_EAST, 40.0, -40.0),  # strong but wrong
        ]
        # Zero weight on the wrong AP recovers the clean fix even though
        # its RSSI would dominate.
        located = localize_weighted_aoa(
            observations, ROOM, weights=[1.0, 1.0, 0.0]
        )
        assert located.error_to(client) < 0.2

    def test_weights_validated(self):
        client = (4.0, 3.0)
        observations = [
            truth_observation(AP_WEST, client),
            truth_observation(AP_SOUTH, client),
        ]
        with pytest.raises(ConfigurationError):
            localize_weighted_aoa(observations, ROOM, weights=[1.0])
        with pytest.raises(ConfigurationError):
            localize_weighted_aoa(observations, ROOM, weights=[-1.0, 1.0])
        with pytest.raises(ConfigurationError):
            localize_weighted_aoa(observations, ROOM, weights=[0.0, 0.0])

    def test_trust_mapping_shrinks_bad_ap_influence(self):
        client = (4.0, 3.0)
        observations = [
            truth_observation(AP_WEST, client),
            truth_observation(AP_SOUTH, client),
            _biased_observation(AP_EAST, client, 25.0),
            truth_observation(AP_NORTH, client),
        ]
        blind = localize_robust(observations, ROOM)
        trusted = localize_robust(observations, ROOM, trust={"east": 0.01})
        assert trusted.error_to(client) < blind.error_to(client)

    def test_all_zero_trust_falls_back_to_rssi_weights(self):
        client = (4.0, 3.0)
        observations = [
            truth_observation(AP_WEST, client),
            truth_observation(AP_SOUTH, client),
        ]
        fix = localize_robust(
            observations, ROOM, trust={"west": 0.0, "south": 0.0}
        )
        assert fix.error_to(client) < 0.2


class TestConsensusLocalization:
    def _observations(self, client, bias=None):
        out = []
        for ap in ALL_APS:
            bias_deg = bias.get(ap.name, 0.0) if bias else 0.0
            out.append(_biased_observation(ap, client, bias_deg))
        return out

    def test_clean_scene_matches_robust_fix(self):
        client = (4.0, 3.0)
        cons = localize_consensus(self._observations(client), ROOM)
        robust = localize_robust(self._observations(client), ROOM)
        assert cons.position == robust.position
        assert not cons.contaminated
        assert all(score.trusted for score in cons.trust_scores)
        assert cons.used_aps == tuple(ap.name for ap in ALL_APS)

    def test_single_nlos_ap_is_flagged_and_excluded(self):
        client = (4.0, 3.0)
        cons = localize_consensus(
            self._observations(client, bias={"east": 18.0}), ROOM
        )
        assert cons.contaminated
        assert cons.trust_for("east") < TRUST_THRESHOLD
        assert "east" not in cons.used_aps
        assert any(d.name == "east" and "untrusted" in d.reason for d in cons.dropped_aps)
        assert cons.error_to(client) < 0.3

    def test_consensus_beats_blind_fix_under_nlos(self):
        client = (6.0, 5.0)
        observations = self._observations(client, bias={"north": 20.0})
        blind = localize_robust(observations, ROOM)
        cons = localize_consensus(observations, ROOM)
        assert cons.error_to(client) < blind.error_to(client)

    def test_solver_evidence_feeds_trust(self):
        client = (4.0, 3.0)
        cons = localize_consensus(
            self._observations(client),
            ROOM,
            evidence={"east": ApEvidence(outlier_fraction=0.9, peak_dispersion=0.9)},
        )
        east = [s for s in cons.trust_scores if s.name == "east"][0]
        west = [s for s in cons.trust_scores if s.name == "west"][0]
        assert east.trust < west.trust
        assert east.outlier_fraction == 0.9

    def test_majority_contamination_is_detected(self):
        client = (4.0, 3.0)
        cons = localize_consensus(
            self._observations(
                client, bias={"south": 22.0, "east": 22.0, "north": 22.0}
            ),
            ROOM,
        )
        assert cons.contaminated

    def test_below_quorum_raises(self):
        with pytest.raises(QuorumError):
            localize_consensus(
                [truth_observation(AP_WEST, (4.0, 3.0))], ROOM
            )

    def test_validates_parameters(self):
        observations = self._observations((4.0, 3.0))
        with pytest.raises(ConfigurationError):
            localize_consensus(observations, ROOM, min_quorum=1)
        with pytest.raises(ConfigurationError):
            localize_consensus(observations, ROOM, inlier_rms_deg=0.0)

    def test_deterministic(self):
        observations = self._observations((4.0, 3.0), bias={"east": 18.0})
        first = localize_consensus(observations, ROOM)
        second = localize_consensus(observations, ROOM)
        assert first == second

    def test_to_dict_is_json_serializable(self):
        import json

        cons = localize_consensus(
            self._observations((4.0, 3.0), bias={"east": 18.0}),
            ROOM,
            dropped=[DroppedAp("extra", "outage")],
        )
        payload = json.loads(json.dumps(cons.to_dict()))
        assert payload["contaminated"] is True
        assert {s["name"] for s in payload["trust_scores"]} == {
            "west", "south", "east", "north"
        }
        assert payload["dropped_aps"][0] == {"name": "extra", "reason": "outage"}

    def test_trust_for_unknown_ap_raises(self):
        cons = localize_consensus(self._observations((4.0, 3.0)), ROOM)
        with pytest.raises(KeyError):
            cons.trust_for("nonexistent")
