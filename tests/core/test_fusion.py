"""Tests for delay alignment, SVD reduction and multi-packet fusion."""

import numpy as np
import pytest

from repro.channel.csi import CsiSynthesizer, synthesize_csi_matrix
from repro.channel.impairments import ImpairmentModel
from repro.channel.paths import MultipathProfile, PropagationPath, random_profile
from repro.core.fusion import (
    align_packet_delays,
    estimate_relative_delay,
    fuse_packets,
    svd_reduce_snapshots,
)
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.steering import SteeringCache
from repro.exceptions import SolverError


@pytest.fixture
def cache(array, layout):
    return SteeringCache(
        array, layout, AngleGrid(n_points=61), DelayGrid(n_points=21, stop_s=800e-9)
    )


class TestRelativeDelay:
    def test_recovers_known_shift(self, array, layout, two_path_profile):
        base = synthesize_csi_matrix(two_path_profile, array, layout)
        for true_delay in (0.0, 25e-9, 120e-9, 300e-9):
            shifted = synthesize_csi_matrix(
                two_path_profile, array, layout, extra_delay_s=true_delay
            )
            estimated = estimate_relative_delay(base, shifted, layout)
            assert estimated == pytest.approx(true_delay, abs=2e-9)

    def test_negative_shift(self, array, layout, two_path_profile):
        late = synthesize_csi_matrix(two_path_profile, array, layout, extra_delay_s=100e-9)
        early = synthesize_csi_matrix(two_path_profile, array, layout, extra_delay_s=20e-9)
        assert estimate_relative_delay(late, early, layout) == pytest.approx(-80e-9, abs=2e-9)

    def test_robust_to_noise(self, array, layout, two_path_profile, rng):
        from repro.channel.noise import awgn

        base = awgn(synthesize_csi_matrix(two_path_profile, array, layout), 0.0, rng)
        shifted = awgn(
            synthesize_csi_matrix(two_path_profile, array, layout, extra_delay_s=150e-9),
            0.0,
            rng,
        )
        assert estimate_relative_delay(base, shifted, layout) == pytest.approx(150e-9, abs=10e-9)

    def test_rejects_shape_mismatch(self, layout):
        with pytest.raises(SolverError):
            estimate_relative_delay(np.zeros((3, 16)), np.zeros((3, 8)), layout)


class TestAlignment:
    def test_aligned_packets_become_identical(self, array, layout, two_path_profile):
        delays = [0.0, 60e-9, 140e-9]
        batch = np.stack(
            [
                synthesize_csi_matrix(two_path_profile, array, layout, extra_delay_s=d)
                for d in delays
            ]
        )
        aligned, estimated = align_packet_delays(batch, layout)
        np.testing.assert_allclose(estimated, [0.0, 60e-9, 140e-9], atol=2e-9)
        for p in range(1, 3):
            np.testing.assert_allclose(aligned[p], aligned[0], atol=1e-3)

    def test_rejects_2d(self, layout):
        with pytest.raises(SolverError):
            align_packet_delays(np.zeros((3, 16)), layout)


class TestSvdReduce:
    def test_preserves_column_space(self, rng):
        y = rng.standard_normal((20, 3)) @ rng.standard_normal((3, 12))
        reduced = svd_reduce_snapshots(y, rank=3)
        assert reduced.shape == (20, 3)
        # Column spaces coincide for an exactly rank-3 matrix.
        q_full, _ = np.linalg.qr(y[:, :3])
        projection = q_full @ (q_full.T @ reduced)
        np.testing.assert_allclose(projection, reduced, atol=1e-8)

    def test_no_op_when_already_small(self, rng):
        y = rng.standard_normal((10, 2))
        assert svd_reduce_snapshots(y, rank=5) is y

    def test_preserves_frobenius_energy_of_signal(self, rng):
        y = rng.standard_normal((15, 2)) @ rng.standard_normal((2, 30))
        reduced = svd_reduce_snapshots(y, rank=2)
        assert np.linalg.norm(reduced) == pytest.approx(np.linalg.norm(y), rel=1e-9)

    def test_rejects_bad_rank(self, rng):
        with pytest.raises(SolverError):
            svd_reduce_snapshots(rng.standard_normal((4, 4)), rank=0)


class TestFusePackets:
    def test_fused_sharper_than_single_at_low_snr(self, array, layout, cache, rng):
        """The paper Fig. 4 claim: fusion sharpens the spectrum."""
        profile = random_profile(rng, n_paths=3, direct_aoa_deg=120.0)
        synthesizer = CsiSynthesizer(array, layout, ImpairmentModel(), seed=0)
        trace = synthesizer.packets(profile, n_packets=15, snr_db=2.0, rng=rng)

        from repro.core.joint import estimate_joint_spectrum

        single, _ = estimate_joint_spectrum(trace.packet(0), cache)
        fused, _ = fuse_packets(trace.csi, cache)
        single_error = single.angle_marginal().closest_peak_error(120.0, max_peaks=4)
        fused_error = fused.angle_marginal().closest_peak_error(120.0, max_peaks=4)
        assert fused_error <= single_error + 2.0

    def test_single_packet_input_accepted(self, array, layout, cache, two_path_profile, rng):
        csi = synthesize_csi_matrix(two_path_profile, array, layout)
        spectrum, _ = fuse_packets(csi, cache)
        assert spectrum.power.shape == (61, 21)

    def test_alignment_flag_matters_with_large_delays(self, array, layout, cache, rng):
        """Without alignment the joint-support assumption breaks."""
        profile = MultipathProfile(
            paths=[PropagationPath(90.0, 100e-9, 1.0, is_direct=True)]
        )
        impairments = ImpairmentModel(detection_delay_range_s=400e-9, sfo_std_s=0.0)
        synthesizer = CsiSynthesizer(array, layout, impairments, seed=0)
        trace = synthesizer.packets(profile, n_packets=8, snr_db=15.0, rng=rng)

        aligned, _ = fuse_packets(trace.csi, cache, align_delays=True)
        unaligned, _ = fuse_packets(trace.csi, cache, align_delays=False)
        # Aligned: a single dominant ToA ridge.  Unaligned: energy smeared
        # across many delays.
        def toa_spread(spectrum):
            marginal = spectrum.power.max(axis=0)
            marginal = marginal / marginal.max()
            return np.count_nonzero(marginal > 0.3)

        assert toa_spread(aligned) <= toa_spread(unaligned)

    def test_deterministic(self, array, layout, cache, two_path_profile):
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        synth1 = CsiSynthesizer(array, layout, ImpairmentModel(), seed=1)
        synth2 = CsiSynthesizer(array, layout, ImpairmentModel(), seed=1)
        t1 = synth1.packets(two_path_profile, n_packets=3, snr_db=10.0, rng=rng1)
        t2 = synth2.packets(two_path_profile, n_packets=3, snr_db=10.0, rng=rng2)
        s1, _ = fuse_packets(t1.csi, cache)
        s2, _ = fuse_packets(t2.csi, cache)
        np.testing.assert_allclose(s1.power, s2.power)
