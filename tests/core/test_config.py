"""Validation tests for RoArrayConfig."""

import pytest

from repro.core.config import RoArrayConfig
from repro.core.grids import AngleGrid, DelayGrid
from repro.exceptions import ConfigurationError


class TestDefaults:
    def test_paper_working_point(self):
        config = RoArrayConfig()
        assert config.angle_grid.n_points == 91
        assert config.delay_grid.n_points == 50
        assert config.delay_grid.stop_s == pytest.approx(800e-9)

    def test_refinement_off_by_default(self):
        assert RoArrayConfig().refine_off_grid is False


class TestValidation:
    def test_rejects_bad_kappa_fraction(self):
        for fraction in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ConfigurationError):
                RoArrayConfig(kappa_fraction=fraction)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            RoArrayConfig(max_iterations=0)

    def test_rejects_zero_svd_rank(self):
        with pytest.raises(ConfigurationError):
            RoArrayConfig(svd_rank=0)

    def test_rejects_zero_max_paths(self):
        with pytest.raises(ConfigurationError):
            RoArrayConfig(max_paths=0)

    def test_rejects_bad_peak_floor(self):
        for floor in (0.0, 1.0):
            with pytest.raises(ConfigurationError):
                RoArrayConfig(peak_floor=floor)

    def test_custom_grids_accepted(self):
        config = RoArrayConfig(
            angle_grid=AngleGrid(n_points=37), delay_grid=DelayGrid(n_points=11)
        )
        assert config.angle_grid.spacing_deg == pytest.approx(5.0)

    def test_frozen(self):
        config = RoArrayConfig()
        with pytest.raises(AttributeError):
            config.max_paths = 3  # type: ignore[misc]
