"""Unit tests for the batch-evaluation runtime."""

from __future__ import annotations

import pickle

import pytest

from repro.baselines.arraytrack import ArrayTrackEstimator
from repro.baselines.spotfi import SpotFiEstimator
from repro.core.pipeline import RoArrayEstimator
from repro.exceptions import ConfigurationError, SolverError
from repro.runtime import BatchEvaluator, EstimatorSpec, evaluate_traces
from tests.runtime.conftest import make_traces, poison_trace


class TestEstimatorSpec:
    def test_roarray_spec_collapses_to_config(self, small_estimator):
        spec = EstimatorSpec.for_system(small_estimator)
        assert spec.kind == "roarray"
        assert spec.config is small_estimator.config
        rebuilt = spec.build()
        assert isinstance(rebuilt, RoArrayEstimator)
        assert rebuilt is not small_estimator
        assert rebuilt.config == small_estimator.config

    def test_roarray_spec_does_not_ship_the_dictionary(self, small_estimator):
        _ = small_estimator.cache.joint_dictionary  # warm the original
        spec = EstimatorSpec.for_system(small_estimator)
        payload = pickle.dumps(spec)
        dictionary_bytes = small_estimator.cache.joint_dictionary.nbytes
        assert len(payload) < dictionary_bytes

    def test_baseline_systems_wrap_as_instances(self):
        for system in (SpotFiEstimator(), ArrayTrackEstimator()):
            spec = EstimatorSpec.for_system(system)
            assert spec.kind == "instance"
            assert spec.build() is system
            assert pickle.loads(pickle.dumps(spec)).build().name == system.name

    def test_rejects_non_system(self):
        with pytest.raises(ConfigurationError):
            EstimatorSpec.for_system(object())

    def test_spec_passthrough(self, small_estimator):
        spec = EstimatorSpec.for_system(small_estimator)
        assert EstimatorSpec.for_system(spec) is spec


class TestBatchEvaluatorSequential:
    def test_matches_direct_analyze(self, small_estimator, workload):
        expected = [small_estimator.analyze(trace) for trace in workload]
        result = BatchEvaluator(small_estimator, workers=0).evaluate(workload)
        assert result.strict_analyses() == expected

    def test_outcomes_are_ordered_and_seeded(self, small_estimator, workload):
        result = BatchEvaluator(small_estimator, base_seed=100).evaluate(workload)
        assert [o.index for o in result.outcomes] == list(range(len(workload)))
        assert result.report.n_jobs == len(workload)

    def test_empty_batch(self, small_estimator):
        result = BatchEvaluator(small_estimator).evaluate([])
        assert result.outcomes == []
        assert result.report.throughput_jobs_per_s == 0.0

    def test_failure_is_tagged_not_raised(self, small_estimator, workload):
        jobs = [workload[0], poison_trace(workload[1]), workload[2]]
        result = BatchEvaluator(small_estimator).evaluate(jobs)
        assert [o.ok for o in result.outcomes] == [True, False, True]
        failure = result.outcomes[1].failure
        assert failure.error_type == "SolverError"
        assert result.report.n_failures == 1

    def test_strict_analyses_raises_on_failure(self, small_estimator, workload):
        result = BatchEvaluator(small_estimator).evaluate([poison_trace(workload[0])])
        with pytest.raises(SolverError, match="1 of 1 batch jobs failed"):
            result.strict_analyses()

    def test_analyses_property_keeps_placeholders(self, small_estimator, workload):
        result = BatchEvaluator(small_estimator).evaluate(
            [workload[0], poison_trace(workload[1])]
        )
        analyses = result.analyses
        assert analyses[0] is not None and analyses[1] is None

    def test_report_stage_totals(self, small_estimator, workload):
        report = BatchEvaluator(small_estimator).evaluate(workload[:3]).report
        assert report.stages.dictionary_s > 0.0  # one warmup, counted once
        assert report.stages.solve_s > 0.0
        assert report.stages.peaks_s >= 0.0
        assert report.busy_s == pytest.approx(sum(report.job_seconds))
        assert report.throughput_jobs_per_s > 0.0

    def test_local_system_is_reused_across_calls(self, small_estimator, workload):
        evaluator = BatchEvaluator(small_estimator, workers=0)
        first = evaluator.evaluate(workload[:2]).report
        second = evaluator.evaluate(workload[:2]).report
        # First call pays the cache build; later calls see a warm cache
        # (the per-job warmup check is a no-op costing microseconds).
        assert first.stages.dictionary_s > second.stages.dictionary_s
        assert second.stages.dictionary_s < 1e-3

    def test_validates_parameters(self, small_estimator):
        with pytest.raises(ConfigurationError):
            BatchEvaluator(small_estimator, workers=-1)
        with pytest.raises(ConfigurationError):
            BatchEvaluator(small_estimator, chunk_size=0)

    def test_evaluate_traces_wrapper(self, small_estimator, workload):
        result = evaluate_traces(small_estimator, workload[:2])
        assert len(result.outcomes) == 2
        assert result.report.workers == 0


class TestBatchEvaluatorParallel:
    def test_baseline_system_in_pool(self, workload):
        system = ArrayTrackEstimator()
        expected = [system.analyze(trace) for trace in workload[:4]]
        result = BatchEvaluator(system, workers=2).evaluate(workload[:4])
        # repr-compare: ArrayTrack reports toa_s=nan, and nan != nan
        # would defeat dataclass equality despite identical values.
        assert repr(result.strict_analyses()) == repr(expected)

    def test_chunk_size_does_not_change_results(self, small_estimator, workload):
        baseline = BatchEvaluator(small_estimator, workers=0).evaluate(workload)
        for chunk_size in (1, 2, 5):
            chunked = BatchEvaluator(
                small_estimator, workers=2, chunk_size=chunk_size
            ).evaluate(workload)
            assert chunked.strict_analyses() == baseline.strict_analyses()
            assert chunked.report.chunk_size == chunk_size

    def test_report_reflects_worker_count(self, small_estimator, workload):
        report = BatchEvaluator(small_estimator, workers=2).evaluate(workload).report
        assert report.workers == 2
        assert "2 worker(s)" in report.summary()


class TestSteeringCacheWarmup:
    def test_warmup_builds_everything(self, small_estimator):
        cache = small_estimator.cache
        assert cache.build_seconds == {}
        cache.warmup()
        # The dense joint dictionary is deliberately absent: the solve
        # paths run on the structured joint_operator.
        assert set(cache.build_seconds) == {
            "angle_dictionary",
            "angle_lipschitz",
            "joint_operator",
            "joint_lipschitz",
        }
        assert cache.warmup_seconds == pytest.approx(sum(cache.build_seconds.values()))

    def test_warmup_is_idempotent(self, small_estimator):
        cache = small_estimator.cache.warmup()
        before = dict(cache.build_seconds)
        cache.warmup()
        assert cache.build_seconds == before


class TestTracePickling:
    def test_round_trip_is_exact(self, workload):
        for trace in workload:
            clone = pickle.loads(pickle.dumps(trace))
            assert clone.equals(trace)
            assert trace.equals(clone)

    def test_equals_is_value_based_and_nan_aware(self, workload):
        trace = poison_trace(workload[0])  # contains NaN csi + NaN metadata
        clone = pickle.loads(pickle.dumps(trace))
        assert trace.equals(clone)
        other = workload[1]
        assert not trace.equals(other)
        assert not trace.equals("not a trace")

    def test_analysis_from_spectrum_matches_analyze(self, small_estimator, workload):
        trace = workload[0]
        spectrum = small_estimator.joint_spectrum(trace)
        assert (
            small_estimator.analysis_from_spectrum(spectrum, trace)
            == small_estimator.analyze(trace)
        )
