"""Span-merge parity: worker-side spans survive serialization intact.

The batch runtime gives each job its own tracer (in-process for the
sequential path, per worker process for the parallel path) and grafts
the serialized spans back under the parent's ``batch_evaluate`` span.
Parallel and sequential runs must therefore produce the *same* span
structure — same names, same per-job counts, one root — and tracing
must not perturb the analyses.
"""

from __future__ import annotations

import pytest

from repro.obs import Tracer
from repro.runtime import BatchEvaluator
from tests.runtime.conftest import make_traces
from tests.runtime.test_parity import _fingerprint


def _span_shape(tracer: Tracer):
    """Multiset of span names plus the parent name of each span."""
    by_id = {span.span_id: span for span in tracer.spans}
    return sorted(
        (
            span.name,
            None if span.parent_id is None else by_id[span.parent_id].name,
        )
        for span in tracer.spans
    )


class TestSpanMergeParity:
    @pytest.fixture
    def traced_pair(self, small_estimator):
        traces = make_traces(small_estimator, 4)
        sequential_tracer = Tracer()
        sequential = BatchEvaluator(
            small_estimator, workers=0, tracer=sequential_tracer
        ).evaluate(traces)
        parallel_tracer = Tracer()
        parallel = BatchEvaluator(
            small_estimator, workers=2, tracer=parallel_tracer
        ).evaluate(traces)
        return sequential, sequential_tracer, parallel, parallel_tracer

    def test_same_span_structure(self, traced_pair):
        _, sequential_tracer, _, parallel_tracer = traced_pair
        assert _span_shape(sequential_tracer) == _span_shape(parallel_tracer)

    def test_single_batch_root(self, traced_pair):
        for tracer in (traced_pair[1], traced_pair[3]):
            roots = [span for span in tracer.spans if span.parent_id is None]
            assert [root.name for root in roots] == ["batch_evaluate"]

    def test_one_job_span_per_trace(self, traced_pair):
        _, sequential_tracer, _, parallel_tracer = traced_pair
        assert len(sequential_tracer.find("job")) == 4
        assert len(parallel_tracer.find("job")) == 4
        # Adopted in job order under the batch root.
        indices = [span.attributes["index"] for span in parallel_tracer.find("job")]
        assert indices == [0, 1, 2, 3]

    def test_solver_spans_carry_convergence(self, traced_pair):
        _, _, _, parallel_tracer = traced_pair
        solver_spans = parallel_tracer.find("solver")
        assert solver_spans
        for span in solver_spans:
            assert span.attributes["convergence"]["solver"] == "mmv_fista"
            assert len(span.attributes["convergence"]["objectives"]) >= 1

    def test_results_identical_to_untraced(self, traced_pair, small_estimator):
        sequential, _, parallel, _ = traced_pair
        traces = make_traces(small_estimator, 4)
        plain = BatchEvaluator(small_estimator, workers=0).evaluate(traces)
        assert _fingerprint(sequential) == _fingerprint(plain)
        assert _fingerprint(parallel) == _fingerprint(plain)

    def test_solver_stage_derived_from_spans(self, traced_pair):
        sequential, sequential_tracer, parallel, _ = traced_pair
        for result in (sequential, parallel):
            assert result.report.stages.solver_s > 0.0
            assert result.report.stages.solver_s <= result.report.stages.solve_s + 1e-6
        assert sequential.report.stages.solver_s == pytest.approx(
            sequential_tracer.total_wall_s("solver")
        )

    def test_untraced_batch_records_no_solver_stage(self, small_estimator):
        traces = make_traces(small_estimator, 2)
        result = BatchEvaluator(small_estimator, workers=0).evaluate(traces)
        assert result.report.stages.solver_s == 0.0
        assert "solver" not in result.report.summary()
