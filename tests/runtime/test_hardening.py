"""Tests for the hardened batch runtime.

Covers the execution policy (validation gate, per-job timeouts, bounded
retries), the failure taxonomy, worker-crash recovery, and the parity
guarantee under all of them.  The chaos-monkey systems live at module
level so they pickle into worker processes.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.channel.trace import CsiTrace
from repro.exceptions import ConfigurationError, SolverError
from repro.runtime import BatchEvaluator, ExecutionPolicy
from tests.runtime.conftest import make_traces, poison_trace

#: Sentinel SNRs the chaos-monkey systems key off (normal traces use >0).
HANG_SNR = -101.0
KILL_SNR = -102.0
FAIL_SNR = -103.0
TYPE_FAIL_SNR = -104.0


def sentinel_trace(snr_db: float, *, n_packets: int = 2) -> CsiTrace:
    """A tiny valid trace whose SNR tells the chaos system what to do."""
    return CsiTrace(csi=np.ones((n_packets, 3, 8), dtype=complex), snr_db=snr_db)


@dataclass(frozen=True)
class DummyAnalysis:
    """A deterministic, picklable stand-in for an ApAnalysis."""

    value: float


@dataclass(frozen=True)
class ChaosMonkeySystem:
    """Misbehaves on sentinel traces, succeeds deterministically otherwise.

    * ``HANG_SNR`` — sleeps far longer than any test timeout budget.
    * ``KILL_SNR`` — SIGKILLs its own process, the way an OOM kill
      lands.  With a ``marker`` file the kill happens once (the marker
      arbitrates); without one it happens every time.
    * ``FAIL_SNR`` — raises ``ValueError`` until ``marker`` exists, so a
      retry succeeds; without a marker it always raises.
    * ``TYPE_FAIL_SNR`` — always raises ``TypeError``.
    """

    name: str = "chaos-monkey"
    marker: str = ""

    def analyze(self, trace: CsiTrace) -> DummyAnalysis:
        if trace.snr_db == HANG_SNR:
            time.sleep(30.0)
        if trace.snr_db == KILL_SNR:
            if not self.marker:
                os.kill(os.getpid(), signal.SIGKILL)
            if not os.path.exists(self.marker):
                with open(self.marker, "w") as handle:
                    handle.write("killed")
                os.kill(os.getpid(), signal.SIGKILL)
        if trace.snr_db == FAIL_SNR:
            if not self.marker or not os.path.exists(self.marker):
                if self.marker:
                    with open(self.marker, "w") as handle:
                        handle.write("failed once")
                raise ValueError("transient extractor glitch")
        if trace.snr_db == TYPE_FAIL_SNR:
            raise TypeError("incompatible trace format")
        return DummyAnalysis(value=float(trace.snr_db) * 2.0)


class TestExecutionPolicy:
    def test_validates_knobs(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(backoff_s=-0.5)
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(max_pool_respawns=-1)

    def test_backoff_schedule_is_exponential(self):
        policy = ExecutionPolicy(max_retries=3, backoff_s=0.5)
        assert policy.backoff_for_attempt(1) == 0.0
        assert policy.backoff_for_attempt(2) == 0.5
        assert policy.backoff_for_attempt(3) == 1.0
        assert policy.backoff_for_attempt(4) == 2.0


class TestTimeouts:
    def test_hung_job_is_taxonomized_not_fatal(self):
        system = ChaosMonkeySystem()
        traces = [sentinel_trace(10.0), sentinel_trace(HANG_SNR), sentinel_trace(12.0)]
        policy = ExecutionPolicy(timeout_s=0.3)
        start = time.perf_counter()
        result = BatchEvaluator(system, policy=policy).evaluate(traces)
        assert time.perf_counter() - start < 10.0  # nowhere near the 30 s sleep
        assert [o.ok for o in result.outcomes] == [True, False, True]
        failure = result.outcomes[1].failure
        assert failure.kind == "timeout"
        assert failure.error_type == "JobTimeoutError"
        assert result.report.n_timeouts == 1
        assert result.report.failure_kinds == {"timeout": 1}

    def test_timeout_applies_in_worker_processes(self):
        system = ChaosMonkeySystem()
        traces = [sentinel_trace(10.0), sentinel_trace(HANG_SNR)]
        policy = ExecutionPolicy(timeout_s=0.3)
        result = BatchEvaluator(system, workers=2, policy=policy).evaluate(traces)
        assert result.outcomes[1].failure.kind == "timeout"


class TestRetries:
    def test_transient_failure_retried_to_success(self, tmp_path):
        system = ChaosMonkeySystem(marker=str(tmp_path / "flaky"))
        traces = [sentinel_trace(10.0), sentinel_trace(FAIL_SNR)]
        policy = ExecutionPolicy(max_retries=1)
        result = BatchEvaluator(system, policy=policy).evaluate(traces)
        assert all(o.ok for o in result.outcomes)
        assert result.outcomes[0].attempts == 1
        assert result.outcomes[1].attempts == 2
        assert result.report.n_retries == 1

    def test_exhausted_retries_report_attempts(self):
        system = ChaosMonkeySystem()  # no marker: FAIL_SNR always raises
        policy = ExecutionPolicy(max_retries=2)
        result = BatchEvaluator(system, policy=policy).evaluate([sentinel_trace(FAIL_SNR)])
        failure = result.outcomes[0].failure
        assert not result.outcomes[0].ok
        assert failure.kind == "runtime"
        assert failure.attempts == 3
        assert result.report.n_retries == 2

    def test_non_retryable_kinds_fail_fast(self, small_estimator, workload):
        # A solver failure is a pure function of the trace — retrying
        # would recompute the identical failure.
        policy = ExecutionPolicy(max_retries=3)
        result = BatchEvaluator(small_estimator, policy=policy).evaluate(
            [poison_trace(workload[0])]
        )
        assert result.outcomes[0].attempts == 1
        assert result.outcomes[0].failure.kind == "solver"


class TestFailureRecords:
    def test_failure_carries_worker_side_traceback(self):
        result = BatchEvaluator(ChaosMonkeySystem(), workers=1).evaluate(
            [sentinel_trace(TYPE_FAIL_SNR)]
        )
        failure = result.outcomes[0].failure
        assert failure.error_type == "TypeError"
        assert failure.kind == "runtime"
        assert "Traceback" in failure.traceback
        assert "TypeError: incompatible trace format" in failure.traceback

    def test_raise_on_failure_summarizes_all_error_types(self):
        traces = [
            sentinel_trace(10.0),
            sentinel_trace(FAIL_SNR),
            sentinel_trace(TYPE_FAIL_SNR),
            sentinel_trace(FAIL_SNR),
        ]
        result = BatchEvaluator(ChaosMonkeySystem()).evaluate(traces)
        with pytest.raises(SolverError, match=r"3 of 4 batch jobs failed") as excinfo:
            result.raise_on_failure()
        assert "TypeError x1" in str(excinfo.value)
        assert "ValueError x2" in str(excinfo.value)


class TestValidationGate:
    def test_gate_quarantines_and_analysis_succeeds(self, small_estimator, workload):
        policy = ExecutionPolicy(validate=True)
        dirty = poison_trace(workload[0])  # one NaN entry in packet 0
        result = BatchEvaluator(small_estimator, policy=policy).evaluate([dirty])
        outcome = result.outcomes[0]
        assert outcome.ok
        assert outcome.quarantined_packets == 1
        assert result.report.n_quarantined_packets == 1
        # The surviving packets are the clean trace minus packet 0.
        expected = small_estimator.analyze(
            CsiTrace(csi=workload[0].csi[1:], snr_db=workload[0].snr_db,
                     rssi_dbm=workload[0].rssi_dbm)
        )
        assert outcome.analysis == expected

    def test_unsalvageable_trace_is_a_validation_failure(self, small_estimator, workload):
        csi = workload[0].csi.copy()
        csi[:, 0, 0] = np.nan  # every packet poisoned
        dirty = CsiTrace(csi=csi, snr_db=workload[0].snr_db)
        policy = ExecutionPolicy(validate=True)
        result = BatchEvaluator(small_estimator, policy=policy).evaluate([dirty])
        failure = result.outcomes[0].failure
        assert failure.kind == "validation"
        assert failure.error_type == "ValidationError"
        assert result.report.failure_kinds == {"validation": 1}

    def test_shape_mismatch_is_rejected_at_the_gate(self, small_estimator):
        wrong = CsiTrace(csi=np.ones((2, 5, 9), dtype=complex), snr_db=10.0)
        policy = ExecutionPolicy(validate=True)
        result = BatchEvaluator(small_estimator, policy=policy).evaluate([wrong])
        assert result.outcomes[0].failure.kind == "validation"
        assert "shape_mismatch" in result.outcomes[0].failure.message

    def test_gate_is_a_noop_on_clean_traces(self, small_estimator, workload):
        plain = BatchEvaluator(small_estimator).evaluate(workload[:3])
        gated = BatchEvaluator(
            small_estimator, policy=ExecutionPolicy(validate=True)
        ).evaluate(workload[:3])
        assert gated.strict_analyses() == plain.strict_analyses()
        assert all(o.quarantined_packets == 0 for o in gated.outcomes)


class TestPoolCrashRecovery:
    def test_killed_worker_is_respawned_and_batch_completes(self, tmp_path):
        system = ChaosMonkeySystem(marker=str(tmp_path / "kill-once"))
        traces = [sentinel_trace(float(snr)) for snr in (10.0, 11.0, KILL_SNR, 12.0)]
        result = BatchEvaluator(system, workers=2, chunk_size=1).evaluate(traces)
        assert all(o.ok for o in result.outcomes)
        assert [o.analysis.value for o in result.outcomes] == [
            20.0, 22.0, KILL_SNR * 2.0, 24.0,
        ]
        assert result.report.pool_respawns >= 1
        assert result.report.n_failures == 0

    def test_respawn_budget_exhaustion_yields_crash_failures(self):
        # No marker file: the kill trace murders every worker that picks
        # it up, so each respawn dies again until the budget runs out.
        system = ChaosMonkeySystem()
        traces = [sentinel_trace(10.0), sentinel_trace(KILL_SNR)]
        policy = ExecutionPolicy(max_pool_respawns=1)
        result = BatchEvaluator(
            system, workers=1, chunk_size=1, policy=policy
        ).evaluate(traces)
        by_index = {o.index: o for o in result.outcomes}
        assert by_index[0].ok
        crash = by_index[1].failure
        assert crash.kind == "crash"
        assert crash.error_type == "PoolCrashError"
        assert "respawn budget" in crash.message
        assert result.report.pool_respawns == 1
        assert result.report.failure_kinds == {"crash": 1}


class TestHardenedParity:
    def test_worker_counts_agree_under_faults_and_retries(self, tmp_path):
        traces = [
            sentinel_trace(10.0),
            sentinel_trace(TYPE_FAIL_SNR),
            sentinel_trace(11.0),
            sentinel_trace(FAIL_SNR),
            sentinel_trace(12.0),
        ]
        policy = ExecutionPolicy(max_retries=1)

        def run(workers: int, tag: str):
            # A fresh marker per run: the FAIL_SNR job fails its first
            # attempt and succeeds on the retry in both runs.
            system = ChaosMonkeySystem(marker=str(tmp_path / f"flaky-{tag}"))
            return BatchEvaluator(system, workers=workers, policy=policy).evaluate(traces)

        sequential = run(0, "seq")
        pooled = run(2, "pool")
        assert [o.ok for o in sequential.outcomes] == [o.ok for o in pooled.outcomes]
        assert [o.analysis for o in sequential.outcomes] == [
            o.analysis for o in pooled.outcomes
        ]
        assert [o.attempts for o in sequential.outcomes] == [
            o.attempts for o in pooled.outcomes
        ]
        assert sequential.report.failure_kinds == pooled.report.failure_kinds

    def test_roarray_parity_with_gate_and_dirty_traces(self, small_estimator, workload):
        dirty = [workload[0], poison_trace(workload[1]), workload[2]]
        policy = ExecutionPolicy(validate=True)
        sequential = BatchEvaluator(small_estimator, policy=policy).evaluate(dirty)
        pooled = BatchEvaluator(small_estimator, workers=2, policy=policy).evaluate(dirty)
        assert sequential.strict_analyses() == pooled.strict_analyses()
        assert [o.quarantined_packets for o in sequential.outcomes] == [
            o.quarantined_packets for o in pooled.outcomes
        ]


class TestReportTaxonomy:
    def test_summary_shows_hardening_line_only_when_active(self, small_estimator, workload):
        clean = BatchEvaluator(small_estimator).evaluate(workload[:2]).report
        assert "hardening:" not in clean.summary()
        dirty = BatchEvaluator(
            small_estimator, policy=ExecutionPolicy(validate=True)
        ).evaluate([poison_trace(workload[0])]).report
        summary = dirty.summary()
        assert "hardening:" in summary
        assert "quarantined packets 1" in summary

    def test_summary_counts_failures_by_kind(self, small_estimator, workload):
        csi = workload[0].csi.copy()
        csi[:, 0, 0] = np.nan  # unsalvageable: every packet poisoned
        result = BatchEvaluator(
            small_estimator, policy=ExecutionPolicy(validate=True)
        ).evaluate([CsiTrace(csi=csi, snr_db=workload[0].snr_db)])
        assert "failures: validation x1" in result.report.summary()

    def test_to_dict_carries_the_taxonomy(self, small_estimator, workload):
        report = BatchEvaluator(
            small_estimator, policy=ExecutionPolicy(validate=True)
        ).evaluate([poison_trace(workload[0]), workload[1]]).report
        payload = report.to_dict()
        assert payload["n_quarantined_packets"] == 1
        assert payload["failure_kinds"] == {}
        assert payload["n_failures"] == 0
        assert payload["pool_respawns"] == 0
