"""Unit tests for the durable checkpoint store (repro.runtime.checkpoint)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import CheckpointError, ConfigurationError
from repro.obs import MetricsRegistry
from repro.runtime.checkpoint import (
    EXIT_RESUMABLE,
    CheckpointJournal,
    CheckpointPolicy,
    JournalStatus,
    atomic_write,
    checkpoint_status,
    config_digest,
    describe_for_digest,
    job_key,
    read_manifest,
    trace_fingerprint,
    write_manifest,
)
from repro.runtime.jobs import JobFailure, JobOutcome

from tests.runtime.conftest import make_traces


# ---------------------------------------------------------------------------
# atomic_write
# ---------------------------------------------------------------------------


class TestAtomicWrite:
    def test_json_payload(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write(path, {"b": 2, "a": [1.5, None]})
        payload = json.loads(path.read_text())
        assert payload == {"b": 2, "a": [1.5, None]}
        assert path.read_text().endswith("\n")

    def test_text_and_bytes(self, tmp_path):
        atomic_write(tmp_path / "t.txt", "hello\n")
        assert (tmp_path / "t.txt").read_text() == "hello\n"
        atomic_write(tmp_path / "b.bin", b"\x00\x01")
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"

    def test_callable_streams_binary(self, tmp_path):
        path = tmp_path / "arr.npz"
        atomic_write(path, lambda handle: np.savez_compressed(handle, x=np.arange(4)))
        with np.load(path) as data:
            assert data["x"].tolist() == [0, 1, 2, 3]

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write(path, {"v": 1})
        atomic_write(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}

    def test_no_temp_residue_on_failure(self, tmp_path):
        def explode(handle):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            atomic_write(tmp_path / "x.json", explode)
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Content hashing
# ---------------------------------------------------------------------------


class TestDigests:
    def test_digest_stable_and_sensitive(self):
        a = config_digest({"grid": 91}, 7)
        assert a == config_digest({"grid": 91}, 7)
        assert a != config_digest({"grid": 92}, 7)
        assert a != config_digest({"grid": 91}, 8)

    def test_describe_handles_numpy_and_dataclasses(self):
        description = describe_for_digest(
            {"arr": np.arange(3), "f": np.float64(1.5), "c": 1 + 2j}
        )
        assert description["f"] == 1.5
        assert description["c"] == {"__complex__": [1.0, 2.0]}
        assert set(description["arr"]) == {"__ndarray__", "shape", "dtype"}
        policy = CheckpointPolicy(path="x.jsonl")
        assert describe_for_digest(policy)["__class__"] == "CheckpointPolicy"

    def test_trace_fingerprint_pins_bytes(self, small_estimator):
        trace_a, trace_b = make_traces(small_estimator, 2)
        assert trace_fingerprint(trace_a) == trace_fingerprint(trace_a)
        assert trace_fingerprint(trace_a) != trace_fingerprint(trace_b)

    def test_job_key_components(self):
        base = job_key("d", 0, 0, "c")
        assert base != job_key("e", 0, 0, "c")
        assert base != job_key("d", 1, 0, "c")
        assert base != job_key("d", 0, 1, "c")
        assert base != job_key("d", 0, 0, "x")


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------


def _payload(index: int) -> dict:
    return JobOutcome(index=index, failure=JobFailure("E", "m", kind="solver")).to_dict()


class TestJournal:
    def test_policy_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(path=tmp_path / "j.jsonl", flush_every=0)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(path=tmp_path / "j.jsonl", compact_every=-1)

    def test_append_and_reload(self, tmp_path):
        policy = CheckpointPolicy(path=tmp_path / "j.jsonl")
        with CheckpointJournal(policy) as journal:
            state = journal.open(experiment="t", config_digest="d", n_jobs=3)
            assert state.n_recorded == 0
            journal.append(job_key("d", 0, 0), _payload(0), index=0)
            journal.append(job_key("d", 1, 1), _payload(1), index=1)

        with CheckpointJournal(policy) as journal:
            state = journal.open(experiment="t", config_digest="d", n_jobs=3)
        assert state.n_recorded == 2
        record = state.payloads[job_key("d", 0, 0)]
        assert JobOutcome.from_dict(record["payload"]).failure.error_type == "E"

    def test_digest_mismatch_refuses(self, tmp_path):
        policy = CheckpointPolicy(path=tmp_path / "j.jsonl")
        with CheckpointJournal(policy) as journal:
            journal.open(experiment="t", config_digest="d", n_jobs=1)
        with CheckpointJournal(policy) as journal:
            with pytest.raises(CheckpointError, match="different experiment"):
                journal.open(experiment="t", config_digest="OTHER", n_jobs=1)

    def test_version_mismatch_refuses(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps(
                {"record": "header", "version": 99, "experiment": "t",
                 "config_digest": "d", "n_jobs": 1}
            )
            + "\n"
        )
        with CheckpointJournal(CheckpointPolicy(path=path)) as journal:
            with pytest.raises(CheckpointError, match="version"):
                journal.open(experiment="t", config_digest="d", n_jobs=1)

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        policy = CheckpointPolicy(path=path)
        with CheckpointJournal(policy) as journal:
            journal.open(experiment="t", config_digest="d", n_jobs=3)
            journal.append(job_key("d", 0, 0), _payload(0), index=0)
            journal.append(job_key("d", 1, 1), _payload(1), index=1)
        # Simulate a crash mid-append: truncate the last record mid-line.
        torn = path.read_text()[:-25]
        path.write_text(torn)

        metrics = MetricsRegistry()
        reopened = CheckpointPolicy(path=path, metrics=metrics)
        with CheckpointJournal(reopened) as journal:
            with pytest.warns(RuntimeWarning, match="torn record"):
                state = journal.open(experiment="t", config_digest="d", n_jobs=3)
        assert state.n_recorded == 1  # the torn record is dropped, not half-read
        assert metrics.to_dict()["checkpoint.validation_warnings"]["value"] == 1
        # The reopen compacted the file: every line now parses cleanly.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_headerless_file_recreated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"truncated...')
        with CheckpointJournal(CheckpointPolicy(path=path)) as journal:
            with pytest.warns(RuntimeWarning, match="unreadable header"):
                state = journal.open(experiment="t", config_digest="d", n_jobs=2)
        assert state.n_recorded == 0
        header = json.loads(path.read_text().splitlines()[0])
        assert header["record"] == "header"
        assert header["config_digest"] == "d"

    def test_compaction_dedupes_last_record_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        policy = CheckpointPolicy(path=path)
        key = job_key("d", 0, 0)
        with CheckpointJournal(policy) as journal:
            journal.open(experiment="t", config_digest="d", n_jobs=1)
            journal.append(key, _payload(0), index=0)
            journal.append(key, _payload(7), index=0)  # re-run of the same job
            journal.compact()
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one deduped record
        assert json.loads(lines[1])["payload"]["index"] == 7

    def test_periodic_compaction(self, tmp_path):
        path = tmp_path / "j.jsonl"
        policy = CheckpointPolicy(path=path, compact_every=2)
        with CheckpointJournal(policy) as journal:
            journal.open(experiment="t", config_digest="d", n_jobs=4)
            for index in range(4):
                journal.append(job_key("d", index, index), _payload(index), index=index)
        assert len(path.read_text().splitlines()) == 5  # header + 4, no dupes

    def test_outcome_round_trip_is_exact(self, small_estimator, workload):
        from repro.runtime.batch import BatchEvaluator

        outcome = BatchEvaluator(small_estimator).evaluate(workload[:1]).outcomes[0]
        restored = JobOutcome.from_dict(
            json.loads(json.dumps(outcome.to_dict()))
        )
        assert restored.analysis.to_dict() == outcome.analysis.to_dict()
        assert restored.analysis.direct.aoa_deg == outcome.analysis.direct.aoa_deg
        assert restored.analysis.candidate_aoas_deg == outcome.analysis.candidate_aoas_deg


# ---------------------------------------------------------------------------
# Status + manifest
# ---------------------------------------------------------------------------


class TestStatusAndManifest:
    def test_checkpoint_status(self, tmp_path):
        policy = CheckpointPolicy(path=tmp_path / "sweep.jsonl", experiment="sweep")
        with CheckpointJournal(policy) as journal:
            journal.open(experiment="sweep", config_digest="d", n_jobs=4)
            journal.append(job_key("d", 0, 0), _payload(0), index=0)
        statuses = checkpoint_status(tmp_path)
        assert len(statuses) == 1
        status = statuses[0]
        assert status.experiment == "sweep"
        assert status.n_recorded == 1 and status.n_jobs == 4
        assert status.percent_complete == pytest.approx(25.0)
        assert not status.complete

    def test_status_percent_edge_cases(self):
        assert JournalStatus("p", "e", 0, 0).percent_complete == 0.0
        assert JournalStatus("p", "e", 2, 2).complete

    def test_manifest_round_trip(self, tmp_path):
        write_manifest(tmp_path, ["batch", "--synthetic", "3"])
        assert read_manifest(tmp_path) == ["batch", "--synthetic", "3"]

    def test_manifest_missing_or_corrupt(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            read_manifest(tmp_path)
        (tmp_path / "manifest.json").write_text("{broken")
        with pytest.raises(CheckpointError, match="unreadable"):
            read_manifest(tmp_path)

    def test_exit_resumable_is_distinct(self):
        assert EXIT_RESUMABLE not in (0, 1, 2)
