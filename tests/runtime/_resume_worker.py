"""Subprocess entry point for the kill-and-resume parity tests.

Runs the runtime suite's deterministic workload through a checkpointed
:class:`~repro.runtime.BatchEvaluator` and writes the outcomes as JSON.
With ``--kill-after K`` a watcher thread SIGKILLs the process the
moment the journal holds K job records — a hard crash mid-sweep, not a
graceful drain — so the surviving journal is exactly what a preempted
run leaves behind.  ``test_resume_parity.py`` then re-runs the same
command and asserts the resumed results are byte-identical to an
uninterrupted reference.

The estimator/workload construction mirrors the ``small_estimator`` /
``make_traces`` fixtures; the trace generator itself is imported from
the conftest so the two can never drift apart.
"""

from __future__ import annotations

import argparse
import os
import signal
import threading
import time
from pathlib import Path

from repro.channel.array import UniformLinearArray
from repro.channel.ofdm import SubcarrierLayout
from repro.core.config import RoArrayConfig
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.pipeline import RoArrayEstimator
from repro.runtime import BatchEvaluator, CheckpointPolicy
from repro.runtime.checkpoint import atomic_write
from tests.runtime.conftest import make_traces

JOURNAL_NAME = "parity.jsonl"


def build_estimator() -> RoArrayEstimator:
    """The runtime suite's ``small_estimator`` fixture, subprocess-safe."""
    return RoArrayEstimator(
        array=UniformLinearArray(),
        layout=SubcarrierLayout(n_subcarriers=16, spacing=1.25e6),
        config=RoArrayConfig(
            angle_grid=AngleGrid(n_points=61),
            delay_grid=DelayGrid(n_points=21, stop_s=800e-9),
            max_iterations=150,
        ),
    )


def journal_job_count(path: Path) -> int:
    """Complete job records currently on disk (a torn tail may add one)."""
    try:
        text = path.read_text()
    except OSError:
        return 0
    return sum(1 for line in text.splitlines() if '"record": "job"' in line)


def _arm_self_kill(journal_path: Path, kill_after: int) -> None:
    def watch() -> None:
        while True:
            if journal_job_count(journal_path) >= kill_after:
                # Kill the whole process group — the parent AND any pool
                # workers.  The test launches this script in its own
                # session (start_new_session=True), so the group is ours;
                # orphaned workers would otherwise hold the stdout pipe
                # open and hang the test's communicate().
                os.killpg(os.getpgrp(), signal.SIGKILL)
            time.sleep(0.002)

    threading.Thread(target=watch, daemon=True).start()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--checkpoint", required=True, help="checkpoint directory")
    parser.add_argument("--results", required=True, help="output JSON path")
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--n-traces", type=int, default=10)
    parser.add_argument(
        "--kill-after",
        type=int,
        default=0,
        help="SIGKILL self once the journal holds this many job records",
    )
    args = parser.parse_args()

    estimator = build_estimator()
    traces = make_traces(estimator, args.n_traces)
    journal_path = Path(args.checkpoint) / JOURNAL_NAME
    if args.kill_after:
        _arm_self_kill(journal_path, args.kill_after)

    result = BatchEvaluator(estimator, workers=args.workers).evaluate(
        traces,
        checkpoint=CheckpointPolicy(path=journal_path, experiment="parity"),
    )
    atomic_write(
        Path(args.results),
        {
            "outcomes": [outcome.to_dict() for outcome in result.outcomes],
            "n_jobs": result.report.n_jobs,
            "n_failures": result.report.n_failures,
            "n_replayed": result.report.n_replayed,
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
