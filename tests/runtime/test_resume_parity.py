"""Kill-and-resume parity: a preempted sweep finishes byte-identically.

The crash tests run ``_resume_worker.py`` in a subprocess, SIGKILL it
mid-sweep (a hard crash — no drain, no flush beyond the per-job fsync),
re-run the same command, and compare the resumed results against an
uninterrupted in-process reference.  Only deterministic fields are
compared (analyses, failure taxonomy, attempts); timings are the
original run's measurements and legitimately differ.

The in-process tests cover the graceful path: SIGINT mid-batch raises
:class:`~repro.exceptions.ResumableInterrupt` with the journal flushed,
and the follow-up call replays exactly the journaled jobs.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import ResumableInterrupt
from repro.runtime import BatchEvaluator, CheckpointPolicy
from tests.runtime.conftest import make_traces

REPO_ROOT = Path(__file__).resolve().parents[2]
WORKER = Path(__file__).with_name("_resume_worker.py")
N_TRACES = 10


def _deterministic(outcome: dict) -> dict:
    """An outcome dict with the timing/telemetry fields stripped."""
    return {
        key: value
        for key, value in outcome.items()
        if key not in ("elapsed_s", "stage_seconds", "spans")
    }


def _reference_outcomes(small_estimator) -> list[dict]:
    """The uninterrupted ground truth, computed in-process."""
    traces = make_traces(small_estimator, N_TRACES)
    result = BatchEvaluator(small_estimator).evaluate(traces)
    return [_deterministic(outcome.to_dict()) for outcome in result.outcomes]


def _run_worker(checkpoint_dir: Path, results: Path, *, workers: int, kill_after: int = 0):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    command = [
        sys.executable,
        str(WORKER),
        "--checkpoint",
        str(checkpoint_dir),
        "--results",
        str(results),
        "--workers",
        str(workers),
        "--n-traces",
        str(N_TRACES),
    ]
    if kill_after:
        command += ["--kill-after", str(kill_after)]
    # Own session/process group: the self-kill SIGKILLs the whole group,
    # so a crashed parallel run can't leave orphaned pool workers behind
    # (they'd hold the captured-output pipes open and hang this call).
    return subprocess.run(
        command,
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
        start_new_session=True,
    )


@pytest.mark.slow
@pytest.mark.parametrize("workers", [0, 2])
def test_sigkill_mid_sweep_then_resume_is_byte_identical(
    small_estimator, tmp_path, workers
):
    results = tmp_path / "results.json"

    crashed = _run_worker(tmp_path, results, workers=workers, kill_after=2)
    assert crashed.returncode == -signal.SIGKILL, crashed.stderr
    assert not results.exists()  # died mid-sweep, before any results were written
    journal = tmp_path / "parity.jsonl"
    assert journal.exists()

    resumed = _run_worker(tmp_path, results, workers=workers)
    assert resumed.returncode == 0, resumed.stderr
    payload = json.loads(results.read_text())
    assert payload["n_jobs"] == N_TRACES
    # The kill fired at >= 2 journaled jobs; a torn tail may drop one
    # record on reload, but at least one journaled job must be reused.
    assert 1 <= payload["n_replayed"] < N_TRACES
    assert [
        _deterministic(outcome) for outcome in payload["outcomes"]
    ] == _reference_outcomes(small_estimator)


@pytest.mark.slow
def test_journal_resumes_across_worker_counts(small_estimator, tmp_path):
    """A journal written sequentially resumes under a process pool."""
    results = tmp_path / "results.json"
    full = _run_worker(tmp_path, results, workers=0)
    assert full.returncode == 0, full.stderr
    reference = json.loads(results.read_text())

    # Keep the header plus the first three job records — a partial run.
    journal = tmp_path / "parity.jsonl"
    lines = journal.read_text().splitlines()
    journal.write_text("\n".join(lines[:4]) + "\n")

    results.unlink()
    resumed = _run_worker(tmp_path, results, workers=2)
    assert resumed.returncode == 0, resumed.stderr
    payload = json.loads(results.read_text())
    assert payload["n_replayed"] == 3
    assert [_deterministic(o) for o in payload["outcomes"]] == [
        _deterministic(o) for o in reference["outcomes"]
    ]


class TestGracefulInterrupt:
    # Big enough that the batch spans several 0.2 s drain polls at two
    # workers — a batch that fits in one poll window finishes before the
    # parallel loop ever sees the signal (~35 ms/job on the small grids).
    N_GRACEFUL = 24

    def _evaluate_with_sigint(self, estimator, tmp_path, *, workers: int):
        # Two seeds: make_traces spaces AoAs 12° apart, which caps one
        # call at 13 traces before leaving the [0, 180]° sector.
        traces = make_traces(estimator, self.N_GRACEFUL // 2) + make_traces(
            estimator, self.N_GRACEFUL // 2, seed=5
        )
        journal = tmp_path / "batch.jsonl"

        def fire_when_underway() -> None:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                try:
                    if journal.read_text().count('"record": "job"') >= 2:
                        break
                except OSError:
                    pass
                time.sleep(0.002)
            os.kill(os.getpid(), signal.SIGINT)

        watcher = threading.Thread(target=fire_when_underway, daemon=True)
        watcher.start()
        # chunk_size=1 keeps most futures out of the pool's pre-buffered
        # call queue, so the drain can actually cancel pending work — with
        # big chunks a small batch may finish entirely despite the signal.
        with pytest.raises(ResumableInterrupt) as exc_info:
            BatchEvaluator(estimator, workers=workers, chunk_size=1).evaluate(
                traces, checkpoint=CheckpointPolicy(path=journal, experiment="t")
            )
        watcher.join(timeout=120.0)
        return traces, journal, exc_info.value

    @pytest.mark.parametrize("workers", [0, 2])
    def test_sigint_drains_and_raises_resumable(self, small_estimator, tmp_path, workers):
        traces, journal, interrupt = self._evaluate_with_sigint(
            small_estimator, tmp_path, workers=workers
        )
        assert 0 < interrupt.completed < interrupt.total == self.N_GRACEFUL
        assert str(journal) in str(interrupt)
        # Every drained job was flushed before the exception propagated.
        job_lines = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if '"record": "job"' in line
        ]
        assert len(job_lines) == interrupt.completed

        # Rerunning the same evaluation resumes and matches a fresh run.
        resumed = BatchEvaluator(small_estimator, workers=workers).evaluate(
            traces, checkpoint=CheckpointPolicy(path=journal, experiment="t")
        )
        assert resumed.report.n_replayed == interrupt.completed
        fresh = BatchEvaluator(small_estimator).evaluate(traces)
        assert [
            _deterministic(outcome.to_dict()) for outcome in resumed.outcomes
        ] == [_deterministic(outcome.to_dict()) for outcome in fresh.outcomes]

    def test_sigint_without_checkpoint_stays_keyboard_interrupt(
        self, small_estimator, tmp_path
    ):
        traces = make_traces(small_estimator, 6)

        def fire() -> None:
            time.sleep(0.05)
            os.kill(os.getpid(), signal.SIGINT)

        threading.Thread(target=fire, daemon=True).start()
        with pytest.raises(KeyboardInterrupt):
            BatchEvaluator(small_estimator).evaluate(traces)

    def test_completed_journal_replays_everything(self, small_estimator, tmp_path):
        traces = make_traces(small_estimator, 4)
        checkpoint = CheckpointPolicy(path=tmp_path / "done.jsonl", experiment="t")
        first = BatchEvaluator(small_estimator).evaluate(traces, checkpoint=checkpoint)
        assert first.report.n_replayed == 0
        second = BatchEvaluator(small_estimator, workers=2).evaluate(
            traces, checkpoint=checkpoint
        )
        assert second.report.n_replayed == len(traces)
        assert [
            _deterministic(outcome.to_dict()) for outcome in second.outcomes
        ] == [_deterministic(outcome.to_dict()) for outcome in first.outcomes]
