"""Batch/sequential parity: the runtime's central guarantee.

``BatchEvaluator(workers=N)`` must produce *identical* outputs — the
same :class:`DirectPathEstimate` values, in the same order, with the
same tagged failures — as the ``workers=0`` sequential path, for every
worker count.  These tests pin that contract, including the degraded
case where some jobs raise :class:`SolverError`.
"""

from __future__ import annotations

import pytest

from repro.runtime import BatchEvaluator, EvalJob
from tests.runtime.conftest import make_traces, poison_trace


def _fingerprint(result):
    """Everything observable about a batch outcome, as plain tuples."""
    rows = []
    for outcome in result.outcomes:
        if outcome.ok:
            direct = outcome.analysis.direct
            rows.append(
                (
                    outcome.index,
                    "ok",
                    direct.aoa_deg,
                    direct.toa_s,
                    direct.power,
                    direct.n_paths,
                    outcome.analysis.candidate_aoas_deg,
                )
            )
        else:
            rows.append(
                (outcome.index, outcome.failure.error_type, outcome.failure.message)
            )
    return rows


class TestWorkerCountParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_to_sequential(self, small_estimator, workload, workers):
        sequential = BatchEvaluator(small_estimator, workers=0).evaluate(workload)
        parallel = BatchEvaluator(small_estimator, workers=workers).evaluate(workload)
        assert _fingerprint(parallel) == _fingerprint(sequential)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_with_failing_jobs(self, small_estimator, workload, workers):
        mixed = list(workload)
        mixed[1] = poison_trace(mixed[1])
        mixed[4] = poison_trace(mixed[4])
        sequential = BatchEvaluator(small_estimator, workers=0).evaluate(mixed)
        parallel = BatchEvaluator(small_estimator, workers=workers).evaluate(mixed)
        assert _fingerprint(parallel) == _fingerprint(sequential)
        assert [o.index for o in parallel.failures] == [1, 4]

    def test_parity_across_worker_counts(self, small_estimator):
        traces = make_traces(small_estimator, 5, seed=11)
        fingerprints = {
            workers: _fingerprint(
                BatchEvaluator(small_estimator, workers=workers).evaluate(traces)
            )
            for workers in (0, 1, 2)
        }
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_seeds_are_a_function_of_index_only(self, small_estimator, workload):
        # Chunking / worker assignment must never reach the per-job seed:
        # the job list (index, base_seed + index) is fixed in the parent
        # before any scheduling happens.
        jobs = [EvalJob(index=i, trace=t, seed=7 + i) for i, t in enumerate(workload)]
        assert [(job.index, job.seed) for job in jobs] == [
            (i, 7 + i) for i in range(len(workload))
        ]
        # And the evaluator's outputs stay identical when chunking changes.
        one = BatchEvaluator(
            small_estimator, workers=2, chunk_size=1, base_seed=7
        ).evaluate(workload)
        other = BatchEvaluator(
            small_estimator, workers=2, chunk_size=3, base_seed=7
        ).evaluate(workload)
        assert _fingerprint(one) == _fingerprint(other)
