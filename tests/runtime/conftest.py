"""Fixtures for the batch-runtime suite: a small, fast workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.csi import CsiSynthesizer
from repro.channel.paths import random_profile
from repro.channel.trace import CsiTrace
from repro.core.pipeline import RoArrayEstimator


@pytest.fixture
def small_estimator(array, layout, small_config) -> RoArrayEstimator:
    """ROArray on the reduced layout/grids — one analyze ≈ tens of ms."""
    return RoArrayEstimator(array=array, layout=layout, config=small_config)


def make_traces(estimator: RoArrayEstimator, n_traces: int, *, seed: int = 3) -> list[CsiTrace]:
    """A deterministic workload of well-separated two/three-path links."""
    rng = np.random.default_rng(seed)
    synthesizer = CsiSynthesizer(estimator.array, estimator.layout, seed=seed)
    traces = []
    for index in range(n_traces):
        profile = random_profile(rng, n_paths=3, direct_aoa_deg=30.0 + 12.0 * index)
        traces.append(synthesizer.packets(profile, n_packets=4, snr_db=12.0, rng=rng))
    return traces


def poison_trace(trace: CsiTrace) -> CsiTrace:
    """A copy whose CSI contains a NaN — trips SolverError in fusion."""
    csi = trace.csi.copy()
    csi[0, 0, 0] = np.nan
    return CsiTrace(csi=csi, snr_db=trace.snr_db, rssi_dbm=trace.rssi_dbm)


@pytest.fixture
def workload(small_estimator) -> list[CsiTrace]:
    return make_traces(small_estimator, 6)
