"""Regenerate the golden-spectrum regression fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/generate_golden.py

Produces, next to this script:

``golden_trace.npz``
    A seeded 6-packet CSI trace (full Intel-5300 layout, default
    impairments) — the input every pinned output derives from.
``golden_outputs.npz``
    The outputs of all three systems on that trace at the paper's
    evaluation working point: ROArray's fused joint (AoA, ToA) spectrum
    and direct-path estimate, and SpotFi's / ArrayTrack's AoA spectra
    and direct-path AoAs.

Regenerating is a *deliberate* act: it re-baselines the accuracy of the
whole evaluation.  Only do it when an intentional algorithm change is
understood and reviewed — the regression test exists to catch the
unintentional drift.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.baselines.arraytrack import ArrayTrackEstimator
from repro.baselines.spotfi import SpotFiEstimator
from repro.channel.array import UniformLinearArray
from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.ofdm import intel5300_layout
from repro.channel.paths import random_profile
from repro.channel.trace import CsiTrace
from repro.core.pipeline import RoArrayEstimator
from repro.experiments.runner import evaluation_roarray_config
from repro.runtime.checkpoint import atomic_write

FIXTURE_DIR = Path(__file__).resolve().parent
SEED = 2017
TRUE_AOA_DEG = 150.0


def golden_trace() -> CsiTrace:
    rng = np.random.default_rng(SEED)
    profile = random_profile(rng, n_paths=4, direct_aoa_deg=TRUE_AOA_DEG)
    synthesizer = CsiSynthesizer(
        UniformLinearArray(), intel5300_layout(), ImpairmentModel(), seed=SEED
    )
    return synthesizer.packets(profile, n_packets=6, snr_db=12.0, rng=rng)


def main() -> None:
    trace = golden_trace()
    trace.save(FIXTURE_DIR / "golden_trace.npz")

    roarray = RoArrayEstimator(config=evaluation_roarray_config())
    spotfi = SpotFiEstimator()
    arraytrack = ArrayTrackEstimator()

    joint = roarray.joint_spectrum(trace).normalized()
    roarray_analysis = roarray.analyze(trace)
    spotfi_spectrum = spotfi.aoa_spectrum(trace).normalized()
    spotfi_analysis = spotfi.analyze(trace)
    arraytrack_spectrum = arraytrack.aoa_spectrum(trace).normalized()
    arraytrack_analysis = arraytrack.analyze(trace)

    atomic_write(
        FIXTURE_DIR / "golden_outputs.npz",
        lambda handle: np.savez_compressed(
            handle,
            seed=SEED,
            true_aoa_deg=TRUE_AOA_DEG,
            joint_angles_deg=joint.angles_deg,
            joint_toas_s=joint.toas_s,
            joint_power=joint.power,
            roarray_direct_aoa_deg=roarray_analysis.direct.aoa_deg,
            roarray_direct_toa_s=roarray_analysis.direct.toa_s,
            roarray_candidate_aoas_deg=np.array(roarray_analysis.candidate_aoas_deg),
            spotfi_angles_deg=spotfi_spectrum.angles_deg,
            spotfi_power=spotfi_spectrum.power,
            spotfi_direct_aoa_deg=spotfi_analysis.direct.aoa_deg,
            arraytrack_angles_deg=arraytrack_spectrum.angles_deg,
            arraytrack_power=arraytrack_spectrum.power,
            arraytrack_direct_aoa_deg=arraytrack_analysis.direct.aoa_deg,
        ),
    )
    print(f"wrote {FIXTURE_DIR / 'golden_trace.npz'}")
    print(f"wrote {FIXTURE_DIR / 'golden_outputs.npz'}")
    print(
        f"ROArray direct AoA {roarray_analysis.direct.aoa_deg:.1f}° | "
        f"SpotFi {spotfi_analysis.direct.aoa_deg:.1f}° | "
        f"ArrayTrack {arraytrack_analysis.direct.aoa_deg:.1f}° "
        f"(truth {TRUE_AOA_DEG:.1f}°)"
    )


if __name__ == "__main__":
    main()
