"""Regenerate the committed real-format capture fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/generate_real_captures.py

Produces, under ``tests/fixtures/real_captures/``:

* ``ap_west.dat`` / ``ap_east.dat`` / ``ap_south_1.dat`` — Intel 5300
  logs for one static client seen by three classroom APs.  The CSI is
  synthesized from the scene geometry (so the ground truth in the
  registry is exact), quantized to the int8 wire format, and encoded
  through :func:`repro.io.intel.write_intel_dat` — an independent
  implementation of the bit packing the parser decodes.
* ``sample_spotfi.mat`` — a SpotFi-style single-packet capture
  (``sample_csi_trace``, flat 90-vector), MATLAB v5.
* ``sto_golden.npz`` — the pinned output of SpotFi STO removal
  (20 MHz raw-index grid) on the ``.mat`` capture; the golden test
  compares against it bit-for-bit.
* ``registry.json`` — the dataset manifest binding the captures to
  their AP geometry and site-survey ground truth.

Deterministic by construction: fixed seeds, fixed client position.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.channel.constants import SPEED_OF_LIGHT
from repro.channel.array import UniformLinearArray
from repro.channel.csi import CsiSynthesizer
from repro.channel.geometry import Scene
from repro.channel.impairments import ImpairmentModel
from repro.channel.ofdm import intel5300_layout
from repro.experiments.scenarios import classroom_access_points, classroom_room
from repro.io.intel import write_intel_dat
from repro.io.registry import DatasetRegistry
from repro.io.stages import StoRemoval
from repro.runtime.checkpoint import atomic_write

FIXTURE_DIR = Path(__file__).parent / "real_captures"

#: The surveyed client position (meters) the captures were "taken" at.
CLIENT = (5.0, 4.0)

#: Deterministic scatterers (furniture) shared by every AP link.
SCATTERERS = [(9.0, 9.5), (13.5, 3.0), (3.0, 10.0)]

N_PACKETS = 8
SNR_DB = 22.0
SEED = 2017

#: Per-chain RSSI field written into every bfee record.
RSSI_FIELD = 33

#: How far int8 quantization reaches; < 127 leaves headroom, and a
#: large value keeps quantization noise ~40 dB below the signal.
QUANT_FULL_SCALE = 110.0


def quantize(csi: np.ndarray) -> np.ndarray:
    """Scale a complex batch into int8-valued components."""
    peak = max(np.abs(csi.real).max(), np.abs(csi.imag).max())
    scaled = csi / peak * QUANT_FULL_SCALE
    return np.round(scaled.real) + 1j * np.round(scaled.imag)


def agc_for(snr_db: float, *, noise_dbm: float = -92.0) -> int:
    """The AGC field making the parser's measured SNR equal ``snr_db``."""
    rssi_mag_db = RSSI_FIELD + 10.0 * np.log10(3.0)
    return int(round(rssi_mag_db - 44.0 - (noise_dbm + snr_db)))


def main() -> None:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    room = classroom_room()
    aps = classroom_access_points(3, room)
    scene = Scene(room=room, access_points=aps, client=CLIENT, scatterers=SCATTERERS)
    array = UniformLinearArray()
    layout = intel5300_layout()
    # Real-capture fixtures: detection delay on (that is what STO
    # removal is for), per-boot phase offsets off (calibrated boot),
    # mild CFO residue.
    impairments = ImpairmentModel(
        detection_delay_range_s=100e-9,
        phase_offset_std_rad=0.0,
        sfo_std_s=1e-9,
        cfo_residual_rad=0.2,
    )
    rng = np.random.default_rng(SEED)

    registry = DatasetRegistry(FIXTURE_DIR)
    registry.entries.clear()
    for index, ap in enumerate(aps):
        profile = scene.multipath_profile(index, layout.wavelength)
        synthesizer = CsiSynthesizer(array, layout, impairments, seed=SEED + index)
        trace = synthesizer.packets(
            profile, n_packets=N_PACKETS, snr_db=SNR_DB, rng=rng
        )
        name = ap.name.replace("-", "_")
        path = FIXTURE_DIR / f"{name}.dat"
        write_intel_dat(
            path,
            quantize(trace.csi),
            timestamps_us=np.arange(N_PACKETS, dtype=np.int64) * 5_000 + 120_000,
            rssi=(RSSI_FIELD, RSSI_FIELD, RSSI_FIELD),
            agc=agc_for(SNR_DB),
        )
        registry.register(
            f"lab/{ap.name}",
            path,
            format="intel-dat",
            description=f"classroom capture, client at {CLIENT}, AP {ap.name}",
            ap={
                "name": ap.name,
                "position": list(ap.position),
                "axis_direction_deg": ap.axis_direction_deg,
            },
            ground_truth={
                "direct_aoa_deg": scene.ground_truth_aoa(index),
                "direct_toa_s": scene.ground_truth_distance(index) / SPEED_OF_LIGHT,
                "client": list(CLIENT),
                "room": [room.width, room.depth],
            },
            meta={"bandwidth_mhz": 40, "n_packets": N_PACKETS},
            overwrite=True,
        )
        print(f"wrote {path} ({path.stat().st_size} bytes), AoA truth "
              f"{scene.ground_truth_aoa(index):.1f} deg")

    # SpotFi-style .mat sample: one 3x30 packet from the ap-west link,
    # stored antenna-major as the canonical flat 90-vector.
    from scipy.io import savemat

    profile = scene.multipath_profile(0, layout.wavelength)
    synthesizer = CsiSynthesizer(array, layout, impairments, seed=SEED + 100)
    mat_trace = synthesizer.packets(profile, n_packets=1, snr_db=SNR_DB, rng=rng)
    sample = mat_trace.csi[0].reshape(-1)
    mat_path = FIXTURE_DIR / "sample_spotfi.mat"
    savemat(mat_path, {"sample_csi_trace": sample})
    registry.register(
        "lab/spotfi-sample",
        mat_path,
        format="spotfi-mat",
        description="single-packet SpotFi-style sample capture",
        ap={
            "name": aps[0].name,
            "position": list(aps[0].position),
            "axis_direction_deg": aps[0].axis_direction_deg,
        },
        ground_truth={"direct_aoa_deg": scene.ground_truth_aoa(0)},
        meta={"variable": "sample_csi_trace"},
        overwrite=True,
    )
    print(f"wrote {mat_path} ({mat_path.stat().st_size} bytes)")

    # Pin the STO-removal golden: the .mat capture through the 20 MHz
    # raw-index SpotFi grid.
    from repro.io.matio import read_spotfi_mat

    loaded = read_spotfi_mat(mat_path)
    cleaned, report = StoRemoval.for_bandwidth(20).apply(loaded)
    golden_path = FIXTURE_DIR / "sto_golden.npz"
    atomic_write(
        golden_path,
        lambda handle: np.savez_compressed(
            handle,
            cleaned_csi=cleaned.csi,
            slopes_rad=np.asarray(report.details["slopes_rad"]),
            delays_ns=np.asarray(report.details["delays_ns"]),
        ),
    )
    print(f"wrote {golden_path} (slope {report.details['slopes_rad'][0]:+.6f} rad/index)")

    registry.save()
    print(f"wrote {registry.manifest_path} ({len(registry.entries)} datasets)")


if __name__ == "__main__":
    main()
