"""Tests for the spectrum containers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.spectral.spectrum import AngleSpectrum, JointSpectrum


def make_angle_spectrum(power):
    power = np.asarray(power, dtype=float)
    return AngleSpectrum(np.linspace(0, 180, power.size), power)


class TestAngleSpectrum:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            AngleSpectrum(np.zeros(5), np.zeros(4))

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            make_angle_spectrum([-1.0, 0.0, 1.0])

    def test_normalized_peak_is_one(self):
        spectrum = make_angle_spectrum([0.0, 2.0, 4.0, 1.0])
        assert spectrum.normalized().power.max() == 1.0

    def test_normalized_zero_spectrum_stays_zero(self):
        spectrum = make_angle_spectrum([0.0, 0.0])
        assert np.all(spectrum.normalized().power == 0)

    def test_strongest_aoa(self):
        spectrum = make_angle_spectrum([0.0, 0.0, 1.0, 0.0, 0.0])
        assert spectrum.strongest_aoa() == pytest.approx(90.0)

    def test_peaks_return_angles(self):
        power = np.zeros(181)
        power[30] = 1.0
        power[150] = 0.5
        spectrum = AngleSpectrum(np.linspace(0, 180, 181), power)
        peaks = spectrum.peaks()
        assert peaks[0].aoa_deg == pytest.approx(30.0)
        assert peaks[1].aoa_deg == pytest.approx(150.0)

    def test_closest_peak_error_uses_nearest_peak(self):
        power = np.zeros(181)
        power[30] = 1.0
        power[150] = 0.5
        spectrum = AngleSpectrum(np.linspace(0, 180, 181), power)
        assert spectrum.closest_peak_error(148.0) == pytest.approx(2.0)
        assert spectrum.closest_peak_error(30.0) == pytest.approx(0.0)

    def test_closest_peak_error_falls_back_to_maximum(self):
        spectrum = make_angle_spectrum([0.0, 0.0])
        assert spectrum.closest_peak_error(90.0) == pytest.approx(90.0)

    def test_sharpness_spike_vs_flat(self):
        flat = make_angle_spectrum(np.ones(100))
        spike = make_angle_spectrum(np.eye(100)[0])
        assert spike.sharpness() == pytest.approx(1.0)
        assert flat.sharpness() == pytest.approx(0.01)
        assert spike.sharpness() > flat.sharpness()


class TestJointSpectrum:
    def make_joint(self):
        angles = np.linspace(0, 180, 19)
        toas = np.linspace(0, 800e-9, 11)
        power = np.zeros((19, 11))
        power[15, 2] = 1.0   # (150°, 160 ns) — strong, later
        power[6, 1] = 0.6    # (60°, 80 ns) — weaker, earlier
        return JointSpectrum(angles, toas, power)

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            JointSpectrum(np.zeros(3), np.zeros(4), np.zeros((4, 3)))

    def test_peaks_carry_both_coordinates(self):
        peaks = self.make_joint().peaks()
        assert peaks[0].aoa_deg == pytest.approx(150.0)
        assert peaks[0].toa_s == pytest.approx(160e-9)
        assert peaks[0].has_toa

    def test_direct_path_is_smallest_toa_not_strongest(self):
        """The core ROArray rule (paper §III-B)."""
        direct = self.make_joint().direct_path_peak()
        assert direct.aoa_deg == pytest.approx(60.0)
        assert direct.toa_s == pytest.approx(80e-9)

    def test_direct_path_ignores_subthreshold_ripple(self):
        spectrum = self.make_joint()
        spectrum.power[2, 0] = 0.01  # tiny earlier blip, below the 10% floor
        direct = spectrum.direct_path_peak(min_relative_height=0.1)
        assert direct.toa_s == pytest.approx(80e-9)

    def test_direct_path_fallback_on_flat_spectrum(self):
        angles = np.linspace(0, 180, 5)
        toas = np.linspace(0, 800e-9, 4)
        spectrum = JointSpectrum(angles, toas, np.zeros((5, 4)))
        direct = spectrum.direct_path_peak()
        assert 0 <= direct.aoa_deg <= 180

    def test_angle_marginal(self):
        marginal = self.make_joint().angle_marginal()
        assert marginal.power.shape == (19,)
        assert marginal.strongest_aoa() == pytest.approx(150.0)

    def test_normalized(self):
        assert self.make_joint().normalized().power.max() == 1.0
