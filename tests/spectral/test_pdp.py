"""Tests for power-delay-profile analysis."""

import numpy as np
import pytest

from repro.channel.csi import synthesize_csi_matrix
from repro.channel.ofdm import intel5300_layout
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.exceptions import ConfigurationError
from repro.spectral.pdp import PowerDelayProfile, delay_resolution, power_delay_profile


def single_path_csi(array, layout, toa_s):
    profile = MultipathProfile(
        paths=[PropagationPath(90.0, toa_s, 1.0, is_direct=True)]
    )
    return synthesize_csi_matrix(profile, array, layout)


class TestPowerDelayProfile:
    def test_single_path_peak_at_its_delay(self, array):
        layout = intel5300_layout()
        tau = 160e-9
        pdp = power_delay_profile(single_path_csi(array, layout, tau), layout)
        assert pdp.strongest_delay() == pytest.approx(tau, abs=delay_resolution(layout))

    def test_two_paths_resolved_when_far_apart(self, array):
        layout = intel5300_layout()
        profile = MultipathProfile(
            paths=[
                PropagationPath(60.0, 50e-9, 1.0, is_direct=True),
                PropagationPath(120.0, 400e-9, 0.8),
            ]
        )
        pdp = power_delay_profile(synthesize_csi_matrix(profile, array, layout), layout)
        normalized = pdp.normalized()
        near_first = normalized.power[np.abs(pdp.delays_s - 50e-9) < 30e-9].max()
        near_second = normalized.power[np.abs(pdp.delays_s - 400e-9) < 30e-9].max()
        assert near_first > 0.5
        assert near_second > 0.3

    def test_resolution_limit_vs_sparse_recovery(self, array):
        """Two paths 15 ns apart blur in the PDP — below 1/(L·fδ) ≈ 27 ns —
        which is the paper's case for model-based estimation."""
        layout = intel5300_layout()
        profile = MultipathProfile(
            paths=[
                PropagationPath(60.0, 100e-9, 1.0, is_direct=True),
                PropagationPath(120.0, 115e-9, 1.0),
            ]
        )
        pdp = power_delay_profile(synthesize_csi_matrix(profile, array, layout), layout)
        window = pdp.power[(pdp.delays_s > 60e-9) & (pdp.delays_s < 160e-9)]
        # One merged lobe: count local maxima above half the window peak.
        from repro.spectral.peaks import find_peaks_1d

        peaks = find_peaks_1d(window, min_relative_height=0.5)
        assert len(peaks) == 1

    def test_mean_delay_and_spread(self):
        delays = np.array([0.0, 100e-9, 200e-9])
        pdp = PowerDelayProfile(delays, np.array([1.0, 0.0, 1.0]))
        assert pdp.mean_delay() == pytest.approx(100e-9)
        assert pdp.rms_delay_spread() == pytest.approx(100e-9)

    def test_zero_power_statistics(self):
        pdp = PowerDelayProfile(np.array([0.0, 1e-9]), np.zeros(2))
        assert pdp.mean_delay() == 0.0
        assert pdp.rms_delay_spread() == 0.0

    def test_delay_spread_grows_with_multipath(self, array):
        layout = intel5300_layout()
        short = MultipathProfile(
            paths=[PropagationPath(60.0, 50e-9, 1.0, is_direct=True)]
        )
        rich = MultipathProfile(
            paths=[
                PropagationPath(60.0, 50e-9, 1.0, is_direct=True),
                PropagationPath(100.0, 350e-9, 0.9),
                PropagationPath(140.0, 600e-9, 0.8),
            ]
        )
        pdp_short = power_delay_profile(synthesize_csi_matrix(short, array, layout), layout)
        pdp_rich = power_delay_profile(synthesize_csi_matrix(rich, array, layout), layout)
        assert pdp_rich.rms_delay_spread() > pdp_short.rms_delay_spread()

    def test_validation(self, array):
        layout = intel5300_layout()
        with pytest.raises(ConfigurationError):
            power_delay_profile(np.zeros(30), layout)
        with pytest.raises(ConfigurationError):
            power_delay_profile(np.zeros((3, 16)), layout)
        with pytest.raises(ConfigurationError):
            power_delay_profile(np.zeros((3, 30)), layout, oversample=0)
        with pytest.raises(ConfigurationError):
            PowerDelayProfile(np.zeros(3), np.array([1.0, -1.0, 0.0]))
