"""Tests for 1-D/2-D peak detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.spectral.peaks import find_peaks_1d, find_peaks_2d


class TestPeaks1d:
    def test_single_interior_peak(self):
        assert find_peaks_1d(np.array([0.0, 1.0, 0.0])) == [1]

    def test_edge_peaks_detected(self):
        assert 0 in find_peaks_1d(np.array([2.0, 1.0, 0.0]))
        assert 2 in find_peaks_1d(np.array([0.0, 1.0, 2.0]))

    def test_sorted_by_height(self):
        values = np.array([0.0, 0.5, 0.0, 1.0, 0.0, 0.8, 0.0])
        assert find_peaks_1d(values) == [3, 5, 1]

    def test_max_peaks_cap(self):
        values = np.array([0.0, 0.5, 0.0, 1.0, 0.0, 0.8, 0.0])
        assert find_peaks_1d(values, max_peaks=2) == [3, 5]

    def test_relative_height_floor(self):
        values = np.array([0.0, 0.02, 0.0, 1.0, 0.0])
        assert find_peaks_1d(values, min_relative_height=0.1) == [3]

    def test_plateau_counts_once(self):
        values = np.array([0.0, 1.0, 1.0, 0.0])
        peaks = find_peaks_1d(values)
        assert len(peaks) == 1

    def test_all_zero_returns_empty(self):
        assert find_peaks_1d(np.zeros(5)) == []

    def test_empty_and_singleton(self):
        assert find_peaks_1d(np.array([])) == []
        assert find_peaks_1d(np.array([1.0])) == [0]
        assert find_peaks_1d(np.array([0.0])) == []

    def test_rejects_2d_input(self):
        with pytest.raises(ConfigurationError):
            find_peaks_1d(np.zeros((2, 2)))

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=3, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_global_max_is_always_found(self, values):
        values = np.array(values)
        if values.max() <= 0:
            return
        peaks = find_peaks_1d(values, min_relative_height=0.0)
        assert any(values[i] == values.max() for i in peaks)


class TestPeaks2d:
    def test_single_peak(self):
        grid = np.zeros((5, 5))
        grid[2, 3] = 1.0
        assert find_peaks_2d(grid) == [(2, 3)]

    def test_corner_peak(self):
        grid = np.zeros((4, 4))
        grid[0, 0] = 1.0
        assert (0, 0) in find_peaks_2d(grid)

    def test_two_peaks_sorted(self):
        grid = np.zeros((6, 6))
        grid[1, 1] = 0.5
        grid[4, 4] = 1.0
        assert find_peaks_2d(grid) == [(4, 4), (1, 1)]

    def test_saddle_not_a_peak(self):
        grid = np.array([
            [0.0, 1.0, 0.0],
            [0.5, 0.8, 0.5],
            [0.0, 1.0, 0.0],
        ])
        peaks = find_peaks_2d(grid, min_relative_height=0.0)
        assert (1, 1) not in peaks

    def test_relative_floor(self):
        grid = np.zeros((5, 5))
        grid[1, 1] = 1.0
        grid[3, 3] = 0.01
        assert find_peaks_2d(grid, min_relative_height=0.1) == [(1, 1)]

    def test_max_peaks_cap(self):
        grid = np.zeros((8, 8))
        for i, v in [(1, 1.0), (3, 0.9), (5, 0.8)]:
            grid[i, i] = v
        assert len(find_peaks_2d(grid, max_peaks=2)) == 2

    def test_plateau_deduplicated(self):
        grid = np.zeros((4, 4))
        grid[1, 1] = grid[1, 2] = 1.0
        assert len(find_peaks_2d(grid)) == 1

    def test_all_zero(self):
        assert find_peaks_2d(np.zeros((3, 3))) == []

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            find_peaks_2d(np.zeros(5))
