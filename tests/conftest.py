"""Shared fixtures for the test suite.

The fixtures deliberately use *small* grids and subcarrier counts so the
suite stays fast; correctness of the algorithms does not depend on grid
size, and the full-size working point is exercised by the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.array import UniformLinearArray
from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.ofdm import SubcarrierLayout
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.core.config import RoArrayConfig
from repro.core.grids import AngleGrid, DelayGrid


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def array() -> UniformLinearArray:
    """The paper's 3-antenna half-wavelength ULA."""
    return UniformLinearArray()


@pytest.fixture
def layout() -> SubcarrierLayout:
    """A reduced 16-subcarrier layout (same spacing as the Intel 5300)."""
    return SubcarrierLayout(n_subcarriers=16, spacing=1.25e6)


@pytest.fixture
def small_config() -> RoArrayConfig:
    """A coarse but fully functional ROArray configuration for fast tests."""
    return RoArrayConfig(
        angle_grid=AngleGrid(n_points=61),
        delay_grid=DelayGrid(n_points=21, stop_s=800e-9),
        max_iterations=150,
    )


@pytest.fixture
def two_path_profile() -> MultipathProfile:
    """A clean, well-separated two-path channel with a strong LoS."""
    return MultipathProfile(
        paths=[
            PropagationPath(aoa_deg=60.0, toa_s=40e-9, gain=1.0 + 0.0j, is_direct=True),
            PropagationPath(aoa_deg=120.0, toa_s=200e-9, gain=0.4 * np.exp(1j)),
        ]
    )


@pytest.fixture
def clean_impairments() -> ImpairmentModel:
    """No detection delay, CFO, offsets, or tilt — for exactness tests."""
    return ImpairmentModel(detection_delay_range_s=0.0, sfo_std_s=0.0, cfo_residual_rad=0.0)


@pytest.fixture
def synthesizer(array, layout, clean_impairments) -> CsiSynthesizer:
    return CsiSynthesizer(array, layout, clean_impairments, seed=0)
