"""Package-level contract tests."""

import repro
from repro import (
    CalibrationError,
    ConfigurationError,
    GeometryError,
    ReproError,
    SolverError,
)


class TestPackage:
    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_exception_hierarchy(self):
        for exc in (ConfigurationError, SolverError, GeometryError, CalibrationError):
            assert issubclass(exc, ReproError)
        assert issubclass(ReproError, Exception)

    def test_subpackages_import(self):
        import repro.baselines
        import repro.channel
        import repro.core
        import repro.experiments
        import repro.optim
        import repro.spectral

        assert repro.core.RoArrayEstimator.name == "ROArray"

    def test_public_api_exports(self):
        from repro.baselines import ArrayTrackEstimator, SpotFiEstimator
        from repro.core import RoArrayEstimator

        for cls in (RoArrayEstimator, SpotFiEstimator, ArrayTrackEstimator):
            assert hasattr(cls, "analyze")
            assert hasattr(cls, "estimate_direct_path")
            assert isinstance(cls.name, str)
