"""solve_batch: lockstep batching must be invisible per problem.

The contract under test (see ``repro/optim/batch.py``):

* a singleton batch is **byte-identical** to the sequential solver on
  the numpy backend;
* any larger batch matches the per-problem sequential loop within the
  float64 parity budget (1e-12 relative), for every method, at batch
  sizes that cross the internal column-block boundary;
* κ derivation, warm starts, and the parity gate behave exactly like
  their sequential counterparts;
* malformed batches fail loudly, never silently truncate.

The cross-backend matrix at the bottom runs the same agreement check on
torch/cupy when installed (skips cleanly otherwise).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim import (
    FLOAT32_TOLERANCES,
    BatchSolverResult,
    solve,
    solve_batch,
    solve_lasso_admm,
    solve_lasso_fista,
    solve_mmv_fista,
    solve_omp,
)
from repro.optim.admm import CachedAdmmFactors
from repro.optim.tuning import mmv_residual_kappa, residual_kappa

from tests.optim.test_fista import make_sparse_system

# 7 exercises a single partial block; 33 crosses the 16-column block
# boundary twice, catching any per-block bookkeeping slip.
BATCH_SIZES = (7, 33)


def make_batch(rng, n_problems, m=40, n=160, noise=0.05):
    a, _, x_true, _ = make_sparse_system(rng, m=m, n=n, noise=noise)
    ys = []
    for _ in range(n_problems):
        jitter = noise * (rng.standard_normal(m) + 1j * rng.standard_normal(m))
        ys.append(a @ x_true + jitter)
    return a, ys


class TestSingletonByteIdentity:
    """B == 1 delegates to the sequential solver outright."""

    def test_fista(self, rng):
        a, ys = make_batch(rng, 1)
        solo = solve_lasso_fista(a, ys[0], 0.1, max_iterations=300)
        batch = solve_batch(a, ys, method="fista", kappa=0.1, max_iterations=300)
        np.testing.assert_array_equal(batch.to_numpy()[0], solo.x)
        assert batch.objectives[0] == solo.objective
        assert batch.iterations[0] == solo.iterations

    def test_admm(self, rng):
        a, ys = make_batch(rng, 1)
        solo = solve_lasso_admm(a, ys[0], 0.1, max_iterations=300)
        batch = solve_batch(a, ys, method="admm", kappa=0.1, max_iterations=300)
        np.testing.assert_array_equal(batch.to_numpy()[0], solo.x)

    def test_omp(self, rng):
        a, ys = make_batch(rng, 1, noise=0.0)
        solo = solve_omp(a, ys[0], sparsity=3)
        batch = solve_batch(a, ys, method="omp", sparsity=3)
        np.testing.assert_array_equal(batch.to_numpy()[0], solo.x)

    def test_mmv(self, rng):
        a, ys = make_batch(rng, 1)
        snapshots = np.stack([ys[0], 1.1 * ys[0]], axis=1)
        solo = solve_mmv_fista(a, snapshots, 0.1, max_iterations=300)
        batch = solve_batch(a, [snapshots], method="mmv", kappa=0.1, max_iterations=300)
        np.testing.assert_array_equal(batch.to_numpy()[0], solo.x)


class TestBatchedMatchesSequentialLoop:
    @pytest.mark.parametrize("n_problems", BATCH_SIZES)
    def test_fista(self, rng, n_problems):
        a, ys = make_batch(rng, n_problems)
        batch = solve_batch(a, ys, method="fista", kappa=0.1, max_iterations=300)
        for index, y in enumerate(ys):
            solo = solve_lasso_fista(a, y, 0.1, max_iterations=300)
            scale = max(1.0, float(np.abs(solo.x).max()))
            assert float(np.abs(batch.to_numpy()[index] - solo.x).max()) <= 1e-12 * scale
            assert batch.iterations[index] == solo.iterations
            assert batch.converged[index] == solo.converged

    @pytest.mark.parametrize("n_problems", BATCH_SIZES)
    def test_admm(self, rng, n_problems):
        a, ys = make_batch(rng, n_problems)
        batch = solve_batch(a, ys, method="admm", kappa=0.1, max_iterations=300)
        for index, y in enumerate(ys):
            solo = solve_lasso_admm(a, y, 0.1, max_iterations=300)
            scale = max(1.0, float(np.abs(solo.x).max()))
            assert float(np.abs(batch.to_numpy()[index] - solo.x).max()) <= 1e-12 * scale

    @pytest.mark.parametrize("n_problems", BATCH_SIZES)
    def test_omp(self, rng, n_problems):
        a, ys = make_batch(rng, n_problems, noise=0.0)
        batch = solve_batch(a, ys, method="omp", sparsity=3)
        for index, y in enumerate(ys):
            solo = solve_omp(a, y, sparsity=3)
            scale = max(1.0, float(np.abs(solo.x).max()))
            assert float(np.abs(batch.to_numpy()[index] - solo.x).max()) <= 1e-12 * scale

    def test_mmv(self, rng):
        a, ys = make_batch(rng, 7)
        stacks = [np.stack([y, 0.9 * y], axis=1) for y in ys]
        batch = solve_batch(a, stacks, method="mmv", kappa=0.1, max_iterations=300)
        for index, snapshots in enumerate(stacks):
            solo = solve_mmv_fista(a, snapshots, 0.1, max_iterations=300)
            scale = max(1.0, float(np.abs(solo.x).max()))
            assert float(np.abs(batch.to_numpy()[index] - solo.x).max()) <= 1e-12 * scale

    def test_per_problem_kappa_sequence(self, rng):
        a, ys = make_batch(rng, 7)
        kappas = [0.05 * (1 + index) for index in range(7)]
        batch = solve_batch(a, ys, method="fista", kappa=kappas, max_iterations=300)
        for index, (y, kappa) in enumerate(zip(ys, kappas)):
            solo = solve_lasso_fista(a, y, kappa, max_iterations=300)
            scale = max(1.0, float(np.abs(solo.x).max()))
            assert float(np.abs(batch.to_numpy()[index] - solo.x).max()) <= 1e-12 * scale

    def test_derived_kappas_match_sequential_derivation(self, rng):
        a, ys = make_batch(rng, 5)
        batch = solve_batch(a, ys, method="fista", kappa_fraction=0.07, max_iterations=50)
        expected = tuple(residual_kappa(a, y, fraction=0.07) for y in ys)
        assert batch.kappas == pytest.approx(expected, rel=0, abs=0)

    def test_derived_mmv_kappas(self, rng):
        a, ys = make_batch(rng, 3)
        stacks = [np.stack([y, y], axis=1) for y in ys]
        batch = solve_batch(a, stacks, method="mmv", max_iterations=50)
        expected = tuple(mmv_residual_kappa(a, s, fraction=0.05) for s in stacks)
        assert batch.kappas == pytest.approx(expected, rel=0, abs=0)

    def test_shared_admm_factors_across_blocks(self, rng):
        """One caller-provided factorization serves the whole batch."""
        a, ys = make_batch(rng, 33)
        factors = CachedAdmmFactors(a, rho=1.0)
        batch = solve_batch(
            a, ys, method="admm", kappa=0.1, factors=factors, max_iterations=200
        )
        plain = solve_batch(a, ys, method="admm", kappa=0.1, max_iterations=200)
        np.testing.assert_array_equal(batch.to_numpy(), plain.to_numpy())


class TestWarmStart:
    def test_warm_start_matches_sequential_warm_loop(self, rng):
        a, ys = make_batch(rng, 7)
        first = solve_batch(a, ys, method="fista", kappa=0.1, max_iterations=300)
        nudged = [
            y + 0.01 * (rng.standard_normal(y.size) + 1j * rng.standard_normal(y.size))
            for y in ys
        ]
        warm = solve_batch(
            a, nudged, method="fista", kappa=0.1, max_iterations=300, x0=first
        )
        for index, y in enumerate(nudged):
            solo = solve_lasso_fista(
                a, y, 0.1, max_iterations=300, x0=first.to_numpy()[index]
            )
            scale = max(1.0, float(np.abs(solo.x).max()))
            assert float(np.abs(warm.to_numpy()[index] - solo.x).max()) <= 1e-12 * scale

    def test_warm_start_accepts_plain_array(self, rng):
        a, ys = make_batch(rng, 3)
        x0 = np.zeros((3, a.shape[1]), dtype=complex)
        cold = solve_batch(a, ys, method="fista", kappa=0.1, max_iterations=100)
        warmed = solve_batch(a, ys, method="fista", kappa=0.1, max_iterations=100, x0=x0)
        np.testing.assert_array_equal(cold.to_numpy(), warmed.to_numpy())

    def test_warm_start_shape_is_validated(self, rng):
        a, ys = make_batch(rng, 3)
        with pytest.raises(SolverError, match="x0 has shape"):
            solve_batch(a, ys, method="fista", kappa=0.1, x0=np.zeros((2, a.shape[1])))

    def test_warm_start_rejected_for_greedy_methods(self, rng):
        a, ys = make_batch(rng, 3)
        with pytest.raises(SolverError, match="warm start"):
            solve_batch(a, ys, method="omp", sparsity=2, x0=np.zeros((3, a.shape[1])))


class TestParityGate:
    def test_gate_passes_and_attaches_report(self, rng):
        a, ys = make_batch(rng, 7)
        batch = solve_batch(
            a, ys, method="fista", kappa=0.1, max_iterations=200, parity_gate=True
        )
        assert batch.parity["passed"]
        assert batch.parity["precision"] == "double"
        assert batch.parity["n_problems"] == 7
        assert batch.parity["max_relative_deviation"] <= batch.parity["tolerance"]

    def test_gate_raises_on_forced_violation(self, rng):
        # tolerance 0 cannot absorb the batched-GEMM rounding difference,
        # so the gate must trip — proving it actually compares solutions.
        a, ys = make_batch(rng, 7)
        with pytest.raises(SolverError, match="parity gate failed"):
            solve_batch(
                a, ys, method="fista", kappa=0.1, max_iterations=200,
                parity_gate=True, parity_tolerance=0.0,
            )

    def test_float32_ladder(self, rng):
        a, ys = make_batch(rng, 7)
        double = solve_batch(a, ys, method="fista", kappa=0.1, max_iterations=300)
        single = solve_batch(
            a, ys, method="fista", kappa=0.1, max_iterations=300, dtype="complex64"
        )
        assert single.dtype_name == "complex64"
        for index in range(7):
            reference = double.to_numpy()[index]
            scale = max(1.0, float(np.abs(reference).max()))
            deviation = float(np.abs(single.to_numpy()[index] - reference).max())
            assert deviation <= FLOAT32_TOLERANCES["solution"] * scale


class TestPrecisionOverride:
    """``dtype="complex64"`` must stick for the whole computation.

    Regression guard for NEP 50 promotion leaks: a float64 rhs, a
    ``np.float64`` momentum scalar, or a float64 ρI ridge silently
    promoted complex64 iterates back to complex128 — the override then
    reported float32 speed/accuracy trade-offs that never happened.
    """

    def test_facade_methods_stay_complex64(self, rng):
        a, ys = make_batch(rng, 2)
        for method, kwargs in (
            ("fista", {"kappa": 0.1}),
            ("admm", {"kappa": 0.1}),
            ("omp", {"sparsity": 3}),
        ):
            result = solve(a, ys[0], method=method, dtype="complex64", **kwargs)
            assert result.x.dtype == np.complex64, method
        snapshots = np.stack([ys[0], ys[1]], axis=1)
        result = solve(a, snapshots, method="mmv", kappa=0.1, dtype="complex64")
        assert result.x.dtype == np.complex64

    def test_convergent_batch_stays_complex64(self, rng):
        # Noise-free problems converge inside the cap at different
        # iterations, exercising the partial-freeze path whose
        # out-of-place momentum update once promoted the iterates.
        a, ys = make_batch(rng, 7, noise=0.0)
        batch = solve_batch(
            a, ys, method="fista", kappa=0.05, dtype="complex64",
            max_iterations=3000,
        )
        assert any(batch.converged)
        assert batch.dtype_name == "complex64"
        assert np.asarray(batch.x).dtype == np.complex64


class TestValidation:
    def test_empty_batch(self, rng):
        a, _ = make_batch(rng, 1)
        with pytest.raises(SolverError, match="empty batch"):
            solve_batch(a, [], method="fista", kappa=0.1)

    def test_ragged_batch(self, rng):
        a, ys = make_batch(rng, 2)
        with pytest.raises(SolverError, match="ragged"):
            solve_batch(a, [ys[0], ys[1][:-1]], method="fista", kappa=0.1)

    def test_unknown_method(self, rng):
        a, ys = make_batch(rng, 2)
        with pytest.raises(SolverError, match="does not support method"):
            solve_batch(a, ys, method="sbl")

    def test_unknown_option(self, rng):
        a, ys = make_batch(rng, 2)
        with pytest.raises(SolverError, match="does not accept options"):
            solve_batch(a, ys, method="fista", kappa=0.1, sparsity=3)

    def test_kappa_length_mismatch(self, rng):
        a, ys = make_batch(rng, 3)
        with pytest.raises(SolverError, match="kappa sequence has length"):
            solve_batch(a, ys, method="fista", kappa=[0.1, 0.2])

    def test_omp_rejects_kappa(self, rng):
        a, ys = make_batch(rng, 2)
        with pytest.raises(SolverError, match="kappa"):
            solve_batch(a, ys, method="omp", sparsity=2, kappa=0.1)

    def test_dimension_mismatch(self, rng):
        a, ys = make_batch(rng, 2)
        with pytest.raises(SolverError, match="incompatible"):
            solve_batch(a, [y[:-1] for y in ys], method="fista", kappa=0.1)

    def test_wrong_rank_for_method(self, rng):
        a, ys = make_batch(rng, 2)
        with pytest.raises(SolverError, match="2-D"):
            solve_batch(a, ys, method="mmv", kappa=0.1)

    def test_non_finite_measurements(self, rng):
        a, ys = make_batch(rng, 2)
        ys[1][0] = np.nan
        with pytest.raises(SolverError, match="non-finite"):
            solve_batch(a, ys, method="fista", kappa=0.1, max_iterations=10)


class TestResultApi:
    def test_result_shape_and_problem_slices(self, rng):
        a, ys = make_batch(rng, 4)
        batch = solve_batch(a, ys, method="fista", kappa=0.1, max_iterations=100)
        assert isinstance(batch, BatchSolverResult)
        assert batch.n_problems == 4
        assert batch.to_numpy().shape == (4, a.shape[1])
        assert batch.backend_name == "numpy"
        assert batch.dtype_name == "complex128"
        one = batch.problem(2)
        assert one.solver == "fista"
        np.testing.assert_array_equal(one.x, batch.to_numpy()[2])
        assert one.objective == batch.objectives[2]


class TestCrossBackendParity:
    """The same batch on every installed backend vs the numpy reference."""

    @pytest.mark.parametrize("method", ["fista", "admm", "omp"])
    def test_float64_agreement(self, backend, rng, method):
        a, ys = make_batch(rng, 7, noise=0.0 if method == "omp" else 0.05)
        options = (
            {"sparsity": 3} if method == "omp" else {"kappa": 0.1, "max_iterations": 200}
        )
        reference = solve_batch(a, ys, method=method, **options)
        produced = solve_batch(a, ys, method=method, backend=backend, **options)
        assert produced.backend_name == backend.name
        for index in range(7):
            ref = reference.to_numpy()[index]
            scale = max(1.0, float(np.abs(ref).max()))
            deviation = float(np.abs(produced.to_numpy()[index] - ref).max())
            assert deviation <= 1e-10 * scale
