"""Tests for solver guardrails (divergence detection + fallback chain)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SolverDivergenceError, SolverError
from repro.optim import GuardrailPolicy, residual_kappa, solve, solve_guarded

from tests.optim.test_fista import make_sparse_system


class TestCleanPathByteIdentity:
    def test_guarded_solve_matches_plain_fista(self, rng):
        a, y, *_ = make_sparse_system(rng)
        kappa = residual_kappa(a, y, fraction=0.1)
        plain = solve(a, y, kappa=kappa, max_iterations=500)
        guarded = solve_guarded(a, y, kappa=kappa, max_iterations=500)
        np.testing.assert_array_equal(guarded.x, plain.x)
        assert guarded.objective == plain.objective
        assert guarded.iterations == plain.iterations
        assert guarded.solver == "fista"
        assert guarded.fallbacks == ()

    def test_guarded_mmv_matches_plain_mmv(self, rng):
        a, y, *_ = make_sparse_system(rng)
        snapshots = np.stack([y, 1.1 * y], axis=1)
        plain = solve(a, snapshots, "mmv", kappa=0.5, max_iterations=300)
        guarded = solve_guarded(a, snapshots, kappa=0.5, max_iterations=300)
        np.testing.assert_array_equal(guarded.x, plain.x)
        assert guarded.solver == "mmv"
        assert guarded.fallbacks == ()


class TestFallbackChain:
    def test_diverging_primary_falls_back(self, rng):
        # A wildly wrong Lipschitz estimate makes FISTA's step size
        # explosive; the guard must detect the divergence and let ADMM
        # (which ignores the hint) produce the answer.
        a, y, *_ = make_sparse_system(rng)
        result = solve_guarded(
            a, y, kappa=0.05, max_iterations=200, lipschitz=1e-8
        )
        assert result.solver == "admm"
        assert result.fallbacks == ("fista",)
        assert np.isfinite(result.objective)
        assert result.objective <= float(np.sum(np.abs(y) ** 2))

    def test_fallback_result_matches_direct_admm(self, rng):
        a, y, *_ = make_sparse_system(rng)
        fallback = solve_guarded(a, y, kappa=0.05, max_iterations=200, lipschitz=1e-8)
        # Fallbacks re-derive kappa from kappa_fraction (the explicit
        # kappa belongs to the primary) — mirror that here.
        direct = solve(a, y, "admm", kappa_fraction=0.05, max_iterations=200)
        np.testing.assert_array_equal(fallback.x, direct.x)

    def test_exhausted_chain_raises_divergence_error(self, rng):
        # With measurement noise no solver can reach a ~zero objective,
        # so an absurdly tight bound rejects every chain entry.
        a, y, *_ = make_sparse_system(rng, noise=0.1)
        policy = GuardrailPolicy(divergence_factor=1e-12)
        with pytest.raises(SolverDivergenceError, match="every solver in chain"):
            solve_guarded(a, y, max_iterations=50, policy=policy)

    def test_custom_chain_is_honored(self, rng):
        a, y, *_ = make_sparse_system(rng)
        policy = GuardrailPolicy(fallback_chain=("omp",), omp_sparsity=3)
        result = solve_guarded(a, y, policy=policy)
        assert result.solver == "omp"
        direct = solve(a, y, "omp", sparsity=3)
        np.testing.assert_array_equal(result.x, direct.x)

    def test_mmv_fallback_reduces_to_principal_column(self, rng):
        a, y, *_ = make_sparse_system(rng)
        snapshots = np.stack([y, 1.1 * y], axis=1)
        policy = GuardrailPolicy(mmv_chain=("omp",), omp_sparsity=3)
        result = solve_guarded(a, snapshots, policy=policy)
        assert result.solver == "omp"
        assert result.x.ndim == 1  # solved on the rank-1 reduction


class TestBudgets:
    def test_iteration_cap_applies(self, rng):
        a, y, *_ = make_sparse_system(rng)
        policy = GuardrailPolicy(max_iterations=7)
        result = solve_guarded(a, y, kappa=0.05, max_iterations=500, policy=policy)
        assert result.iterations <= 7

    def test_expired_time_budget_raises(self, rng, monkeypatch):
        import repro.optim.guard as guard_module

        a, y, *_ = make_sparse_system(rng)
        ticks = iter([0.0, 100.0, 200.0, 300.0])
        monkeypatch.setattr(guard_module.time, "monotonic", lambda: next(ticks))
        with pytest.raises(SolverError, match="budget"):
            solve_guarded(a, y, policy=GuardrailPolicy(time_budget_s=1.0))


class TestPolicyValidation:
    def test_rejects_bad_policies(self):
        with pytest.raises(SolverError):
            GuardrailPolicy(fallback_chain=())
        with pytest.raises(SolverError):
            GuardrailPolicy(fallback_chain=("nope",))
        with pytest.raises(SolverError):
            GuardrailPolicy(divergence_factor=0.0)
        with pytest.raises(SolverError):
            GuardrailPolicy(time_budget_s=-1.0)
        with pytest.raises(SolverError):
            GuardrailPolicy(omp_sparsity=0)
