"""Tests for the complex FISTA LASSO solver."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim.fista import lasso_objective, solve_lasso_fista


def make_sparse_system(rng, m=40, n=160, k=3, noise=0.0):
    """A random Gaussian dictionary with a k-sparse complex ground truth."""
    a = (rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))) / np.sqrt(m)
    support = rng.choice(n, size=k, replace=False)
    x_true = np.zeros(n, dtype=complex)
    x_true[support] = rng.standard_normal(k) + 1j * rng.standard_normal(k) + 2.0
    y = a @ x_true
    if noise > 0:
        y = y + noise * (rng.standard_normal(m) + 1j * rng.standard_normal(m))
    return a, y, x_true, set(support.tolist())


class TestRecovery:
    def test_recovers_support_noiseless(self, rng):
        a, y, x_true, support = make_sparse_system(rng)
        result = solve_lasso_fista(a, y, kappa=0.02, max_iterations=800)
        top = set(np.argsort(np.abs(result.x))[-len(support):].tolist())
        assert top == support

    def test_recovers_support_noisy(self, rng):
        a, y, x_true, support = make_sparse_system(rng, noise=0.05)
        result = solve_lasso_fista(a, y, kappa=0.1, max_iterations=800)
        top = set(np.argsort(np.abs(result.x))[-len(support):].tolist())
        assert top == support

    def test_large_kappa_gives_zero_solution(self, rng):
        a, y, *_ = make_sparse_system(rng)
        huge = 10 * float(np.abs(2 * a.conj().T @ y).max())
        result = solve_lasso_fista(a, y, kappa=huge, max_iterations=50)
        assert np.allclose(result.x, 0)

    def test_kappa_zero_reduces_residual_to_noise_floor(self, rng):
        a, y, x_true, _ = make_sparse_system(rng)
        result = solve_lasso_fista(a, y, kappa=0.0, max_iterations=2000, tolerance=1e-10)
        residual = np.linalg.norm(a @ result.x - y)
        assert residual < 1e-3 * np.linalg.norm(y)


class TestConvergence:
    def test_objective_history_decreases_overall(self, rng):
        a, y, *_ = make_sparse_system(rng)
        result = solve_lasso_fista(a, y, kappa=0.05, max_iterations=300, track_history=True)
        history = np.array(result.history)
        assert history[-1] <= history[0]
        # FISTA is not strictly monotone, but the tail must be below the head.
        assert history[-1] <= history[len(history) // 2] + 1e-9

    def test_converged_flag_set_on_tight_problem(self, rng):
        a, y, *_ = make_sparse_system(rng)
        result = solve_lasso_fista(a, y, kappa=0.05, max_iterations=5000, tolerance=1e-8)
        assert result.converged

    def test_iteration_cap_respected(self, rng):
        a, y, *_ = make_sparse_system(rng)
        result = solve_lasso_fista(a, y, kappa=0.01, max_iterations=7, tolerance=0.0)
        assert result.iterations == 7
        assert not result.converged

    def test_warm_start_converges_faster(self, rng):
        a, y, *_ = make_sparse_system(rng)
        cold = solve_lasso_fista(a, y, kappa=0.05, max_iterations=2000, tolerance=1e-8)
        warm = solve_lasso_fista(
            a, y, kappa=0.05, max_iterations=2000, tolerance=1e-8, x0=cold.x
        )
        assert warm.iterations <= cold.iterations

    def test_precomputed_lipschitz_matches_auto(self, rng):
        a, y, *_ = make_sparse_system(rng)
        auto = solve_lasso_fista(a, y, kappa=0.05, max_iterations=400)
        manual = solve_lasso_fista(
            a, y, kappa=0.05, max_iterations=400, lipschitz=float(np.linalg.norm(a, 2) ** 2)
        )
        assert manual.objective == pytest.approx(auto.objective, rel=1e-3)


class TestObjective:
    def test_lasso_objective_formula(self, rng):
        a = rng.standard_normal((4, 6)) + 0j
        y = rng.standard_normal(4) + 0j
        x = rng.standard_normal(6) + 0j
        expected = np.linalg.norm(a @ x - y) ** 2 + 0.3 * np.abs(x).sum()
        assert lasso_objective(a, y, x, 0.3) == pytest.approx(expected)

    def test_result_objective_consistent_with_x(self, rng):
        a, y, *_ = make_sparse_system(rng)
        result = solve_lasso_fista(a, y, kappa=0.05, max_iterations=200)
        assert result.objective == pytest.approx(lasso_objective(a, y, result.x, 0.05))


class TestValidation:
    def test_rejects_negative_kappa(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            solve_lasso_fista(a, y, kappa=-1.0)

    def test_rejects_matrix_rhs(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError, match="1-D"):
            solve_lasso_fista(a, np.stack([y, y], axis=1), kappa=0.1)

    def test_rejects_bad_x0_shape(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError, match="x0"):
            solve_lasso_fista(a, y, kappa=0.1, x0=np.zeros(3))

    def test_rejects_zero_iterations(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            solve_lasso_fista(a, y, kappa=0.1, max_iterations=0)

    def test_zero_dictionary_returns_zero(self):
        result = solve_lasso_fista(np.zeros((4, 8)), np.zeros(4), kappa=0.1)
        assert np.all(result.x == 0)
        assert result.converged


class TestSolverResult:
    def test_support_property(self, rng):
        a, y, _, support = make_sparse_system(rng)
        result = solve_lasso_fista(a, y, kappa=0.1, max_iterations=800)
        assert support.issubset(set(result.support.tolist()))

    def test_sparsity_counts_significant_entries(self, rng):
        a, y, _, support = make_sparse_system(rng)
        result = solve_lasso_fista(a, y, kappa=0.1, max_iterations=800)
        assert result.sparsity(rtol=0.2) <= 2 * len(support)

    def test_sparsity_of_zero_vector(self, rng):
        a, y, *_ = make_sparse_system(rng)
        huge = 10 * float(np.abs(2 * a.conj().T @ y).max())
        result = solve_lasso_fista(a, y, kappa=huge, max_iterations=20)
        assert result.sparsity() == 0
