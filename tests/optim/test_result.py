"""Tests for the SolverResult container."""

import numpy as np

from repro.optim.result import SolverResult


class TestSupport:
    def test_vector_support(self):
        x = np.array([0.0, 1.0 + 1j, 0.0, -2.0])
        result = SolverResult(x=x, objective=0.0, iterations=1, converged=True)
        np.testing.assert_array_equal(result.support, [1, 3])

    def test_matrix_support_uses_row_norms(self):
        x = np.zeros((4, 2), dtype=complex)
        x[2] = [1.0, 1.0]
        result = SolverResult(x=x, objective=0.0, iterations=1, converged=True)
        np.testing.assert_array_equal(result.support, [2])

    def test_empty_support(self):
        result = SolverResult(x=np.zeros(5), objective=0.0, iterations=0, converged=True)
        assert result.support.size == 0


class TestSparsity:
    def test_counts_relative_to_peak(self):
        x = np.array([1.0, 0.5, 0.01, 0.0])
        result = SolverResult(x=x, objective=0.0, iterations=1, converged=True)
        assert result.sparsity(rtol=0.1) == 2
        assert result.sparsity(rtol=0.001) == 3

    def test_zero_vector_sparsity(self):
        result = SolverResult(x=np.zeros(3), objective=0.0, iterations=0, converged=True)
        assert result.sparsity() == 0

    def test_matrix_sparsity(self):
        x = np.zeros((3, 2))
        x[0] = [3.0, 4.0]
        x[1] = [0.01, 0.0]
        result = SolverResult(x=x, objective=0.0, iterations=1, converged=True)
        assert result.sparsity(rtol=0.1) == 1

    def test_history_defaults_empty(self):
        result = SolverResult(x=np.zeros(1), objective=0.0, iterations=0, converged=True)
        assert result.history == []
