"""Tests for the unified ``repro.optim.solve`` facade (ISSUE 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim import (
    residual_kappa,
    solve,
    solve_lasso_admm,
    solve_lasso_fista,
    solve_mmv_fista,
    solve_omp,
    solve_reweighted_lasso,
    solve_sbl,
)
from repro.optim.reweighted import solve_reweighted_lasso as reweighted_direct

from tests.optim.test_fista import make_sparse_system


class TestDispatch:
    def test_default_method_is_fista(self, rng):
        a, y, *_ = make_sparse_system(rng)
        kappa = residual_kappa(a, y, fraction=0.1)
        via_facade = solve(a, y, kappa=kappa, max_iterations=500)
        direct = solve_lasso_fista(a, y, kappa, max_iterations=500)
        np.testing.assert_array_equal(via_facade.x, direct.x)
        assert via_facade.iterations == direct.iterations

    def test_admm_dispatch(self, rng):
        a, y, *_ = make_sparse_system(rng)
        kappa = residual_kappa(a, y, fraction=0.1)
        via_facade = solve(a, y, "admm", kappa=kappa, max_iterations=500)
        direct = solve_lasso_admm(a, y, kappa, max_iterations=500)
        np.testing.assert_array_equal(via_facade.x, direct.x)

    def test_mmv_dispatch(self, rng):
        a, y, *_ = make_sparse_system(rng)
        snapshots = np.stack([y, 1.1 * y], axis=1)
        via_facade = solve(a, snapshots, "mmv", kappa=0.5, max_iterations=300)
        direct = solve_mmv_fista(a, snapshots, 0.5, max_iterations=300)
        np.testing.assert_array_equal(via_facade.x, direct.x)

    def test_omp_dispatch(self, rng):
        a, y, *_ = make_sparse_system(rng)
        via_facade = solve(a, y, "omp", sparsity=3)
        direct = solve_omp(a, y, sparsity=3)
        np.testing.assert_array_equal(via_facade.x, direct.x)

    def test_reweighted_dispatch(self, rng):
        a, y, *_ = make_sparse_system(rng)
        via_facade = solve(a, y, "reweighted", kappa=0.5, max_iterations=300)
        direct = solve_reweighted_lasso(a, y, 0.5, max_iterations=300)
        np.testing.assert_array_equal(via_facade.x, direct.x)

    def test_sbl_dispatch(self, rng):
        a, y, *_ = make_sparse_system(rng)
        via_facade = solve(a, y, "sbl", max_iterations=30)
        direct = solve_sbl(a, y, max_iterations=30)
        np.testing.assert_array_equal(via_facade.x, direct.x)

    def test_unknown_method_rejected(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError, match="unknown method"):
            solve(a, y, "cvx")


class TestKappaHandling:
    def test_kappa_derived_when_omitted(self, rng):
        a, y, *_ = make_sparse_system(rng)
        implicit = solve(a, y, kappa_fraction=0.1, max_iterations=500)
        explicit = solve_lasso_fista(
            a, y, residual_kappa(a, y, fraction=0.1), max_iterations=500
        )
        np.testing.assert_array_equal(implicit.x, explicit.x)

    def test_mmv_kappa_derived_from_row_gradient(self, rng):
        a, y, *_ = make_sparse_system(rng)
        snapshots = np.stack([y, 1.1 * y], axis=1)
        result = solve(a, snapshots, "mmv", kappa_fraction=0.1, max_iterations=300)
        assert result.x.shape == (a.shape[1], 2)

    @pytest.mark.parametrize("method", ["omp", "sbl"])
    def test_kappa_rejected_by_kappa_free_methods(self, rng, method):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError, match="does not take a kappa"):
            solve(a, y, method, kappa=0.5)


class TestRetiredSpellings:
    def test_reweighted_inner_iterations_raises(self, rng):
        """The PR 2 shim is gone: the old kwarg fails with a pointer."""
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(TypeError, match="use 'max_iterations' instead"):
            reweighted_direct(a, y, 0.5, inner_iterations=150)
