"""Hypothesis-driven solver properties (ISSUE 1 satellite).

Three cross-solver invariants that example-based tests cannot pin:

* FISTA and ADMM solve the *same* convex program, so on well-conditioned
  instances (unique minimizer) they must agree — solutions and objectives.
* Monotone FISTA (MFISTA) guarantees a non-increasing objective.
* OMP recovers exactly-sparse noiseless signals exactly.

Instances are built from hypothesis-drawn seeds rather than raw drawn
floats: the seed fully determines the instance, shrinking stays
meaningful, and conditioning is controlled by construction (orthonormal
basis × bounded singular values) so the properties hold by theory, not
by luck.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import solve, solve_lasso_admm, solve_lasso_fista, solve_omp
from repro.optim.fista import lasso_objective

from repro.optim.backend import backend_of

from tests.optim.conftest import BACKEND_PARAMS

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def to_host(x) -> np.ndarray:
    """Solver results stay backend-native; compare on the host."""
    return backend_of(x).to_numpy(x)


def well_conditioned_system(seed: int, m: int = 24, n: int = 10, k: int = 3):
    """A LASSO instance with a unique minimizer.

    ``A = Q diag(s) V`` with orthonormal ``Q`` columns and singular
    values in [1, 2]: full column rank, condition number ≤ 2.  The
    measurement is a k-sparse complex signal plus small noise.
    """
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.normal(size=(m, n)) + 1j * rng.normal(size=(m, n)))
    singular_values = rng.uniform(1.0, 2.0, size=n)
    v, _ = np.linalg.qr(rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n)))
    matrix = q @ np.diag(singular_values) @ v

    x_true = np.zeros(n, dtype=complex)
    support = rng.choice(n, size=k, replace=False)
    x_true[support] = rng.normal(size=k) + 1j * rng.normal(size=k)
    noise = 0.01 * (rng.normal(size=m) + 1j * rng.normal(size=m))
    rhs = matrix @ x_true + noise
    return matrix, rhs


class TestFistaAdmmAgreement:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_same_minimizer_on_well_conditioned_lasso(self, seed):
        matrix, rhs = well_conditioned_system(seed)
        kappa = 0.1 * float(np.abs(2.0 * matrix.conj().T @ rhs).max())
        fista = solve_lasso_fista(
            matrix, rhs, kappa, max_iterations=4000, tolerance=1e-10
        )
        admm = solve_lasso_admm(matrix, rhs, kappa, max_iterations=4000, tolerance=1e-10)
        # Full column rank => strictly convex => unique minimizer.
        np.testing.assert_allclose(fista.x, admm.x, rtol=0, atol=2e-4)
        assert fista.objective == pytest.approx(admm.objective, rel=1e-6)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_neither_solver_beats_the_shared_optimum(self, seed):
        """Cross-check: each solver's point evaluated under the one true
        objective function — no solver may be meaningfully below the
        other (that would mean one of them didn't converge)."""
        matrix, rhs = well_conditioned_system(seed)
        kappa = 0.2 * float(np.abs(2.0 * matrix.conj().T @ rhs).max())
        fista = solve_lasso_fista(matrix, rhs, kappa, max_iterations=4000, tolerance=1e-10)
        admm = solve_lasso_admm(matrix, rhs, kappa, max_iterations=4000, tolerance=1e-10)
        f_at_fista = lasso_objective(matrix, rhs, fista.x, kappa)
        f_at_admm = lasso_objective(matrix, rhs, admm.x, kappa)
        assert abs(f_at_fista - f_at_admm) <= 1e-6 * max(1.0, f_at_fista)


class TestMonotoneFista:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_objective_is_non_increasing(self, seed):
        matrix, rhs = well_conditioned_system(seed)
        kappa = 0.1 * float(np.abs(2.0 * matrix.conj().T @ rhs).max())
        result = solve_lasso_fista(
            matrix, rhs, kappa, max_iterations=200, monotone=True, track_history=True
        )
        history = np.array(result.history)
        assert history.size > 0
        assert np.all(np.diff(history) <= 1e-12 * max(1.0, history[0]))

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_monotone_reaches_the_same_minimum(self, seed):
        matrix, rhs = well_conditioned_system(seed)
        kappa = 0.1 * float(np.abs(2.0 * matrix.conj().T @ rhs).max())
        plain = solve_lasso_fista(matrix, rhs, kappa, max_iterations=4000, tolerance=1e-10)
        mono = solve_lasso_fista(
            matrix, rhs, kappa, max_iterations=4000, tolerance=1e-10, monotone=True
        )
        assert mono.objective == pytest.approx(plain.objective, rel=1e-6)


class TestOmpExactRecovery:
    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_recovers_sparse_noiseless_signals(self, seed, k):
        """With orthonormal dictionary columns and no noise, OMP picks
        the true support in magnitude order and least-squares refit is
        exact — recovery is guaranteed, not probabilistic."""
        rng = np.random.default_rng(seed)
        m, n = 24, 12
        matrix, _ = np.linalg.qr(rng.normal(size=(m, n)) + 1j * rng.normal(size=(m, n)))
        x_true = np.zeros(n, dtype=complex)
        support = rng.choice(n, size=k, replace=False)
        x_true[support] = (rng.uniform(0.5, 2.0, size=k)) * np.exp(
            1j * rng.uniform(0, 2 * np.pi, size=k)
        )
        rhs = matrix @ x_true

        result = solve_omp(matrix, rhs, sparsity=k)
        np.testing.assert_allclose(result.x, x_true, atol=1e-10)
        assert set(result.support) == set(support.tolist())
        assert result.objective <= 1e-20

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_residual_tolerance_stops_early(self, seed):
        rng = np.random.default_rng(seed)
        m, n = 24, 12
        matrix, _ = np.linalg.qr(rng.normal(size=(m, n)) + 1j * rng.normal(size=(m, n)))
        x_true = np.zeros(n, dtype=complex)
        x_true[rng.integers(n)] = 1.0
        rhs = matrix @ x_true
        # Allow up to 5 atoms, but a single atom already zeroes the
        # residual — OMP must stop there, not pad the support.
        result = solve_omp(matrix, rhs, sparsity=5, tolerance=1e-9)
        assert result.sparsity() == 1


class TestCrossBackendSolverParity:
    """The parity matrix (ISSUE 6 satellite): the same drawn instance
    solved through the facade on every installed backend must land
    within 1e-10 of the numpy float64 reference — the backends change
    the BLAS, never the algorithm.  torch/cupy skip cleanly when not
    installed; cupy additionally carries the ``gpu`` marker.
    """

    @pytest.mark.parametrize("backend_name", BACKEND_PARAMS)
    @given(seeds)
    @settings(max_examples=5, deadline=None)
    def test_fista_matches_numpy_reference(self, backend_name, seed):
        matrix, rhs = well_conditioned_system(seed)
        kappa = 0.1 * float(np.abs(2.0 * matrix.conj().T @ rhs).max())
        reference = solve_lasso_fista(matrix, rhs, kappa, max_iterations=1500)
        produced = solve(
            matrix, rhs, kappa=kappa, method="fista", backend=backend_name,
            max_iterations=1500,
        )
        scale = max(1.0, float(np.abs(reference.x).max()))
        assert float(np.abs(to_host(produced.x) - reference.x).max()) <= 1e-10 * scale
        assert produced.objective == pytest.approx(reference.objective, rel=1e-9)

    @pytest.mark.parametrize("backend_name", BACKEND_PARAMS)
    @given(seeds)
    @settings(max_examples=5, deadline=None)
    def test_admm_matches_numpy_reference(self, backend_name, seed):
        matrix, rhs = well_conditioned_system(seed)
        kappa = 0.1 * float(np.abs(2.0 * matrix.conj().T @ rhs).max())
        reference = solve_lasso_admm(matrix, rhs, kappa, max_iterations=1500)
        produced = solve(
            matrix, rhs, kappa=kappa, method="admm", backend=backend_name,
            max_iterations=1500,
        )
        scale = max(1.0, float(np.abs(reference.x).max()))
        assert float(np.abs(to_host(produced.x) - reference.x).max()) <= 1e-10 * scale

    @pytest.mark.parametrize("backend_name", BACKEND_PARAMS)
    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=5, deadline=None)
    def test_omp_exact_recovery_on_every_backend(self, backend_name, seed, k):
        rng = np.random.default_rng(seed)
        m, n = 24, 12
        matrix, _ = np.linalg.qr(rng.normal(size=(m, n)) + 1j * rng.normal(size=(m, n)))
        x_true = np.zeros(n, dtype=complex)
        support = rng.choice(n, size=k, replace=False)
        x_true[support] = rng.uniform(0.5, 2.0, size=k) * np.exp(
            1j * rng.uniform(0, 2 * np.pi, size=k)
        )
        rhs = matrix @ x_true
        result = solve(matrix, rhs, method="omp", backend=backend_name, sparsity=k)
        np.testing.assert_allclose(to_host(result.x), x_true, atol=1e-9)
