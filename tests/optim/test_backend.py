"""The array-backend layer: registry semantics and op-for-op parity.

Every backend promises the exact array surface the solvers consume; the
numpy implementation *is* the reference expression, so each op here is
checked against plain numpy on host data.  torch/cupy run the same
assertions through the shared ``backend`` fixture and skip cleanly when
not installed (see ``tests/optim/conftest.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import BackendError
from repro.optim.backend import (
    FLOAT32_TOLERANCES,
    FLOAT64_PARITY_TOLERANCE,
    ArrayBackend,
    NumpyBackend,
    available_backends,
    backend_names,
    backend_of,
    get_backend,
    normalize_precision,
    resolve_backend,
)


class TestRegistry:
    def test_all_three_backends_are_registered(self):
        assert backend_names() == ("numpy", "torch", "cupy")

    def test_numpy_is_always_available(self):
        assert "numpy" in available_backends()
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("tensorflow")

    def test_uninstalled_backend_is_rejected_with_available_list(self):
        missing = [n for n in backend_names() if n not in available_backends()]
        if not missing:
            pytest.skip("every registered backend is installed here")
        with pytest.raises(BackendError, match="not installed"):
            get_backend(missing[0])

    def test_instances_are_memoized_per_name_and_device(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_get_backend_passes_instances_through(self):
        instance = get_backend("numpy")
        assert get_backend(instance) is instance

    def test_backend_of_infers_numpy_for_ndarray_and_scalars(self):
        assert backend_of(np.zeros(3)).name == "numpy"
        assert backend_of([1.0, 2.0]).name == "numpy"

    def test_resolve_backend_precedence(self):
        instance = get_backend("numpy")
        assert resolve_backend(instance) is instance
        assert resolve_backend("numpy").name == "numpy"
        assert resolve_backend(None, array=np.zeros(2)).name == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_tolerance_ladder_constants(self):
        assert FLOAT64_PARITY_TOLERANCE == 1e-12
        assert set(FLOAT32_TOLERANCES) == {"solution", "objective", "parity_gate"}


class TestNormalizePrecision:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            (None, None),
            ("single", "single"),
            ("double", "double"),
            ("complex64", "single"),
            ("complex128", "double"),
            ("float32", "single"),
            ("float64", "double"),
            (np.dtype(np.complex64), "single"),
            (np.dtype(np.complex128), "double"),
        ],
    )
    def test_accepted_specs(self, spec, expected):
        assert normalize_precision(spec) == expected

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(BackendError, match="unsupported dtype"):
            normalize_precision("int32")


def _complex(rng, *shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestOpParity:
    """Each backend op against the plain-numpy reference expression."""

    def test_roundtrip_and_dtype_plumbing(self, backend, rng):
        x = _complex(rng, 4, 3)
        native = backend.asarray(x)
        assert backend.is_native(native)
        np.testing.assert_allclose(backend.to_numpy(native), x, atol=1e-14)
        assert backend.dtype_name(native) == "complex128"
        assert backend.precision_of(native) == "double"
        single = backend.asarray(x, dtype=backend.complex_dtype("single"))
        assert backend.dtype_name(single) == "complex64"
        assert backend.precision_of(single) == "single"
        assert backend.real_dtype("single") == "float32"

    def test_copy_is_independent(self, backend):
        original = backend.zeros((2, 2), "complex128")
        duplicate = backend.copy(original)
        duplicate += 1.0
        np.testing.assert_array_equal(backend.to_numpy(original), np.zeros((2, 2)))

    def test_stack_concat_moveaxis(self, backend, rng):
        parts = [_complex(rng, 3) for _ in range(4)]
        native = [backend.asarray(p) for p in parts]
        np.testing.assert_allclose(
            backend.to_numpy(backend.stack(native, axis=1)),
            np.stack(parts, axis=1),
            atol=1e-14,
        )
        blocks = [backend.asarray(_complex(rng, 2, 3)) for _ in range(3)]
        np.testing.assert_allclose(
            backend.to_numpy(backend.concat(blocks, axis=0)),
            np.concatenate([backend.to_numpy(b) for b in blocks], axis=0),
            atol=1e-14,
        )
        cube = backend.asarray(_complex(rng, 2, 3, 4))
        np.testing.assert_allclose(
            backend.to_numpy(backend.moveaxis(cube, 0, 1)),
            np.moveaxis(backend.to_numpy(cube), 0, 1),
            atol=1e-14,
        )

    def test_kron_and_conj_transpose(self, backend, rng):
        a, b = _complex(rng, 2, 3), _complex(rng, 3, 2)
        np.testing.assert_allclose(
            backend.to_numpy(backend.kron(backend.asarray(a), backend.asarray(b))),
            np.kron(a, b),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            backend.to_numpy(backend.conj_transpose(backend.asarray(a))),
            a.conj().T,
            atol=1e-14,
        )

    def test_reductions(self, backend, rng):
        x = _complex(rng, 5, 3)
        native = backend.asarray(x)
        assert backend.norm(native) == pytest.approx(np.linalg.norm(x), rel=1e-12)
        np.testing.assert_allclose(
            backend.to_numpy(backend.norms(native, axis=0)),
            np.linalg.norm(x, axis=0),
            atol=1e-12,
        )
        assert backend.abs_sum(native) == pytest.approx(np.abs(x).sum(), rel=1e-12)
        other = _complex(rng, 5, 3)
        assert backend.vdot_real(native, backend.asarray(other)) == pytest.approx(
            float(np.real(np.vdot(x, other))), rel=1e-12
        )
        magnitudes = np.abs(x).ravel()
        assert backend.argmax(backend.asarray(magnitudes)) == int(np.argmax(magnitudes))
        assert backend.isfinite_all(native)
        assert not backend.isfinite_all(backend.asarray(np.array([1.0, np.nan])))

    def test_soft_threshold_matches_reference(self, backend, rng):
        x = _complex(rng, 6, 4)
        thresholds = np.abs(rng.standard_normal((1, 4)))
        magnitude = np.abs(x)
        with np.errstate(invalid="ignore", divide="ignore"):
            expected = np.where(
                magnitude > 0,
                x * np.maximum(magnitude - thresholds, 0.0)
                / np.where(magnitude > 0, magnitude, 1.0),
                0.0,
            )
        produced = backend.soft_threshold(
            backend.asarray(x), backend.asarray(thresholds)
        )
        np.testing.assert_allclose(backend.to_numpy(produced), expected, atol=1e-13)

    def test_fused_kernels_match_their_generic_definitions(self, backend, rng):
        """The in-place overrides must equal the generic compositions —
        and must honor the clobber contract (momentum untouched)."""
        momentum = _complex(rng, 6, 4)
        gradient = _complex(rng, 6, 4)
        thresholds = np.abs(rng.standard_normal((1, 4))) * 0.3
        step2 = 0.125
        expected = ArrayBackend.prox_gradient_step(
            get_backend("numpy"), momentum, gradient.copy(), step2, thresholds
        )
        # The kernel may clobber the gradient buffer — hand it a copy so
        # the reference operands stay pristine for the momentum check.
        native_momentum = backend.asarray(momentum.copy())
        produced = backend.prox_gradient_step(
            native_momentum, backend.asarray(gradient.copy()), step2,
            backend.asarray(thresholds),
        )
        np.testing.assert_allclose(backend.to_numpy(produced), expected, atol=1e-13)
        np.testing.assert_allclose(
            backend.to_numpy(native_momentum), momentum, atol=0
        )

        candidate = _complex(rng, 6, 4)
        previous = _complex(rng, 6, 4)
        expected_momentum = candidate + 0.75 * (candidate - previous)
        combined = backend.momentum_combine(
            backend.asarray(candidate), backend.asarray(previous.copy()), 0.75
        )
        np.testing.assert_allclose(
            backend.to_numpy(combined), expected_momentum, atol=1e-13
        )

    def test_prox_gradient_step_with_zero_thresholds(self, backend, rng):
        """κ = 0 columns take the non-shrinking path; result is the bare
        gradient step (the numpy fast path must not divide by |z|)."""
        momentum = _complex(rng, 5, 3)
        gradient = _complex(rng, 5, 3)
        thresholds = np.zeros((1, 3))
        expected = momentum - 0.25 * gradient
        produced = backend.prox_gradient_step(
            backend.asarray(momentum), backend.asarray(gradient.copy()), 0.25,
            backend.asarray(thresholds),
        )
        np.testing.assert_allclose(backend.to_numpy(produced), expected, atol=1e-13)

    def test_linear_algebra(self, backend, rng):
        a = _complex(rng, 8, 4)
        gram = a.conj().T @ a + 2.0 * np.eye(4)
        b = _complex(rng, 4)
        factor = backend.cholesky(backend.asarray(gram))
        np.testing.assert_allclose(
            backend.to_numpy(backend.cholesky_solve(factor, backend.asarray(b))),
            np.linalg.solve(gram, b),
            atol=1e-10,
        )
        y = _complex(rng, 8)
        np.testing.assert_allclose(
            backend.to_numpy(backend.lstsq(backend.asarray(a), backend.asarray(y))),
            np.linalg.lstsq(a, y, rcond=None)[0],
            atol=1e-10,
        )
        assert backend.eigvalsh_max(backend.asarray(gram)) == pytest.approx(
            float(np.linalg.eigvalsh(gram).max()), rel=1e-10
        )
