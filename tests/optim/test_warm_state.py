"""Tests for the first-class warm-start state and its solve_batch hookup."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SolverError
from repro.optim import WarmStartState, solve_batch


class TestSlots:
    def test_put_get_copies_both_ways(self):
        state = WarmStartState()
        solution = np.arange(6, dtype=complex).reshape(3, 2)
        state.put("k", solution)
        solution[0, 0] = 99.0
        stored = state.get("k")
        assert stored[0, 0] == 0.0

    def test_missing_key_is_a_miss(self):
        state = WarmStartState()
        assert state.get("absent") is None
        assert (state.hits, state.misses) == (0, 1)

    def test_shape_mismatch_is_a_miss(self):
        state = WarmStartState()
        state.put("k", np.zeros((3, 2), dtype=complex))
        assert state.get("k", shape=(3, 4)) is None
        assert state.get("k", shape=(3, 2)) is not None
        assert (state.hits, state.misses) == (1, 1)

    def test_drop_clear_len_contains_nbytes(self):
        state = WarmStartState()
        state.put("a", np.zeros(4, dtype=complex))
        state.put("b", np.zeros(4, dtype=complex))
        assert len(state) == 2 and "a" in state
        assert state.nbytes == 2 * 4 * 16
        state.drop("a")
        state.drop("a")  # idempotent
        assert len(state) == 1 and "a" not in state
        state.clear()
        assert len(state) == 0

    def test_copy_is_independent_and_resets_counters(self):
        state = WarmStartState()
        state.put("k", np.ones(3, dtype=complex))
        state.get("k")
        clone = state.copy()
        assert (clone.hits, clone.misses) == (0, 0)
        clone.slots["k"][0] = 7.0
        assert state.slots["k"][0] == 1.0


class TestSerialization:
    def test_json_round_trip_is_byte_exact(self):
        state = WarmStartState()
        rng = np.random.default_rng(0)
        state.put("c0:ap-west", rng.normal(size=(5, 3)) + 1j * rng.normal(size=(5, 3)))
        state.put("single", rng.normal(size=7) + 1j * rng.normal(size=7))
        import json

        restored = WarmStartState.from_dict(json.loads(json.dumps(state.to_dict())))
        assert set(restored.slots) == set(state.slots)
        for key in state.slots:
            np.testing.assert_array_equal(restored.slots[key], state.slots[key])

    def test_from_dict_rejects_mismatched_parts(self):
        with pytest.raises(ConfigurationError):
            WarmStartState.from_dict(
                {"slots": {"k": {"shape": [2], "real": [1.0, 2.0], "imag": [1.0]}}}
            )


class TestSolveBatchCarryOver:
    @pytest.fixture()
    def problem(self, rng):
        matrix = rng.normal(size=(12, 24)) + 1j * rng.normal(size=(12, 24))
        ys = [rng.normal(size=(12, 2)) + 1j * rng.normal(size=(12, 2)) for _ in range(3)]
        return matrix, ys

    def test_keys_carry_solutions_across_batches(self, problem):
        matrix, ys = problem
        state = WarmStartState()
        keys = [f"c{i}:ap" for i in range(3)]
        first = solve_batch(
            matrix, ys, "mmv", kappa_fraction=0.2, warm_state=state, warm_keys=keys,
            max_iterations=40,
        )
        assert len(state) == 3
        assert state.misses == 3 and state.hits == 0
        second = solve_batch(
            matrix, ys, "mmv", kappa_fraction=0.2, warm_state=state, warm_keys=keys,
            max_iterations=40,
        )
        assert state.hits == 3
        # Re-solving the same problems from their own solutions stays
        # at (or refines) the solution — never degrades it.
        for a, b in zip(first.to_numpy(), second.to_numpy()):
            assert np.linalg.norm(b - a) <= 0.5 * np.linalg.norm(a) + 1e-9

    def test_empty_state_matches_no_state_exactly(self, problem):
        matrix, ys = problem
        cold = solve_batch(matrix, ys, "mmv", kappa_fraction=0.2, max_iterations=30)
        warmed = solve_batch(
            matrix, ys, "mmv", kappa_fraction=0.2, max_iterations=30,
            warm_state=WarmStartState(), warm_keys=["a", "b", "c"],
        )
        np.testing.assert_array_equal(cold.to_numpy(), warmed.to_numpy())

    def test_warm_state_validation(self, problem):
        matrix, ys = problem
        state = WarmStartState()
        with pytest.raises(SolverError):
            solve_batch(matrix, ys, "mmv", kappa_fraction=0.2, warm_keys=["a", "b", "c"])
        with pytest.raises(SolverError):
            solve_batch(
                matrix, ys, "mmv", kappa_fraction=0.2, warm_state=state, warm_keys=["a"]
            )
        with pytest.raises(SolverError):
            solve_batch(
                matrix, ys, "mmv", kappa_fraction=0.2, warm_state=state,
                warm_keys=["a", "b", "c"], x0=np.zeros((3, 24, 2), dtype=complex),
            )
        with pytest.raises(SolverError):
            solve_batch(
                matrix, [y[:, 0] for y in ys], "omp", kappa=2, warm_state=state,
                warm_keys=["a", "b", "c"],
            )
