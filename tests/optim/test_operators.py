"""Operator/dense parity for the structured dictionary layer (ISSUE 2).

The whole point of :class:`KroneckerJointOperator` is to be *invisible*
numerically: every product it computes must match the materialized
``kron(G, S̃)`` to rounding, its Lipschitz constant must bound the dense
spectral norm, and only then is routing the hot solve paths through it
safe.  Instances are hypothesis-drawn seeds (the repo's idiom: the seed
fully determines the instance, so shrinking stays meaningful).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.optim import (
    DenseOperator,
    DictionaryOperator,
    KroneckerJointOperator,
    as_operator,
    solve_lasso_fista,
    solve_mmv_fista,
)
from repro.optim.linalg import estimate_lipschitz

from tests.optim.test_fista import make_sparse_system

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def random_kronecker(seed: int, n_subcarriers=5, n_delays=7, n_antennas=3, n_angles=11):
    rng = np.random.default_rng(seed)
    temporal = rng.normal(size=(n_subcarriers, n_delays)) + 1j * rng.normal(
        size=(n_subcarriers, n_delays)
    )
    spatial = rng.normal(size=(n_antennas, n_angles)) + 1j * rng.normal(
        size=(n_antennas, n_angles)
    )
    return KroneckerJointOperator(temporal, spatial), rng


class TestKroneckerParity:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_matvec_matches_dense(self, seed):
        operator, rng = random_kronecker(seed)
        dense = operator.to_dense()
        x = rng.normal(size=operator.shape[1]) + 1j * rng.normal(size=operator.shape[1])
        np.testing.assert_allclose(operator.matvec(x), dense @ x, atol=1e-10)
        np.testing.assert_allclose(operator @ x, dense @ x, atol=1e-10)

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_rmatvec_matches_dense(self, seed):
        operator, rng = random_kronecker(seed)
        dense = operator.to_dense()
        r = rng.normal(size=operator.shape[0]) + 1j * rng.normal(size=operator.shape[0])
        np.testing.assert_allclose(operator.rmatvec(r), dense.conj().T @ r, atol=1e-10)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_snapshot_products_match_dense(self, seed):
        operator, rng = random_kronecker(seed)
        dense = operator.to_dense()
        p = 4
        x = rng.normal(size=(operator.shape[1], p)) + 1j * rng.normal(size=(operator.shape[1], p))
        r = rng.normal(size=(operator.shape[0], p)) + 1j * rng.normal(size=(operator.shape[0], p))
        np.testing.assert_allclose(operator.matvec(x), dense @ x, atol=1e-10)
        np.testing.assert_allclose(operator.rmatvec(r), dense.conj().T @ r, atol=1e-10)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_column_helpers_match_dense(self, seed):
        operator, rng = random_kronecker(seed)
        dense = operator.to_dense()
        np.testing.assert_allclose(
            operator.column_norms(), np.linalg.norm(dense, axis=0), atol=1e-10
        )
        indices = rng.choice(operator.shape[1], size=5, replace=False).tolist()
        np.testing.assert_allclose(operator.columns(indices), dense[:, indices], atol=1e-10)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_lipschitz_is_exact_spectral_norm(self, seed):
        operator, _ = random_kronecker(seed)
        dense = operator.to_dense()
        exact = float(np.linalg.norm(dense, ord=2) ** 2)
        assert operator.lipschitz() == pytest.approx(exact, rel=1e-9)
        # and therefore compatible with the (1%-inflated) power-iteration
        # estimate the dense path uses.
        assert exact <= estimate_lipschitz(dense) <= 1.05 * exact


class TestOperatorInterface:
    def test_as_operator_wraps_ndarray_and_passes_through(self, rng):
        matrix = rng.normal(size=(6, 9))
        wrapped = as_operator(matrix)
        assert isinstance(wrapped, DenseOperator)
        assert wrapped.to_dense() is matrix or np.shares_memory(wrapped.to_dense(), matrix)
        assert as_operator(wrapped) is wrapped
        assert isinstance(wrapped, DictionaryOperator)

    def test_estimate_lipschitz_identical_through_operator(self, rng):
        matrix = rng.normal(size=(10, 30)) + 1j * rng.normal(size=(10, 30))
        assert estimate_lipschitz(DenseOperator(matrix)) == estimate_lipschitz(matrix)

    def test_rejects_bad_operands(self):
        operator, _ = random_kronecker(0)
        with pytest.raises(SolverError):
            operator.matvec(np.zeros((2, 2, 2)))
        with pytest.raises(SolverError):
            operator.rmatvec(np.zeros((2, 2, 2)))
        with pytest.raises(SolverError):
            KroneckerJointOperator(np.array([1.0]), np.eye(2))
        with pytest.raises(SolverError):
            KroneckerJointOperator(np.full((2, 2), np.nan), np.eye(2))


class TestSolversThroughOperators:
    def test_fista_operator_matches_dense_solution(self, rng):
        a, y, *_ = make_sparse_system(rng)
        kappa = 0.05 * float(np.abs(2.0 * a.conj().T @ y).max())
        dense = solve_lasso_fista(a, y, kappa, max_iterations=2000, tolerance=1e-9)
        operated = solve_lasso_fista(
            DenseOperator(a), y, kappa, max_iterations=2000, tolerance=1e-9
        )
        np.testing.assert_allclose(operated.x, dense.x, atol=1e-10)

    def test_mmv_accepts_operator(self, rng):
        operator, _ = random_kronecker(3)
        y = rng.normal(size=(operator.shape[0], 3)) + 1j * rng.normal(size=(operator.shape[0], 3))
        kappa = 0.1 * float(2.0 * np.linalg.norm(operator.rmatvec(y), axis=1).max())
        # Same step size on both paths (the operator's default Lipschitz
        # is exact, the dense default is a 1%-inflated estimate; pinning
        # it makes the iterate sequences identical up to rounding).
        lipschitz = operator.lipschitz()
        from_operator = solve_mmv_fista(operator, y, kappa, max_iterations=500, lipschitz=lipschitz)
        from_dense = solve_mmv_fista(
            operator.to_dense(), y, kappa, max_iterations=500, lipschitz=lipschitz
        )
        np.testing.assert_allclose(from_operator.x, from_dense.x, atol=1e-8)


class TestBatchedProducts:
    @given(seeds, st.sampled_from([1, 7, 64]))
    @settings(max_examples=15, deadline=None)
    def test_matmul_batch_matches_dense(self, seed, batch_size):
        operator, rng = random_kronecker(seed)
        dense = operator.to_dense()
        stack = rng.normal(size=(batch_size, operator.shape[1])) + 1j * rng.normal(
            size=(batch_size, operator.shape[1])
        )
        np.testing.assert_allclose(
            operator.matmul_batch(stack), stack @ dense.T, atol=1e-10
        )
        residuals = rng.normal(size=(batch_size, operator.shape[0])) + 1j * rng.normal(
            size=(batch_size, operator.shape[0])
        )
        np.testing.assert_allclose(
            operator.rmatmul_batch(residuals), residuals @ dense.conj(), atol=1e-10
        )

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_matmul_batch_snapshot_stacks_match_dense(self, seed):
        operator, rng = random_kronecker(seed)
        dense = operator.to_dense()
        batch, p = 5, 3
        stack = rng.normal(size=(batch, operator.shape[1], p)) + 1j * rng.normal(
            size=(batch, operator.shape[1], p)
        )
        expected = np.stack([dense @ stack[b] for b in range(batch)], axis=0)
        np.testing.assert_allclose(operator.matmul_batch(stack), expected, atol=1e-10)

    def test_rejects_bad_ranks(self):
        operator, _ = random_kronecker(0)
        with pytest.raises(SolverError):
            operator.matmul_batch(np.zeros(operator.shape[1]))
        with pytest.raises(SolverError):
            operator.rmatmul_batch(np.zeros((2, 2, 2, 2)))


class TestCrossBackendOperatorParity:
    """to_backend must be numerically invisible: every product computed
    on a re-homed operator lands within 1e-10 of the numpy reference
    (torch/cupy skip cleanly when not installed)."""

    def test_kronecker_products_match_reference(self, backend, rng):
        operator, _ = random_kronecker(7)
        moved = operator.to_backend(backend)
        assert moved.backend.name == backend.name
        x = rng.normal(size=operator.shape[1]) + 1j * rng.normal(size=operator.shape[1])
        r = rng.normal(size=operator.shape[0]) + 1j * rng.normal(size=operator.shape[0])
        np.testing.assert_allclose(
            backend.to_numpy(moved.matvec(backend.asarray(x))),
            operator.matvec(x),
            atol=1e-10,
        )
        np.testing.assert_allclose(
            backend.to_numpy(moved.rmatvec(backend.asarray(r))),
            operator.rmatvec(r),
            atol=1e-10,
        )
        assert moved.lipschitz() == pytest.approx(operator.lipschitz(), rel=1e-9)

    def test_batched_products_match_reference(self, backend, rng):
        operator, _ = random_kronecker(11)
        moved = operator.to_backend(backend)
        stack = rng.normal(size=(7, operator.shape[1])) + 1j * rng.normal(
            size=(7, operator.shape[1])
        )
        np.testing.assert_allclose(
            backend.to_numpy(moved.matmul_batch(backend.asarray(stack))),
            operator.matmul_batch(stack),
            atol=1e-10,
        )

    def test_dense_operator_round_trip(self, backend, rng):
        matrix = rng.normal(size=(6, 9)) + 1j * rng.normal(size=(6, 9))
        moved = as_operator(matrix, backend=backend)
        assert isinstance(moved, DenseOperator)
        np.testing.assert_allclose(
            moved.backend.to_numpy(moved.to_dense()), matrix, atol=1e-14
        )
        x = rng.normal(size=9) + 1j * rng.normal(size=9)
        np.testing.assert_allclose(
            moved.backend.to_numpy(moved.matvec(moved.backend.asarray(x))),
            matrix @ x,
            atol=1e-10,
        )

    def test_single_precision_recast_stays_within_ladder(self, backend, rng):
        from repro.optim import FLOAT32_TOLERANCES

        operator, _ = random_kronecker(3)
        recast = operator.to_backend(backend, dtype="complex64")
        assert recast.precision == "single"
        x = rng.normal(size=operator.shape[1]) + 1j * rng.normal(size=operator.shape[1])
        reference = operator.matvec(x)
        produced = backend.to_numpy(recast.matvec(backend.asarray(x, dtype="complex64")))
        scale = max(1.0, float(np.abs(reference).max()))
        assert float(np.abs(produced - reference).max()) <= FLOAT32_TOLERANCES[
            "solution"
        ] * scale


class TestWarmStart:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_warm_start_same_objective_fewer_iterations(self, seed):
        rng = np.random.default_rng(seed)
        a, y, *_ = make_sparse_system(rng, noise=0.01)
        kappa = 0.1 * float(np.abs(2.0 * a.conj().T @ y).max())
        cold = solve_lasso_fista(a, y, kappa, max_iterations=5000, tolerance=1e-8)
        assert cold.converged
        # Perturb the measurement slightly — the nearby-problem reuse the
        # sweep drivers rely on — and compare cold vs warm on it.
        y_next = y + 0.01 * (rng.normal(size=y.size) + 1j * rng.normal(size=y.size))
        cold_next = solve_lasso_fista(a, y_next, kappa, max_iterations=5000, tolerance=1e-8)
        warm_next = solve_lasso_fista(
            a, y_next, kappa, max_iterations=5000, tolerance=1e-8, x0=cold.x
        )
        assert warm_next.objective == pytest.approx(cold_next.objective, rel=1e-4)
        assert warm_next.iterations <= cold_next.iterations

    def test_warm_start_at_solution_converges_immediately(self, rng):
        a, y, *_ = make_sparse_system(rng)
        kappa = 0.1 * float(np.abs(2.0 * a.conj().T @ y).max())
        cold = solve_lasso_fista(a, y, kappa, max_iterations=5000, tolerance=1e-10)
        rewarmed = solve_lasso_fista(
            a, y, kappa, max_iterations=5000, tolerance=1e-6, x0=cold.x
        )
        assert rewarmed.converged
        assert rewarmed.iterations <= 5

    def test_x0_shape_is_validated(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError, match="x0"):
            solve_lasso_fista(a, y, 0.1, x0=np.zeros(3))
        with pytest.raises(SolverError, match="x0"):
            solve_mmv_fista(a, np.stack([y, y], axis=1), 0.1, x0=np.zeros((3, 1)))
