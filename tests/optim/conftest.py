"""Shared backend parameterization for the cross-backend parity suites.

``BACKEND_PARAMS`` covers every *registered* backend: numpy always runs;
torch and cupy skip cleanly when their library is not installed (the
repo's hard rule — no backend import may be required to run the suite).
cupy additionally carries the ``gpu`` marker so CPU-only CI deselects it
with ``-m "not gpu"``.
"""

from __future__ import annotations

import pytest

from repro.optim.backend import available_backends, backend_names, get_backend


def backend_param(name: str):
    marks = []
    if name == "cupy":
        marks.append(pytest.mark.gpu)
    if name not in available_backends():
        marks.append(
            pytest.mark.skip(reason=f"{name} backend library is not installed")
        )
    return pytest.param(name, id=name, marks=marks)


BACKEND_PARAMS = [backend_param(name) for name in backend_names()]


@pytest.fixture(params=BACKEND_PARAMS)
def backend(request):
    """One ArrayBackend instance per registered-and-installed backend."""
    return get_backend(request.param)
