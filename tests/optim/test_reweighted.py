"""Tests for iteratively reweighted ℓ1."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim.fista import solve_lasso_fista
from repro.optim.reweighted import solve_reweighted_lasso

from tests.optim.test_fista import make_sparse_system


class TestReweighted:
    def test_recovers_support(self, rng):
        a, y, _, support = make_sparse_system(rng, noise=0.05)
        result = solve_reweighted_lasso(a, y, kappa=0.1)
        top = set(np.argsort(np.abs(result.x))[-len(support):].tolist())
        assert top == support

    def test_sharper_than_plain_lasso(self, rng):
        """Reweighting debiases: the solution is at least as sparse and
        the true coefficients less shrunk."""
        a, y, x_true, support = make_sparse_system(rng, noise=0.05)
        plain = solve_lasso_fista(a, y, kappa=0.3, max_iterations=500)
        reweighted = solve_reweighted_lasso(a, y, kappa=0.3)
        assert reweighted.sparsity(rtol=0.05) <= plain.sparsity(rtol=0.05)
        true_mass_plain = sum(abs(plain.x[i]) for i in support)
        true_mass_rw = sum(abs(reweighted.x[i]) for i in support)
        assert true_mass_rw >= true_mass_plain - 1e-9

    def test_zero_reweight_iterations_equals_lasso(self, rng):
        a, y, *_ = make_sparse_system(rng)
        plain = solve_lasso_fista(a, y, kappa=0.1, max_iterations=200)
        zero_pass = solve_reweighted_lasso(a, y, kappa=0.1, reweight_iterations=0)
        np.testing.assert_allclose(zero_pass.x, plain.x, atol=1e-9)

    def test_all_zero_first_pass_short_circuits(self, rng):
        a, y, *_ = make_sparse_system(rng)
        huge = 10 * float(np.abs(2 * a.conj().T @ y).max())
        result = solve_reweighted_lasso(a, y, kappa=huge)
        assert np.all(result.x == 0)

    def test_history_one_entry_per_pass(self, rng):
        a, y, *_ = make_sparse_system(rng)
        result = solve_reweighted_lasso(a, y, kappa=0.1, reweight_iterations=2)
        assert len(result.history) == 3  # initial + 2 reweights

    def test_rejects_bad_arguments(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            solve_reweighted_lasso(a, y, kappa=0.1, reweight_iterations=-1)
        with pytest.raises(SolverError):
            solve_reweighted_lasso(a, y, kappa=0.1, epsilon=0.0)
        with pytest.raises(SolverError):
            solve_reweighted_lasso(a, np.stack([y, y], axis=1), kappa=0.1)
