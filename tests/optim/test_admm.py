"""Tests for the ADMM LASSO solver and its cached factorization."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim.admm import CachedAdmmFactors, solve_lasso_admm
from repro.optim.fista import solve_lasso_fista

from tests.optim.test_fista import make_sparse_system


class TestAgreementWithFista:
    """Both solvers minimize the same convex objective → same minimum."""

    def test_objectives_match_noiseless(self, rng):
        a, y, *_ = make_sparse_system(rng)
        fista = solve_lasso_fista(a, y, kappa=0.05, max_iterations=3000, tolerance=1e-9)
        admm = solve_lasso_admm(a, y, kappa=0.05, max_iterations=3000, tolerance=1e-9)
        assert admm.objective == pytest.approx(fista.objective, rel=1e-3)

    def test_solutions_match_on_support(self, rng):
        a, y, _, support = make_sparse_system(rng)
        fista = solve_lasso_fista(a, y, kappa=0.1, max_iterations=3000, tolerance=1e-9)
        admm = solve_lasso_admm(a, y, kappa=0.1, max_iterations=3000, tolerance=1e-9)
        for idx in support:
            assert abs(fista.x[idx] - admm.x[idx]) < 1e-2


class TestCachedFactors:
    def test_wide_matrix_uses_inversion_lemma(self, rng):
        a = rng.standard_normal((6, 30)) + 1j * rng.standard_normal((6, 30))
        factors = CachedAdmmFactors(a, rho=1.0)
        assert factors.wide
        q = rng.standard_normal(30) + 1j * rng.standard_normal(30)
        direct = np.linalg.solve(a.conj().T @ a + np.eye(30), q)
        np.testing.assert_allclose(factors.solve(q), direct, rtol=1e-8, atol=1e-10)

    def test_tall_matrix_direct_factorization(self, rng):
        a = rng.standard_normal((30, 6))
        factors = CachedAdmmFactors(a, rho=2.0)
        assert not factors.wide
        q = rng.standard_normal(6)
        direct = np.linalg.solve(a.T @ a + 2.0 * np.eye(6), q)
        np.testing.assert_allclose(factors.solve(q), direct, rtol=1e-8)

    def test_reuse_across_rhs(self, rng):
        a, y, *_ = make_sparse_system(rng)
        factors = CachedAdmmFactors(a, rho=1.0)
        first = solve_lasso_admm(a, y, kappa=0.05, factors=factors)
        second = solve_lasso_admm(a, 2 * y, kappa=0.05, factors=factors)
        assert first.objective != second.objective  # genuinely different solves

    def test_mismatched_factors_rejected(self, rng):
        a, y, *_ = make_sparse_system(rng)
        other = CachedAdmmFactors(a, rho=3.0)
        with pytest.raises(SolverError, match="different"):
            solve_lasso_admm(a, y, kappa=0.05, rho=1.0, factors=other)

    def test_rejects_nonpositive_rho(self, rng):
        a, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            CachedAdmmFactors(a, rho=0.0)

    def test_reuse_across_kappa(self, rng):
        """Regression (ISSUE 2): one factorization serves every κ.

        The factorization depends on (A, ρ) only; changing κ must not
        require (or silently trigger) a refactor.  A two-orders-of-
        magnitude κ spread through the *same* factors object must still
        land on each κ's own minimizer (cross-checked against FISTA).
        """
        a, y, *_ = make_sparse_system(rng)
        factors = CachedAdmmFactors(a, rho=1.0)
        for kappa in (0.05, 5.0):
            admm = solve_lasso_admm(
                a, y, kappa=kappa, factors=factors, max_iterations=3000, tolerance=1e-9
            )
            fista = solve_lasso_fista(a, y, kappa=kappa, max_iterations=3000, tolerance=1e-9)
            assert admm.objective == pytest.approx(fista.objective, rel=1e-3)

    def test_dtype_recast_factors_never_serve_the_original(self, rng):
        """Regression (ISSUE 6): the cache key must carry backend, device,
        and dtype, not just ``(A, ρ)``.  Factors built over the *same*
        matrix object but recast to complex64 are numerically different;
        reusing them for the float64 dictionary silently degraded every
        subsequent solve before the key was widened."""
        a, y, *_ = make_sparse_system(rng)
        single = CachedAdmmFactors(a, rho=1.0, dtype="complex64")
        assert single.key[2] == "complex64"
        assert not single.matches(a)
        with pytest.raises(SolverError, match="different"):
            solve_lasso_admm(a, y, kappa=0.05, rho=1.0, factors=single)

    def test_key_exposes_backend_device_dtype_rho(self, rng):
        a, *_ = make_sparse_system(rng)
        factors = CachedAdmmFactors(a, rho=2.0)
        assert factors.key == ("numpy", "cpu", "complex128", 2.0)
        assert factors.matches(a)

    def test_dense_operator_wrapper_shares_factors_with_its_array(self, rng):
        """solve_batch wraps the caller's matrix in a DenseOperator; the
        wrapper and the raw array must be interchangeable for reuse."""
        from repro.optim.operators import DenseOperator

        a, y, *_ = make_sparse_system(rng)
        factors = CachedAdmmFactors(a, rho=1.0)
        assert factors.matches(DenseOperator(a))
        result = solve_lasso_admm(DenseOperator(a), y, kappa=0.05, factors=factors)
        assert result.iterations >= 1

    def test_factors_accept_default_rho_solve(self, rng):
        """Factors built at the default ρ=1 work with an unspecified rho."""
        a, y, *_ = make_sparse_system(rng)
        factors = CachedAdmmFactors(a, rho=1.0)
        result = solve_lasso_admm(a, y, kappa=0.1, factors=factors)
        assert result.iterations >= 1


class TestValidation:
    def test_rejects_negative_kappa(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            solve_lasso_admm(a, y, kappa=-0.5)

    def test_rejects_matrix_rhs(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            solve_lasso_admm(a, np.stack([y, y], axis=1), kappa=0.1)

    def test_history_tracking(self, rng):
        a, y, *_ = make_sparse_system(rng)
        result = solve_lasso_admm(a, y, kappa=0.1, max_iterations=50, tolerance=0.0,
                                  track_history=True)
        assert len(result.history) == 50
        assert result.history[-1] <= result.history[0]
