"""Unit and property tests for repro.optim.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import SolverError
from repro.optim.linalg import (
    estimate_lipschitz,
    row_soft_threshold,
    soft_threshold,
    validate_system,
)

finite_complex = st.complex_numbers(
    min_magnitude=0.0, max_magnitude=1e6, allow_nan=False, allow_infinity=False
)


class TestSoftThreshold:
    def test_zero_threshold_is_identity(self):
        x = np.array([1 + 1j, -2.0, 0.5j])
        np.testing.assert_allclose(soft_threshold(x, 0.0), x)

    def test_kills_small_entries(self):
        x = np.array([0.1 + 0.0j, 1.0 + 0.0j])
        result = soft_threshold(x, 0.5)
        assert result[0] == 0.0
        assert result[1] == pytest.approx(0.5)

    def test_preserves_phase(self):
        x = np.array([2.0 * np.exp(1j * 0.7)])
        result = soft_threshold(x, 0.5)
        assert np.angle(result[0]) == pytest.approx(0.7)
        assert abs(result[0]) == pytest.approx(1.5)

    def test_real_input_matches_textbook_formula(self):
        x = np.array([-3.0, -0.2, 0.0, 0.2, 3.0])
        expected = np.array([-2.5, 0.0, 0.0, 0.0, 2.5])
        np.testing.assert_allclose(soft_threshold(x, 0.5).real, expected, atol=1e-12)

    def test_negative_threshold_rejected(self):
        with pytest.raises(SolverError):
            soft_threshold(np.array([1.0]), -0.1)

    @given(arrays(np.complex128, st.integers(1, 20), elements=finite_complex),
           st.floats(0, 10, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_magnitude_shrinks_by_at_most_threshold(self, x, threshold):
        result = soft_threshold(x, threshold)
        # |result| = max(|x| - t, 0) exactly.
        np.testing.assert_allclose(
            np.abs(result), np.maximum(np.abs(x) - threshold, 0.0), rtol=1e-9, atol=1e-9
        )

    @given(arrays(np.complex128, st.integers(1, 20), elements=finite_complex),
           st.floats(0, 10, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_nonexpansive(self, x, threshold):
        """Proximal operators are 1-Lipschitz; check vs the zero vector."""
        result = soft_threshold(x, threshold)
        assert np.linalg.norm(result) <= np.linalg.norm(x) + 1e-9


class TestRowSoftThreshold:
    def test_zeroes_weak_rows_entirely(self):
        x = np.array([[0.1, 0.1], [3.0, 4.0]], dtype=complex)
        result = row_soft_threshold(x, 1.0)
        assert np.all(result[0] == 0)
        assert np.linalg.norm(result[1]) == pytest.approx(4.0)  # 5 − 1

    def test_preserves_row_direction(self):
        x = np.array([[3.0, 4.0]], dtype=complex)
        result = row_soft_threshold(x, 1.0)
        np.testing.assert_allclose(result[0] / np.linalg.norm(result[0]), x[0] / 5.0)

    def test_requires_2d(self):
        with pytest.raises(SolverError):
            row_soft_threshold(np.array([1.0, 2.0]), 0.1)

    def test_negative_threshold_rejected(self):
        with pytest.raises(SolverError):
            row_soft_threshold(np.ones((2, 2)), -1.0)

    def test_single_column_matches_scalar_soft_threshold(self):
        x = np.array([[1.5 + 0j], [0.3 + 0j], [-2.0 + 0j]])
        grouped = row_soft_threshold(x, 0.5)[:, 0]
        scalar = soft_threshold(x[:, 0], 0.5)
        np.testing.assert_allclose(grouped, scalar)


class TestEstimateLipschitz:
    def test_matches_exact_norm_on_small_matrix(self, rng):
        a = rng.standard_normal((10, 25)) + 1j * rng.standard_normal((10, 25))
        exact = np.linalg.norm(a, 2) ** 2
        estimate = estimate_lipschitz(a, iterations=200)
        assert exact <= estimate <= 1.05 * exact

    def test_zero_matrix(self):
        assert estimate_lipschitz(np.zeros((4, 6))) == 0.0

    def test_rejects_non_matrix(self):
        with pytest.raises(SolverError):
            estimate_lipschitz(np.zeros(5))

    def test_deterministic_given_seed(self, rng):
        a = rng.standard_normal((8, 12))
        assert estimate_lipschitz(a, seed=3) == estimate_lipschitz(a, seed=3)


class TestValidateSystem:
    def test_accepts_consistent_system(self, rng):
        validate_system(rng.standard_normal((5, 9)), rng.standard_normal(5))

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(SolverError, match="incompatible"):
            validate_system(rng.standard_normal((5, 9)), rng.standard_normal(6))

    def test_rejects_nan_dictionary(self):
        bad = np.full((3, 4), np.nan)
        with pytest.raises(SolverError, match="non-finite"):
            validate_system(bad, np.zeros(3))

    def test_rejects_inf_measurement(self):
        with pytest.raises(SolverError, match="non-finite"):
            validate_system(np.ones((3, 4)), np.array([1.0, np.inf, 0.0]))

    def test_rejects_3d_rhs(self):
        with pytest.raises(SolverError):
            validate_system(np.ones((3, 4)), np.ones((3, 2, 2)))
