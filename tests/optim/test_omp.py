"""Tests for orthogonal matching pursuit."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim.omp import solve_omp

from tests.optim.test_fista import make_sparse_system


class TestExactRecovery:
    def test_noiseless_exact_recovery(self, rng):
        a, y, x_true, support = make_sparse_system(rng, k=3)
        result = solve_omp(a, y, sparsity=3)
        assert set(result.support.tolist()) == support
        np.testing.assert_allclose(result.x, x_true, atol=1e-8)

    def test_residual_zero_after_exact_recovery(self, rng):
        a, y, *_ = make_sparse_system(rng, k=2)
        result = solve_omp(a, y, sparsity=2)
        assert result.objective < 1e-16

    def test_residual_tolerance_stops_early(self, rng):
        a, y, *_ = make_sparse_system(rng, k=2)
        result = solve_omp(a, y, sparsity=10, tolerance=1e-8)
        assert result.sparsity() <= 3

    def test_retired_residual_tolerance_spelling_raises(self, rng):
        """The PR 2 shim is gone: the old kwarg fails with a pointer."""
        a, y, *_ = make_sparse_system(rng, k=2)
        with pytest.raises(TypeError, match="use 'tolerance' instead"):
            solve_omp(a, y, sparsity=10, residual_tolerance=1e-8)

    def test_unknown_kwarg_still_plain_type_error(self, rng):
        a, y, *_ = make_sparse_system(rng, k=2)
        with pytest.raises(TypeError, match="unexpected keyword argument 'bogus'"):
            solve_omp(a, y, sparsity=10, bogus=1)

    def test_zero_measurement_selects_nothing(self, rng):
        a, *_ = make_sparse_system(rng)
        result = solve_omp(a, np.zeros(a.shape[0], dtype=complex), sparsity=3)
        assert result.sparsity() == 0


class TestModelOrderSensitivity:
    """OMP *requires* the model order K — the weakness §III-A contrasts."""

    def test_underestimated_sparsity_misses_paths(self, rng):
        a, y, _, support = make_sparse_system(rng, k=4)
        result = solve_omp(a, y, sparsity=2)
        assert len(result.support) == 2
        assert set(result.support.tolist()) < support or not set(
            result.support.tolist()
        ).issuperset(support)

    def test_overestimated_sparsity_adds_spurious_atoms_under_noise(self, rng):
        a, y, _, support = make_sparse_system(rng, k=2, noise=0.3)
        result = solve_omp(a, y, sparsity=8)
        assert len(result.support) > len(support)


class TestValidation:
    def test_rejects_zero_sparsity(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            solve_omp(a, y, sparsity=0)

    def test_rejects_matrix_rhs(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            solve_omp(a, np.stack([y, y], axis=1), sparsity=2)

    def test_sparsity_capped_by_dimensions(self, rng):
        a, y, *_ = make_sparse_system(rng, m=10, n=20)
        result = solve_omp(a, y, sparsity=50)
        assert result.sparsity() <= 10

    def test_zero_columns_never_selected(self, rng):
        a, y, *_ = make_sparse_system(rng)
        a = a.copy()
        a[:, 0] = 0.0
        result = solve_omp(a, y, sparsity=5)
        assert 0 not in result.support
