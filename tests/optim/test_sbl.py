"""Tests for the sparse Bayesian learning solver."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim.sbl import solve_sbl

from tests.optim.test_fista import make_sparse_system
from tests.optim.test_mmv import make_mmv_system


class TestSingleSnapshot:
    def test_recovers_support(self, rng):
        a, y, _, support = make_sparse_system(rng, noise=0.05)
        result = solve_sbl(a, y)
        top = set(np.argsort(np.abs(result.x))[-len(support):].tolist())
        assert top == support

    def test_no_regularization_parameter_needed(self, rng):
        """ARD prunes automatically — the tuning-free selling point.

        A residual haze of near-zero atoms is expected when the noise
        variance is co-estimated; the *significant* atoms must stay few.
        """
        a, y, _, support = make_sparse_system(rng, noise=0.1)
        result = solve_sbl(a, y)
        assert result.sparsity(rtol=0.1) <= 2 * len(support)

    def test_known_noise_variance_accepted(self, rng):
        a, y, _, support = make_sparse_system(rng, noise=0.1)
        result = solve_sbl(a, y, noise_variance=0.01)
        top = set(np.argsort(np.abs(result.x))[-len(support):].tolist())
        assert top == support

    def test_zero_measurement_gives_zero(self, rng):
        a, *_ = make_sparse_system(rng)
        result = solve_sbl(a, np.zeros(a.shape[0], dtype=complex))
        assert np.all(result.x == 0)
        assert result.converged

    def test_posterior_mean_fits_data(self, rng):
        a, y, *_ = make_sparse_system(rng, noise=0.02)
        result = solve_sbl(a, y, max_iterations=100)
        assert np.linalg.norm(a @ result.x - y) < 0.2 * np.linalg.norm(y)


class TestMultiSnapshot:
    def test_recovers_joint_support(self, rng):
        a, y, _, support = make_mmv_system(rng, noise=0.05)
        result = solve_sbl(a, y)
        row_norms = np.linalg.norm(result.x, axis=1)
        top = set(np.argsort(row_norms)[-len(support):].tolist())
        assert top == support

    def test_output_shape_matches_input(self, rng):
        a, y, *_ = make_mmv_system(rng, p=4)
        result = solve_sbl(a, y)
        assert result.x.shape == (a.shape[1], 4)


class TestValidation:
    def test_rejects_shape_mismatch(self, rng):
        a, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            solve_sbl(a, np.zeros(a.shape[0] + 1))

    def test_rejects_bad_noise_variance(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            solve_sbl(a, y, noise_variance=-1.0)

    def test_rejects_empty_snapshots(self, rng):
        a, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            solve_sbl(a, np.zeros((a.shape[0], 0)))
