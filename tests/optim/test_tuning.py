"""Tests for the κ-selection heuristics."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim.fista import solve_lasso_fista
from repro.optim.tuning import noise_scaled_kappa, residual_kappa

from tests.optim.test_fista import make_sparse_system


class TestResidualKappa:
    def test_fraction_one_would_zero_the_solution(self, rng):
        """κ at fraction→1 approaches the smallest κ with x = 0 optimal."""
        a, y, *_ = make_sparse_system(rng)
        boundary = residual_kappa(a, y, fraction=0.999)
        result = solve_lasso_fista(a, y, kappa=boundary * 1.1, max_iterations=300)
        assert np.all(np.abs(result.x) < 1e-6)

    def test_small_fraction_keeps_solution_nonzero(self, rng):
        a, y, *_ = make_sparse_system(rng)
        kappa = residual_kappa(a, y, fraction=0.05)
        result = solve_lasso_fista(a, y, kappa=kappa, max_iterations=300)
        assert result.sparsity() > 0

    def test_scales_linearly_with_measurement(self, rng):
        a, y, *_ = make_sparse_system(rng)
        assert residual_kappa(a, 3 * y) == pytest.approx(3 * residual_kappa(a, y))

    def test_rejects_bad_fraction(self, rng):
        a, y, *_ = make_sparse_system(rng)
        for fraction in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(SolverError):
                residual_kappa(a, y, fraction=fraction)

    def test_rejects_orthogonal_measurement(self, rng):
        a = np.eye(4)[:, :2]
        y = np.array([0.0, 0.0, 1.0, 1.0])
        with pytest.raises(SolverError, match="orthogonal"):
            residual_kappa(a, y)


class TestNoiseScaledKappa:
    def test_scales_linearly_with_noise(self, rng):
        a, *_ = make_sparse_system(rng)
        assert noise_scaled_kappa(a, 0.2) == pytest.approx(2 * noise_scaled_kappa(a, 0.1))

    def test_grows_with_dictionary_size(self, rng):
        a_small = np.ones((4, 10))
        a_large = np.ones((4, 10000))
        assert noise_scaled_kappa(a_large, 1.0) > noise_scaled_kappa(a_small, 1.0)

    def test_zero_noise_gives_zero(self, rng):
        a, *_ = make_sparse_system(rng)
        assert noise_scaled_kappa(a, 0.0) == 0.0

    def test_suppresses_noise_atoms(self, rng):
        """With κ from the rule, a pure-noise measurement yields ~nothing."""
        a, *_ = make_sparse_system(rng, m=40, n=160)
        sigma = 0.5
        noise = sigma / np.sqrt(2) * (rng.standard_normal(40) + 1j * rng.standard_normal(40))
        kappa = noise_scaled_kappa(a, sigma, confidence=1.5)
        result = solve_lasso_fista(a, noise, kappa=kappa, max_iterations=300)
        assert result.sparsity() <= 2

    def test_rejects_negative_noise(self, rng):
        a, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError):
            noise_scaled_kappa(a, -1.0)

    def test_rejects_empty_dictionary(self):
        with pytest.raises(SolverError):
            noise_scaled_kappa(np.zeros((3, 0)), 1.0)
