"""Tests for outlier-augmented sparse recovery (repro.optim.robust)."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim import (
    DenseOperator,
    KroneckerJointOperator,
    OutlierAugmentedOperator,
    RowWeightedOperator,
    robust_lambda,
    robust_objective,
    robust_penalty_weights,
    solve_batch,
    solve_huber_irls,
    solve_lasso_fista,
    solve_mmv_fista,
    solve_robust_lasso,
    solve_robust_mmv,
)


def make_corrupted_system(rng, m=60, n=120, k=4, n_outliers=6, noise=0.01, spike=3.0):
    """Gaussian dictionary, k-sparse truth, gross spikes on a few rows."""
    a = (rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))) / np.sqrt(m)
    support = rng.choice(n, size=k, replace=False)
    x_true = np.zeros(n, dtype=complex)
    x_true[support] = rng.standard_normal(k) + 1j * rng.standard_normal(k) + 2.0
    y_clean = a @ x_true + noise * (rng.standard_normal(m) + 1j * rng.standard_normal(m))
    e_true = np.zeros(m, dtype=complex)
    bad = rng.choice(m, size=n_outliers, replace=False)
    e_true[bad] = spike * (rng.standard_normal(n_outliers) + 1j * rng.standard_normal(n_outliers))
    return a, y_clean, y_clean + e_true, x_true, e_true


class TestOutlierAugmentedOperator:
    def test_matches_dense_augmented_matrix(self, rng):
        a = rng.standard_normal((12, 20)) + 1j * rng.standard_normal((12, 20))
        op = OutlierAugmentedOperator(DenseOperator(a), outlier_scale=0.7)
        dense = np.concatenate([a, 0.7 * np.eye(12)], axis=1)
        z = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        r = rng.standard_normal(12) + 1j * rng.standard_normal(12)
        np.testing.assert_allclose(op.matvec(z), dense @ z, rtol=1e-12)
        np.testing.assert_allclose(op.rmatvec(r), dense.conj().T @ r, rtol=1e-12)
        np.testing.assert_allclose(op.to_dense(), dense, rtol=1e-12)

    def test_matvec_accepts_2d_blocks(self, rng):
        a = rng.standard_normal((10, 15)) + 1j * rng.standard_normal((10, 15))
        op = OutlierAugmentedOperator(DenseOperator(a))
        dense = op.to_dense()
        z = rng.standard_normal((25, 3)) + 1j * rng.standard_normal((25, 3))
        np.testing.assert_allclose(op.matvec(z), dense @ z, rtol=1e-12)

    def test_lipschitz_is_exact(self, rng):
        a = rng.standard_normal((10, 18)) + 1j * rng.standard_normal((10, 18))
        op = OutlierAugmentedOperator(DenseOperator(a), outlier_scale=1.3)
        dense = op.to_dense()
        exact = np.linalg.norm(dense.conj().T @ dense, ord=2)
        # base.lipschitz() is itself an estimate (power iteration) but the
        # augmentation adds exactly c²; allow the base estimate's slack.
        assert op.lipschitz() >= exact * (1 - 1e-6)
        assert op.lipschitz() <= exact * 1.10

    def test_kronecker_base_keeps_structure(self, rng):
        steering = np.exp(1j * rng.uniform(0, 2 * np.pi, (3, 11)))
        ramp = np.exp(1j * rng.uniform(0, 2 * np.pi, (8, 7)))
        base = KroneckerJointOperator(steering, ramp)
        op = OutlierAugmentedOperator(base)
        assert op.shape == (24, 77 + 24)
        z = rng.standard_normal(101) + 1j * rng.standard_normal(101)
        np.testing.assert_allclose(op.matvec(z), op.to_dense() @ z, rtol=1e-10)

    def test_columns_and_norms(self, rng):
        a = rng.standard_normal((6, 9)) + 1j * rng.standard_normal((6, 9))
        op = OutlierAugmentedOperator(DenseOperator(a), outlier_scale=2.0)
        dense = op.to_dense()
        np.testing.assert_allclose(
            op.columns([0, 9, 14]), dense[:, [0, 9, 14]], rtol=1e-12
        )
        np.testing.assert_allclose(
            op.column_norms(), np.linalg.norm(dense, axis=0), rtol=1e-12
        )

    def test_split_rescales_error_block(self, rng):
        a = rng.standard_normal((5, 8)) + 1j * rng.standard_normal((5, 8))
        op = OutlierAugmentedOperator(DenseOperator(a), outlier_scale=0.5)
        z = rng.standard_normal(13) + 1j * rng.standard_normal(13)
        x, e = op.split(z)
        np.testing.assert_allclose(x, z[:8])
        np.testing.assert_allclose(e, 0.5 * z[8:])

    def test_rejects_bad_scale(self, rng):
        a = rng.standard_normal((4, 4))
        with pytest.raises(SolverError):
            OutlierAugmentedOperator(DenseOperator(a), outlier_scale=0.0)


class TestRowWeightedOperator:
    def test_matches_dense_row_scaling(self, rng):
        a = rng.standard_normal((9, 14)) + 1j * rng.standard_normal((9, 14))
        w = rng.uniform(0.1, 1.0, 9)
        op = RowWeightedOperator(DenseOperator(a), w)
        dense = w[:, None] * a
        x = rng.standard_normal(14) + 1j * rng.standard_normal(14)
        r = rng.standard_normal(9) + 1j * rng.standard_normal(9)
        np.testing.assert_allclose(op.matvec(x), dense @ x, rtol=1e-12)
        np.testing.assert_allclose(op.rmatvec(r), dense.conj().T @ r, rtol=1e-12)
        np.testing.assert_allclose(op.to_dense(), dense, rtol=1e-12)

    def test_lipschitz_upper_bounds_true_norm(self, rng):
        a = rng.standard_normal((9, 14)) + 1j * rng.standard_normal((9, 14))
        w = rng.uniform(0.1, 1.0, 9)
        op = RowWeightedOperator(DenseOperator(a), w)
        dense = op.to_dense()
        exact = np.linalg.norm(dense.conj().T @ dense, ord=2)
        assert op.lipschitz() >= exact * (1 - 1e-6)

    def test_rejects_wrong_shape(self, rng):
        a = rng.standard_normal((4, 5))
        with pytest.raises(SolverError):
            RowWeightedOperator(DenseOperator(a), np.ones(3))


class TestPenaltyWeights:
    def test_weights_vector_layout(self):
        w = robust_penalty_weights(3, 2, kappa=0.5, lambda_outlier=1.5)
        np.testing.assert_allclose(w, [1.0, 1.0, 1.0, 3.0, 3.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(SolverError):
            robust_penalty_weights(3, 2, kappa=0.0, lambda_outlier=1.0)
        with pytest.raises(SolverError):
            robust_penalty_weights(3, 2, kappa=1.0, lambda_outlier=-1.0)

    def test_weighted_fista_matches_scaled_problem(self, rng):
        # κ·Σ wⱼ|xⱼ| over A equals uniform κ over A·diag(1/w) after the
        # substitution x → diag(w)·x; minimizers map accordingly.
        a = rng.standard_normal((20, 30)) + 1j * rng.standard_normal((20, 30))
        y = a @ (rng.standard_normal(30) * (rng.random(30) < 0.2))
        w = rng.uniform(0.5, 2.0, 30)
        weighted = solve_lasso_fista(
            a, y, kappa=0.1, penalty_weights=w, max_iterations=3000, tolerance=1e-12
        )
        scaled = solve_lasso_fista(
            a / w[None, :], y, kappa=0.1, max_iterations=3000, tolerance=1e-12
        )
        np.testing.assert_allclose(weighted.x, scaled.x / w, atol=1e-5)

    def test_fista_rejects_bad_weights(self, rng):
        a = rng.standard_normal((6, 8))
        y = rng.standard_normal(6)
        with pytest.raises(SolverError):
            solve_lasso_fista(a, y, kappa=0.1, penalty_weights=np.ones(5))
        with pytest.raises(SolverError):
            solve_lasso_fista(a, y, kappa=0.1, penalty_weights=-np.ones(8))

    def test_mmv_weighted_prox_matches_unweighted_at_unit_weights(self, rng):
        a = rng.standard_normal((15, 25)) + 1j * rng.standard_normal((15, 25))
        y = rng.standard_normal((15, 3)) + 1j * rng.standard_normal((15, 3))
        plain = solve_mmv_fista(a, y, kappa=0.2, max_iterations=300)
        unit = solve_mmv_fista(
            a, y, kappa=0.2, penalty_weights=np.ones(25), max_iterations=300
        )
        np.testing.assert_allclose(plain.x, unit.x, atol=1e-10)


class TestRobustLasso:
    def test_absorbs_gross_corruption(self, rng):
        a, y_clean, y_corr, x_true, e_true = make_corrupted_system(rng)
        plain = solve_lasso_fista(a, y_corr, kappa=0.05, max_iterations=800)
        robust = solve_robust_lasso(a, y_corr, kappa=0.05, max_iterations=800)
        clean = solve_lasso_fista(a, y_clean, kappa=0.05, max_iterations=800)
        clean_err = np.linalg.norm(clean.x - x_true)
        assert np.linalg.norm(plain.x - x_true) > 10 * clean_err
        assert np.linalg.norm(robust.x - x_true) < 10 * clean_err
        # The recovered corruption tracks the injected spikes.
        assert np.linalg.norm(robust.e - e_true) < 0.2 * np.linalg.norm(e_true)

    def test_outlier_fraction_separates_clean_from_corrupted(self, rng):
        a, y_clean, y_corr, *_ = make_corrupted_system(rng)
        corrupted = solve_robust_lasso(a, y_corr, kappa=0.05, max_iterations=600)
        clean = solve_robust_lasso(a, y_clean, kappa=0.05, max_iterations=600)
        assert corrupted.outlier_fraction > 0.3
        assert clean.outlier_fraction < 0.01

    def test_huge_lambda_recovers_plain_lasso(self, rng):
        # Both runs must reach the (shared) minimizer: the augmented
        # operator has a larger Lipschitz constant, so finite-iteration
        # trajectories differ even though the minimizers coincide.
        a, _, y_corr, *_ = make_corrupted_system(rng)
        lam = robust_lambda(y_corr, fraction=1.0)
        robust = solve_robust_lasso(
            a, y_corr, kappa=0.05, lambda_outlier=lam,
            max_iterations=5000, tolerance=1e-10,
        )
        plain = solve_lasso_fista(
            a, y_corr, kappa=0.05, max_iterations=5000, tolerance=1e-10
        )
        assert np.all(robust.e == 0)
        # The overcomplete system leaves flat directions, so compare the
        # (unique) objective value plus a loose coefficient check.
        assert robust.objective == pytest.approx(plain.objective, rel=1e-6)
        np.testing.assert_allclose(robust.x, plain.x, atol=1e-2)

    def test_warm_start_reaches_same_solution_faster(self, rng):
        a, _, y_corr, *_ = make_corrupted_system(rng)
        cold = solve_robust_lasso(
            a, y_corr, kappa=0.05, max_iterations=2000, tolerance=1e-8
        )
        warm = solve_robust_lasso(
            a, y_corr, kappa=0.05, x0=cold.x, e0=cold.e,
            max_iterations=2000, tolerance=1e-8,
        )
        assert warm.iterations < cold.iterations
        np.testing.assert_allclose(warm.x, cold.x, atol=1e-4)

    def test_objective_matches_split_form(self, rng):
        a, _, y_corr, *_ = make_corrupted_system(rng)
        result = solve_robust_lasso(a, y_corr, kappa=0.05, max_iterations=300)
        expected = robust_objective(a, y_corr, result.x, result.e, 0.05, 0.1)
        assert result.objective == pytest.approx(expected, rel=1e-9)

    def test_rejects_nonpositive_kappa(self, rng):
        a, _, y_corr, *_ = make_corrupted_system(rng)
        with pytest.raises(SolverError):
            solve_robust_lasso(a, y_corr, kappa=0.0)
        with pytest.raises(SolverError):
            solve_robust_lasso(a, y_corr, kappa=0.05, lambda_outlier=-1.0)

    def test_robust_lambda_critical_value(self, rng):
        y = rng.standard_normal(10) + 1j * rng.standard_normal(10)
        assert robust_lambda(y, fraction=1.0) == pytest.approx(2 * np.max(np.abs(y)))
        with pytest.raises(SolverError):
            robust_lambda(np.zeros(4))
        with pytest.raises(SolverError):
            robust_lambda(y, fraction=0.0)


class TestRobustMmv:
    def test_absorbs_row_corruption(self, rng):
        a, *_ = make_corrupted_system(rng)
        n = a.shape[1]
        support = rng.choice(n, size=4, replace=False)
        x_true = np.zeros((n, 3), dtype=complex)
        x_true[support, :] = rng.standard_normal((4, 3)) + 1j * rng.standard_normal((4, 3))
        y = a @ x_true + 0.01 * (rng.standard_normal((60, 3)) + 1j * rng.standard_normal((60, 3)))
        e_true = np.zeros((60, 3), dtype=complex)
        bad = rng.choice(60, size=6, replace=False)
        e_true[bad, :] = 3.0 * (rng.standard_normal((6, 3)) + 1j * rng.standard_normal((6, 3)))
        plain = solve_mmv_fista(a, y + e_true, kappa=0.05, max_iterations=800)
        robust = solve_robust_mmv(a, y + e_true, kappa=0.05, max_iterations=800)
        assert np.linalg.norm(robust.x - x_true) < 0.2 * np.linalg.norm(plain.x - x_true)
        assert robust.outlier_fraction > 0.3
        clean = solve_robust_mmv(a, y, kappa=0.05, max_iterations=800)
        assert clean.outlier_fraction < 0.01

    def test_rejects_vector_rhs(self, rng):
        a, _, y_corr, *_ = make_corrupted_system(rng)
        with pytest.raises(SolverError):
            solve_robust_mmv(a, y_corr, kappa=0.05)


class TestHuberIrls:
    def test_downweights_outliers_on_tall_system(self, rng):
        m, n = 80, 40
        a = (rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))) / np.sqrt(m)
        x_true = np.zeros(n, dtype=complex)
        x_true[[3, 17]] = [2.0, 1.0 - 1.0j]
        y = a @ x_true + 0.01 * (rng.standard_normal(m) + 1j * rng.standard_normal(m))
        e_true = np.zeros(m, dtype=complex)
        bad = rng.choice(m, size=8, replace=False)
        e_true[bad] = 4.0 * (rng.standard_normal(8) + 1j * rng.standard_normal(8))
        plain = solve_lasso_fista(a, y + e_true, kappa=0.05, max_iterations=500)
        huber = solve_huber_irls(a, y + e_true, kappa=0.05, max_iterations=500)
        assert np.linalg.norm(huber.x - x_true) < 0.6 * np.linalg.norm(plain.x - x_true)
        assert huber.outlier_fraction > 0.1
        # e is oriented so Ãx + e ≈ y: nonzero e entries align with spikes.
        assert np.argmax(np.abs(huber.e)) in set(bad.tolist())

    def test_clean_system_keeps_unit_weights(self, rng):
        m, n = 40, 20
        a = (rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))) / np.sqrt(m)
        x_true = np.zeros(n, dtype=complex)
        x_true[5] = 2.0
        y = a @ x_true
        huber = solve_huber_irls(a, y, kappa=0.02, max_iterations=500)
        plain = solve_lasso_fista(a, y, kappa=0.02, max_iterations=500)
        np.testing.assert_allclose(huber.x, plain.x, atol=1e-3)

    def test_rejects_bad_iterations(self, rng):
        a = rng.standard_normal((6, 4))
        with pytest.raises(SolverError):
            solve_huber_irls(a, np.ones(6), kappa=0.1, irls_iterations=0)


class TestBatchedRobust:
    def test_lockstep_batch_matches_sequential(self, rng):
        a, y_clean, y_corr, *_ = make_corrupted_system(rng)
        m, n = a.shape
        aug = OutlierAugmentedOperator(DenseOperator(a))
        weights = robust_penalty_weights(n, m, kappa=0.05, lambda_outlier=0.1)
        batch = solve_batch(
            aug,
            np.stack([y_corr, y_clean], axis=0),
            method="fista",
            kappa=0.05,
            penalty_weights=weights,
            max_iterations=400,
        )
        for row, y in zip(batch.x, (y_corr, y_clean)):
            sequential = solve_lasso_fista(
                aug, y, kappa=0.05, penalty_weights=weights, max_iterations=400
            )
            np.testing.assert_allclose(row, sequential.x, atol=1e-8)

    def test_batch_parity_gate_passes_with_weights(self, rng):
        a, y_clean, y_corr, *_ = make_corrupted_system(rng, m=30, n=50)
        aug = OutlierAugmentedOperator(DenseOperator(a))
        weights = robust_penalty_weights(50, 30, kappa=0.05, lambda_outlier=0.1)
        batch = solve_batch(
            aug,
            np.stack([y_corr, y_clean], axis=0),
            method="fista",
            kappa=0.05,
            penalty_weights=weights,
            max_iterations=200,
            parity_gate=True,
        )
        assert batch.parity is not None
        assert batch.parity["passed"]

    def test_mmv_batch_with_weights_matches_sequential(self, rng):
        a, *_ = make_corrupted_system(rng, m=30, n=50)
        aug = OutlierAugmentedOperator(DenseOperator(a))
        weights = robust_penalty_weights(50, 30, kappa=0.05, lambda_outlier=0.1)
        ys = rng.standard_normal((2, 30, 3)) + 1j * rng.standard_normal((2, 30, 3))
        batch = solve_batch(
            aug, ys, method="mmv", kappa=0.05,
            penalty_weights=weights, max_iterations=300,
        )
        for row, y in zip(batch.x, ys):
            sequential = solve_mmv_fista(
                aug, y, kappa=0.05, penalty_weights=weights, max_iterations=300
            )
            np.testing.assert_allclose(row, sequential.x, atol=1e-8)
