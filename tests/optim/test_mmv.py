"""Tests for the joint-sparse (MMV) solver."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.optim.mmv import mmv_objective, solve_mmv_fista

from tests.optim.test_fista import make_sparse_system


def make_mmv_system(rng, m=30, n=120, k=3, p=5, noise=0.0):
    """Random dictionary with a row-sparse coefficient matrix."""
    a = (rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))) / np.sqrt(m)
    support = rng.choice(n, size=k, replace=False)
    x_true = np.zeros((n, p), dtype=complex)
    x_true[support] = rng.standard_normal((k, p)) + 1j * rng.standard_normal((k, p)) + 1.5
    y = a @ x_true
    if noise > 0:
        y = y + noise * (rng.standard_normal((m, p)) + 1j * rng.standard_normal((m, p)))
    return a, y, x_true, set(support.tolist())


class TestJointRecovery:
    def test_recovers_shared_support(self, rng):
        a, y, _, support = make_mmv_system(rng)
        result = solve_mmv_fista(a, y, kappa=0.05, max_iterations=600)
        row_norms = np.linalg.norm(result.x, axis=1)
        top = set(np.argsort(row_norms)[-len(support):].tolist())
        assert top == support

    def test_more_snapshots_beat_single_snapshot_under_noise(self, rng):
        """The SNR-pooling benefit that motivates multi-packet fusion."""
        a, y, _, support = make_mmv_system(rng, p=8, noise=0.4)
        joint = solve_mmv_fista(a, y, kappa=0.4, max_iterations=600)
        single = solve_mmv_fista(a, y[:, :1], kappa=0.4, max_iterations=600)

        def support_hits(x):
            row_norms = np.linalg.norm(np.atleast_2d(x.T).T, axis=1)
            top = set(np.argsort(row_norms)[-len(support):].tolist())
            return len(top & support)

        assert support_hits(joint.x) >= support_hits(single.x)

    def test_single_column_matches_vector_lasso(self, rng):
        a, y, *_ = make_sparse_system(rng)
        from repro.optim.fista import solve_lasso_fista

        vector = solve_lasso_fista(a, y, kappa=0.1, max_iterations=2000, tolerance=1e-9)
        matrix = solve_mmv_fista(a, y[:, None], kappa=0.1, max_iterations=2000, tolerance=1e-9)
        # ℓ2,1 of a one-column matrix is the ℓ1 norm → identical problems.
        np.testing.assert_allclose(matrix.x[:, 0], vector.x, atol=1e-3)

    def test_large_kappa_zeroes_everything(self, rng):
        a, y, *_ = make_mmv_system(rng)
        huge = 10 * float(np.linalg.norm(2 * a.conj().T @ y, axis=1).max())
        result = solve_mmv_fista(a, y, kappa=huge, max_iterations=50)
        assert np.all(result.x == 0)


class TestObjective:
    def test_objective_formula(self, rng):
        a, y, x_true, _ = make_mmv_system(rng)
        residual = a @ x_true - y
        expected = np.vdot(residual, residual).real + 0.2 * np.linalg.norm(x_true, axis=1).sum()
        assert mmv_objective(a, y, x_true, 0.2) == pytest.approx(expected)

    def test_history_tracking(self, rng):
        a, y, *_ = make_mmv_system(rng)
        result = solve_mmv_fista(a, y, kappa=0.1, max_iterations=40, tolerance=0.0,
                                 track_history=True)
        assert len(result.history) == 40
        assert result.history[-1] <= result.history[0]


class TestValidation:
    def test_rejects_vector_rhs(self, rng):
        a, y, *_ = make_sparse_system(rng)
        with pytest.raises(SolverError, match="2-D"):
            solve_mmv_fista(a, y, kappa=0.1)

    def test_rejects_zero_columns(self, rng):
        a, *_ = make_mmv_system(rng)
        with pytest.raises(SolverError):
            solve_mmv_fista(a, np.zeros((a.shape[0], 0)), kappa=0.1)

    def test_rejects_negative_kappa(self, rng):
        a, y, *_ = make_mmv_system(rng)
        with pytest.raises(SolverError):
            solve_mmv_fista(a, y, kappa=-0.1)

    def test_zero_dictionary_returns_zero(self):
        result = solve_mmv_fista(np.zeros((4, 8)), np.zeros((4, 2)), kappa=0.1)
        assert np.all(result.x == 0)
        assert result.x.shape == (8, 2)
