"""Tests for the SpotFi baseline."""

import numpy as np
import pytest

from repro.baselines.spotfi import (
    SpotFiConfig,
    SpotFiEstimator,
    sanitize_csi_phase,
    smoothed_csi_matrix,
    subarray_joint_steering,
)
from repro.channel.array import UniformLinearArray
from repro.channel.csi import CsiSynthesizer, synthesize_csi_matrix
from repro.channel.impairments import ImpairmentModel
from repro.channel.ofdm import intel5300_layout
from repro.channel.paths import MultipathProfile, PropagationPath, random_profile
from repro.core.grids import AngleGrid, DelayGrid
from repro.exceptions import ConfigurationError, SolverError
from repro.spectral.spectrum import SpectrumPeak


class TestSanitize:
    def test_removes_common_slope(self, array):
        layout = intel5300_layout()
        profile = MultipathProfile(
            paths=[PropagationPath(70.0, 0.0, 1.0, is_direct=True)]
        )
        delayed = synthesize_csi_matrix(profile, array, layout, extra_delay_s=150e-9)
        sanitized = sanitize_csi_phase(delayed)
        # After sanitization the across-subcarrier phase ramp is ~flat.
        phases = np.unwrap(np.angle(sanitized[0]))
        slope = np.polyfit(np.arange(phases.size), phases, 1)[0]
        assert abs(slope) < 1e-6

    def test_preserves_amplitudes(self, array):
        layout = intel5300_layout()
        rng = np.random.default_rng(0)
        profile = random_profile(rng, n_paths=3)
        csi = synthesize_csi_matrix(profile, array, layout, extra_delay_s=80e-9)
        sanitized = sanitize_csi_phase(csi)
        np.testing.assert_allclose(np.abs(sanitized), np.abs(csi), rtol=1e-12)

    def test_preserves_antenna_phase_differences(self, array):
        """Sanitization must not disturb the spatial (AoA) information."""
        layout = intel5300_layout()
        profile = MultipathProfile(paths=[PropagationPath(55.0, 0.0, 1.0, is_direct=True)])
        csi = synthesize_csi_matrix(profile, array, layout, extra_delay_s=120e-9)
        sanitized = sanitize_csi_phase(csi)
        before = np.angle(csi[1] / csi[0])
        after = np.angle(sanitized[1] / sanitized[0])
        np.testing.assert_allclose(after, before, atol=1e-9)

    def test_rejects_1d(self):
        with pytest.raises(SolverError):
            sanitize_csi_phase(np.zeros(30))


class TestSmoothedMatrix:
    def test_paper_dimensions(self, rng):
        """3 antennas × 30 subcarriers with a 2×15 window → 30 × 32."""
        csi = rng.standard_normal((3, 30)) + 1j * rng.standard_normal((3, 30))
        smoothed = smoothed_csi_matrix(csi)
        assert smoothed.shape == (30, 32)

    def test_first_column_is_first_window(self, rng):
        csi = rng.standard_normal((3, 30)) + 1j * rng.standard_normal((3, 30))
        smoothed = smoothed_csi_matrix(csi)
        expected = csi[0:2, 0:15].reshape(-1)
        np.testing.assert_array_equal(smoothed[:, 0], expected)

    def test_last_column_is_last_window(self, rng):
        csi = rng.standard_normal((3, 30)) + 1j * rng.standard_normal((3, 30))
        smoothed = smoothed_csi_matrix(csi)
        expected = csi[1:3, 15:30].reshape(-1)
        np.testing.assert_array_equal(smoothed[:, -1], expected)

    def test_rejects_oversized_window(self, rng):
        csi = rng.standard_normal((3, 30))
        with pytest.raises(ConfigurationError):
            smoothed_csi_matrix(csi, antenna_window=4)
        with pytest.raises(ConfigurationError):
            smoothed_csi_matrix(csi, subcarrier_window=31)


class TestSubarraySteering:
    def test_column_structure_matches_smoothed_rows(self):
        """Dictionary column (θ, τ) must equal the clean smoothed response."""
        array = UniformLinearArray()
        layout = intel5300_layout()
        angle_grid = AngleGrid(n_points=7)
        delay_grid = DelayGrid(n_points=5)
        steering = subarray_joint_steering(array, layout, angle_grid, delay_grid)
        assert steering.shape == (30, 35)

        # Build the clean CSI for the grid point (angle index 3, delay index 2)
        # and check the first smoothed window equals that steering column.
        theta = angle_grid.angles_deg[3]
        tau = delay_grid.toas_s[2]
        profile = MultipathProfile(paths=[PropagationPath(theta, tau, 1.0, is_direct=True)])
        csi = synthesize_csi_matrix(profile, array, layout)
        window = csi[0:2, 0:15].reshape(-1)
        column = steering[:, 2 * 7 + 3]  # delay-major ordering
        np.testing.assert_allclose(window, column, atol=1e-10)


class TestEstimator:
    def test_finds_direct_path_clean_scene(self, rng):
        array = UniformLinearArray()
        layout = intel5300_layout()
        profile = random_profile(rng, n_paths=3, direct_aoa_deg=150.0, direct_toa_s=30e-9)
        synthesizer = CsiSynthesizer(array, layout, ImpairmentModel(), seed=0)
        trace = synthesizer.packets(profile, n_packets=8, snr_db=20.0, rng=rng)
        estimate = SpotFiEstimator().estimate_direct_path(trace)
        assert estimate.aoa_deg == pytest.approx(150.0, abs=6.0)

    def test_aoa_spectrum_peaks_near_truth(self, rng):
        array = UniformLinearArray()
        layout = intel5300_layout()
        profile = random_profile(rng, n_paths=3, direct_aoa_deg=120.0)
        synthesizer = CsiSynthesizer(array, layout, ImpairmentModel(), seed=0)
        trace = synthesizer.packets(profile, n_packets=5, snr_db=20.0, rng=rng)
        spectrum = SpotFiEstimator().aoa_spectrum(trace)
        assert spectrum.closest_peak_error(120.0, max_peaks=4) < 6.0

    def test_analyze_reports_candidates(self, rng):
        array = UniformLinearArray()
        layout = intel5300_layout()
        profile = random_profile(rng, n_paths=3, direct_aoa_deg=100.0)
        synthesizer = CsiSynthesizer(array, layout, ImpairmentModel(), seed=0)
        trace = synthesizer.packets(profile, n_packets=4, snr_db=18.0, rng=rng)
        analysis = SpotFiEstimator().analyze(trace)
        assert len(analysis.candidate_aoas_deg) >= 1
        assert analysis.closest_aoa_error(100.0) <= abs(analysis.direct.aoa_deg - 100.0) + 1e-9


class TestClustering:
    def make_estimator(self):
        return SpotFiEstimator(config=SpotFiConfig())

    def peaks(self, entries):
        return [SpectrumPeak(aoa_deg=a, power=p, toa_s=t) for a, t, p in entries]

    def test_nearby_peaks_merge(self):
        estimator = self.make_estimator()
        clusters = estimator.cluster_peaks(
            self.peaks([(100.0, 100e-9, 1.0), (103.0, 110e-9, 0.9)])
        )
        assert len(clusters) == 1
        assert clusters[0].size == 2

    def test_distant_peaks_stay_separate(self):
        estimator = self.make_estimator()
        clusters = estimator.cluster_peaks(
            self.peaks([(100.0, 100e-9, 1.0), (140.0, 100e-9, 0.9)])
        )
        assert len(clusters) == 2

    def test_toa_gap_splits_cluster(self):
        estimator = self.make_estimator()
        clusters = estimator.cluster_peaks(
            self.peaks([(100.0, 100e-9, 1.0), (101.0, 500e-9, 0.9)])
        )
        assert len(clusters) == 2

    def test_likelihood_prefers_early_large_cluster(self):
        estimator = self.make_estimator()
        clusters = estimator.cluster_peaks(
            self.peaks(
                [(60.0, 50e-9, 0.8)] * 5          # early, consistent, seen 5×
                + [(150.0, 400e-9, 1.0)] * 2       # late, stronger, seen 2×
            )
        )
        best = max(clusters, key=lambda c: estimator.cluster_likelihood(c, clusters))
        assert best.mean_aoa_deg == pytest.approx(60.0)
