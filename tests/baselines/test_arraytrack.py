"""Tests for the ArrayTrack baseline."""

import numpy as np
import pytest

from repro.baselines.arraytrack import ArrayTrackConfig, ArrayTrackEstimator
from repro.channel.array import UniformLinearArray
from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.ofdm import intel5300_layout
from repro.channel.paths import MultipathProfile, PropagationPath, random_profile
from repro.exceptions import ConfigurationError


def make_trace(rng, profile, n_packets=5, snr_db=20.0):
    synthesizer = CsiSynthesizer(
        UniformLinearArray(), intel5300_layout(), ImpairmentModel(), seed=0
    )
    return synthesizer.packets(profile, n_packets=n_packets, snr_db=snr_db, rng=rng)


class TestSpectrum:
    def test_single_source_peak(self, rng):
        profile = MultipathProfile(
            paths=[PropagationPath(70.0, 30e-9, 1.0, is_direct=True)]
        )
        trace = make_trace(rng, profile)
        spectrum = ArrayTrackEstimator().aoa_spectrum(trace)
        assert spectrum.strongest_aoa() == pytest.approx(70.0, abs=3.0)

    def test_synthesis_suppresses_unstable_peaks(self):
        """Multi-packet multiplication keeps only persistent peaks.

        Averaged over several noise realizations: a single 3 dB packet
        sometimes puts its global peak on a spurious angle; synthesized
        spectra stay on a real path.
        """
        estimator = ArrayTrackEstimator()
        single_errors, multi_errors = [], []
        for seed in range(6):
            local = np.random.default_rng(seed)
            profile = random_profile(local, n_paths=2, direct_aoa_deg=90.0)

            def strongest_peak_error(spectrum, profile=profile):
                return min(abs(spectrum.strongest_aoa() - aoa) for aoa in profile.aoas_deg)

            single = estimator.aoa_spectrum(make_trace(local, profile, n_packets=1, snr_db=3.0))
            multi = estimator.aoa_spectrum(make_trace(local, profile, n_packets=10, snr_db=3.0))
            single_errors.append(strongest_peak_error(single))
            multi_errors.append(strongest_peak_error(multi))
        assert np.mean(multi_errors) <= np.mean(single_errors)
        assert np.median(multi_errors) < 8.0

    def test_estimate_has_nan_toa(self, rng):
        """Spatial-only MUSIC carries no delay information."""
        profile = random_profile(rng, n_paths=2, direct_aoa_deg=110.0)
        estimate = ArrayTrackEstimator().estimate_direct_path(make_trace(rng, profile))
        assert np.isnan(estimate.toa_s)

    def test_direct_estimate_near_truth_with_dominant_los(self, rng):
        profile = random_profile(rng, n_paths=3, direct_aoa_deg=45.0, reflection_power_db=-10.0)
        estimate = ArrayTrackEstimator().estimate_direct_path(make_trace(rng, profile))
        assert estimate.aoa_deg == pytest.approx(45.0, abs=6.0)

    def test_blocked_los_breaks_strongest_peak_heuristic(self, rng):
        """ArrayTrack's weakness: when a reflection dominates, it follows it."""
        errors = []
        for seed in range(6):
            local = np.random.default_rng(seed)
            profile = random_profile(
                local, n_paths=3, direct_aoa_deg=45.0
            ).with_direct_attenuation(15.0)
            estimate = ArrayTrackEstimator().estimate_direct_path(
                make_trace(local, profile, snr_db=10.0)
            )
            errors.append(abs(estimate.aoa_deg - 45.0))
        assert max(errors) > 15.0  # at least one gross mis-identification


class TestAnalyze:
    def test_candidates_include_direct(self, rng):
        profile = random_profile(rng, n_paths=2, direct_aoa_deg=80.0)
        analysis = ArrayTrackEstimator().analyze(make_trace(rng, profile))
        assert analysis.closest_aoa_error(80.0) < 6.0


class TestConfig:
    def test_model_order_must_fit_array(self):
        with pytest.raises(ConfigurationError):
            ArrayTrackEstimator(config=ArrayTrackConfig(model_order=3))

    def test_rejects_zero_model_order(self):
        with pytest.raises(ConfigurationError):
            ArrayTrackConfig(model_order=0)
