"""Tests for information-theoretic model-order estimation."""

import numpy as np
import pytest

from repro.baselines.model_order import (
    estimate_model_order,
    estimate_model_order_from_snapshots,
)
from repro.exceptions import SolverError


def snapshots_with_sources(rng, n_sensors=8, n_sources=3, n_snapshots=500, snr=100.0):
    mixing = rng.standard_normal((n_sensors, n_sources)) + 1j * rng.standard_normal(
        (n_sensors, n_sources)
    )
    symbols = rng.standard_normal((n_sources, n_snapshots)) + 1j * rng.standard_normal(
        (n_sources, n_snapshots)
    )
    clean = mixing @ symbols
    sigma = np.sqrt(np.mean(np.abs(clean) ** 2) / snr / 2)
    noise = sigma * (
        rng.standard_normal(clean.shape) + 1j * rng.standard_normal(clean.shape)
    )
    return clean + noise


class TestEstimation:
    @pytest.mark.parametrize("true_k", [1, 2, 3, 5])
    def test_mdl_recovers_order_high_snr(self, rng, true_k):
        snapshots = snapshots_with_sources(rng, n_sources=true_k)
        assert estimate_model_order_from_snapshots(snapshots, criterion="mdl") == true_k

    def test_aic_recovers_order_high_snr(self, rng):
        snapshots = snapshots_with_sources(rng, n_sources=2)
        assert estimate_model_order_from_snapshots(snapshots, criterion="aic") == 2

    def test_pure_noise_gives_zero(self, rng):
        noise = rng.standard_normal((8, 500)) + 1j * rng.standard_normal((8, 500))
        assert estimate_model_order_from_snapshots(noise, criterion="mdl") == 0

    def test_low_snr_underestimates(self):
        """Weak sources sink below the noise floor — the fundamental
        subspace-method limit the paper leans on."""
        rng = np.random.default_rng(0)
        snapshots = snapshots_with_sources(rng, n_sources=4, n_snapshots=40, snr=0.05)
        estimated = estimate_model_order_from_snapshots(snapshots, criterion="mdl")
        assert estimated < 4

    def test_max_order_cap(self, rng):
        snapshots = snapshots_with_sources(rng, n_sources=5)
        assert estimate_model_order_from_snapshots(snapshots, max_order=2) <= 2


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(SolverError):
            estimate_model_order(np.zeros((3, 4)), 10)

    def test_rejects_bad_snapshots_count(self):
        with pytest.raises(SolverError):
            estimate_model_order(np.eye(3), 0)

    def test_rejects_bad_criterion(self):
        with pytest.raises(SolverError):
            estimate_model_order(np.eye(3), 10, criterion="bic")

    def test_rejects_1d_snapshots(self):
        with pytest.raises(SolverError):
            estimate_model_order_from_snapshots(np.zeros(5))


class TestMusicIntegration:
    def test_estimated_order_drives_music(self, rng):
        """MDL + MUSIC resolves the right number of uncorrelated sources."""
        from repro.baselines.music import music_angle_spectrum
        from repro.channel.array import UniformLinearArray
        from repro.core.grids import AngleGrid

        array = UniformLinearArray(n_antennas=6, spacing=0.02, wavelength=0.056)
        steering_true = array.steering_matrix(np.array([50.0, 120.0]))
        symbols = rng.standard_normal((2, 400)) + 1j * rng.standard_normal((2, 400))
        snapshots = steering_true @ symbols
        snapshots += 0.01 * (
            rng.standard_normal(snapshots.shape) + 1j * rng.standard_normal(snapshots.shape)
        )
        k = estimate_model_order_from_snapshots(snapshots, criterion="mdl")
        assert k == 2
        grid = AngleGrid(n_points=181)
        spectrum = music_angle_spectrum(
            snapshots, array.steering_matrix(grid.angles_deg), grid.angles_deg, n_sources=k
        )
        peaks = sorted(p.aoa_deg for p in spectrum.peaks(max_peaks=2))
        assert peaks[0] == pytest.approx(50.0, abs=2.0)
        assert peaks[1] == pytest.approx(120.0, abs=2.0)
