"""Tests for the MUSIC substrate."""

import numpy as np
import pytest

from repro.baselines.music import (
    forward_backward_average,
    music_angle_spectrum,
    music_pseudospectrum,
    noise_subspace,
    sample_covariance,
    spatial_smoothing,
)
from repro.channel.array import UniformLinearArray
from repro.core.grids import AngleGrid
from repro.core.steering import angle_steering_dictionary
from repro.exceptions import SolverError


def uncorrelated_snapshots(array, aoas, rng, n_snapshots=400, snr=100.0):
    """Independent per-snapshot symbols → full-rank source covariance."""
    steering = array.steering_matrix(np.array(aoas))
    symbols = (rng.standard_normal((len(aoas), n_snapshots))
               + 1j * rng.standard_normal((len(aoas), n_snapshots)))
    clean = steering @ symbols
    noise_scale = np.sqrt(np.mean(np.abs(clean) ** 2) / snr / 2)
    noise = noise_scale * (rng.standard_normal(clean.shape) + 1j * rng.standard_normal(clean.shape))
    return clean + noise


class TestSampleCovariance:
    def test_hermitian(self, rng):
        y = rng.standard_normal((4, 50)) + 1j * rng.standard_normal((4, 50))
        r = sample_covariance(y)
        np.testing.assert_allclose(r, r.conj().T)

    def test_positive_semidefinite(self, rng):
        y = rng.standard_normal((4, 50)) + 1j * rng.standard_normal((4, 50))
        eigenvalues = np.linalg.eigvalsh(sample_covariance(y))
        assert np.all(eigenvalues > -1e-12)

    def test_rejects_empty(self):
        with pytest.raises(SolverError):
            sample_covariance(np.zeros((3, 0)))

    def test_rejects_1d(self):
        with pytest.raises(SolverError):
            sample_covariance(np.zeros(3))


class TestForwardBackward:
    def test_preserves_hermitian(self, rng):
        y = rng.standard_normal((4, 50)) + 1j * rng.standard_normal((4, 50))
        r = forward_backward_average(sample_covariance(y))
        np.testing.assert_allclose(r, r.conj().T)

    def test_idempotent_on_persymmetric(self):
        """A persymmetric matrix is a fixed point of FB averaging."""
        r = np.eye(3, dtype=complex)
        np.testing.assert_allclose(forward_backward_average(r), r)

    def test_rejects_non_square(self):
        with pytest.raises(SolverError):
            forward_backward_average(np.zeros((3, 4)))


class TestSpatialSmoothing:
    def test_output_size(self, rng):
        y = rng.standard_normal((6, 40)) + 1j * rng.standard_normal((6, 40))
        assert spatial_smoothing(y, 4).shape == (4, 4)

    def test_restores_rank_for_coherent_sources(self, rng):
        """Two coherent sources: full covariance is rank 1, smoothed is 2."""
        array = UniformLinearArray(n_antennas=6, spacing=0.02, wavelength=0.056)
        steering = array.steering_matrix(np.array([50.0, 120.0]))
        symbol = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        snapshots = np.outer(steering.sum(axis=1), symbol)  # fully coherent
        full = sample_covariance(snapshots)
        smoothed = spatial_smoothing(snapshots, 4)
        assert np.linalg.matrix_rank(full, tol=1e-6) == 1
        assert np.linalg.matrix_rank(smoothed, tol=1e-6) >= 2

    def test_rejects_bad_subarray_size(self, rng):
        y = rng.standard_normal((4, 10))
        for size in (1, 5):
            with pytest.raises(SolverError):
                spatial_smoothing(y, size)


class TestNoiseSubspace:
    def test_dimensions(self, rng):
        y = rng.standard_normal((5, 100)) + 1j * rng.standard_normal((5, 100))
        basis = noise_subspace(sample_covariance(y), n_sources=2)
        assert basis.shape == (5, 3)

    def test_orthogonal_to_signal_steering(self, rng):
        array = UniformLinearArray(n_antennas=5, spacing=0.02, wavelength=0.056)
        snapshots = uncorrelated_snapshots(array, [60.0, 130.0], rng)
        basis = noise_subspace(sample_covariance(snapshots), n_sources=2)
        for aoa in (60.0, 130.0):
            projection = np.linalg.norm(basis.conj().T @ array.steering_vector(aoa))
            assert projection < 0.2  # nearly orthogonal

    def test_rejects_bad_model_order(self, rng):
        r = np.eye(3)
        for k in (0, 3, 5):
            with pytest.raises(SolverError):
                noise_subspace(r, n_sources=k)


class TestMusicSpectrum:
    def test_finds_well_separated_sources(self, rng):
        array = UniformLinearArray(n_antennas=5, spacing=0.02, wavelength=0.056)
        snapshots = uncorrelated_snapshots(array, [60.0, 130.0], rng)
        grid = AngleGrid(n_points=181)
        steering = array.steering_matrix(grid.angles_deg)
        spectrum = music_angle_spectrum(
            snapshots, steering, grid.angles_deg, n_sources=2
        )
        peak_aoas = sorted(p.aoa_deg for p in spectrum.peaks(max_peaks=2))
        assert peak_aoas[0] == pytest.approx(60.0, abs=2.0)
        assert peak_aoas[1] == pytest.approx(130.0, abs=2.0)

    def test_degrades_with_snr(self, rng):
        """The paper's §II motivation: resolvability drops as SNR drops."""
        array = UniformLinearArray(n_antennas=3)
        grid = AngleGrid(n_points=181)
        steering = array.steering_matrix(grid.angles_deg)

        def sharpness(snr):
            snapshots = uncorrelated_snapshots(
                array, [150.0], np.random.default_rng(0), n_snapshots=30, snr=snr
            )
            spectrum = music_angle_spectrum(snapshots, steering, grid.angles_deg, n_sources=1)
            return spectrum.normalized().sharpness()

        assert sharpness(1000.0) > sharpness(0.5)

    def test_pseudospectrum_peaks_at_orthogonality(self):
        basis = np.array([[1.0], [0.0]], dtype=complex)  # noise space = e1
        steering = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=complex)
        power = music_pseudospectrum(basis, steering)
        assert power[1] > power[0] * 1e6
