"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.channel.trace import CsiTrace
from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "out.npz"])
        assert args.snr == 10.0
        assert args.packets == 10

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "x.npz", "--system", "bogus"])


class TestSimulate:
    def test_writes_loadable_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        code = main(["simulate", str(out), "--packets", "3", "--snr", "12"])
        assert code == 0
        trace = CsiTrace.load(out)
        assert trace.n_packets == 3
        assert trace.snr_db == 12.0
        assert "wrote" in capsys.readouterr().out

    def test_blockage_flag_attenuates(self, tmp_path):
        plain = tmp_path / "a.npz"
        blocked = tmp_path / "b.npz"
        main(["simulate", str(plain), "--packets", "1"])
        main(["simulate", str(blocked), "--packets", "1", "--blockage-db", "12"])
        # Both valid traces with the same ground truth AoA.
        a, b = CsiTrace.load(plain), CsiTrace.load(blocked)
        assert a.direct_aoa_deg == b.direct_aoa_deg


class TestAnalyze:
    @pytest.mark.parametrize("system", ["roarray", "spotfi", "arraytrack"])
    def test_analyze_reports_direct_path(self, tmp_path, capsys, system):
        out = tmp_path / "trace.npz"
        main(["simulate", str(out), "--packets", "3", "--snr", "18", "--seed", "4"])
        code = main(["analyze", str(out), "--system", system])
        assert code == 0
        output = capsys.readouterr().out
        assert "direct path" in output
        assert "ground truth" in output


class TestLocalize:
    def test_end_to_end_fix(self, capsys):
        code = main(
            [
                "localize",
                "--system",
                "roarray",
                "--aps",
                "3",
                "--packets",
                "2",
                "--band",
                "high",
                "--resolution",
                "0.25",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "fix (" in output
        assert "error" in output


class TestReport:
    def test_writes_markdown_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["report", str(out), "--sections", "fig3"])
        assert code == 0
        content = out.read_text()
        assert content.startswith("# ROArray evaluation report")
        assert "Fig. 3" in content

    def test_stdout_mode(self, capsys):
        assert main(["report", "-", "--sections", "fig3"]) == 0
        assert "Fig. 3" in capsys.readouterr().out


class TestJsonMode:
    def test_analyze_json(self, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        main(["simulate", str(out), "--packets", "3", "--snr", "18", "--seed", "4"])
        capsys.readouterr()
        assert main(["analyze", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "ROArray"
        assert set(payload["direct"]) == {"aoa_deg", "toa_s", "n_paths"}
        assert payload["aoa_error_deg"] is not None

    def test_batch_json(self, capsys):
        code = main(["batch", "--synthetic", "2", "--packets", "3", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["outcomes"]) == 2
        assert all(row["ok"] for row in payload["outcomes"])
        report = payload["report"]
        assert report["n_jobs"] == 2
        assert "solver_s" in report["stages"]

    def test_report_json_stdout(self, capsys):
        assert main(["report", "-", "--sections", "fig3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sections"] == ["fig3"]
        assert "Fig. 3" in payload["markdown"]


class TestTrace:
    def test_trace_batch_writes_span_tree(self, tmp_path, capsys):
        trace_out = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "--trace-out",
                str(trace_out),
                "batch",
                "--synthetic",
                "2",
                "--packets",
                "3",
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().err
        payload = json.loads(trace_out.read_text())
        spans = payload["spans"]
        names = {span["name"] for span in spans}
        assert {"batch_evaluate", "job", "fusion", "solver"} <= names
        roots = [span for span in spans if span["parent_id"] is None]
        assert [root["name"] for root in roots] == ["batch_evaluate"]
        solver_spans = [span for span in spans if span["name"] == "solver"]
        assert all("convergence" in span["attributes"] for span in solver_spans)

    def test_trace_without_command_fails(self, tmp_path, capsys):
        assert main(["trace", "--trace-out", str(tmp_path / "t.json")]) == 2
        assert "usage" in capsys.readouterr().err

    def test_trace_cannot_nest(self, capsys):
        assert main(["trace", "trace", "figures"]) == 2
        assert "nested" in capsys.readouterr().err


class TestTelemetryReport:
    def test_report_telemetry_appends_cost_table(self, capsys):
        assert main(["report", "-", "--sections", "fig3", "--telemetry"]) == 0
        output = capsys.readouterr().out
        assert "## Telemetry — where the time went" in output
        assert "| solver |" in output


class TestBenchBatched:
    def test_writes_batched_benchmark_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench", "--batched", "--batch-sizes", "1", "3",
                "--iterations", "3", "--repeats", "1", "--output", str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "batched solve" in output
        assert "speedup" in output
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "batched_solve"
        assert payload["backend"] == "numpy"
        assert payload["dtype"] == "complex128"
        assert [row["batch_size"] for row in payload["batches"]] == [1, 3]
        assert all(row["max_relative_deviation"] <= 1e-12 for row in payload["batches"])

    def test_batched_json_mode(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench", "--batched", "--json", "--batch-sizes", "2",
                "--iterations", "2", "--repeats", "1", "--output", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "batched_solve"
        assert out.exists()

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--batched", "--backend", "mlx"])


class TestFigures:
    def test_lists_every_paper_figure(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        for key in FIGURES:
            assert key in output
        assert "fig6" in output
