"""Tests for CSI synthesis — the paper's Eq. 4 measurement model."""

import numpy as np
import pytest

from repro.channel.csi import CsiSynthesizer, rssi_from_power, synthesize_csi_matrix
from repro.channel.impairments import ImpairmentModel
from repro.channel.noise import measured_snr_db
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.exceptions import ConfigurationError


def single_path_profile(aoa_deg=60.0, toa_s=40e-9, gain=1.0 + 0j):
    return MultipathProfile(paths=[PropagationPath(aoa_deg, toa_s, gain, is_direct=True)])


class TestSynthesizeCsiMatrix:
    def test_shape(self, array, layout, two_path_profile):
        csi = synthesize_csi_matrix(two_path_profile, array, layout)
        assert csi.shape == (3, 16)

    def test_single_path_is_rank_one(self, array, layout):
        csi = synthesize_csi_matrix(single_path_profile(), array, layout)
        singular_values = np.linalg.svd(csi, compute_uv=False)
        assert singular_values[1] < 1e-9 * singular_values[0]

    def test_antenna_phase_progression_matches_steering(self, array, layout):
        """Across antennas, the phase factor is Λ(θ) (Eq. 1)."""
        csi = synthesize_csi_matrix(single_path_profile(aoa_deg=50.0), array, layout)
        expected = array.phase_factor(50.0)
        observed = csi[1, 0] / csi[0, 0]
        assert observed == pytest.approx(expected, abs=1e-12)

    def test_subcarrier_phase_progression_matches_delay(self, array, layout):
        """Across subcarriers, the phase factor is Γ(τ) (Eq. 12)."""
        tau = 100e-9
        csi = synthesize_csi_matrix(single_path_profile(toa_s=tau), array, layout)
        expected = layout.delay_phase_factor(tau)
        observed = csi[0, 1] / csi[0, 0]
        assert observed == pytest.approx(expected, abs=1e-12)

    def test_superposition_of_paths(self, array, layout, two_path_profile):
        total = synthesize_csi_matrix(two_path_profile, array, layout)
        parts = sum(
            synthesize_csi_matrix(MultipathProfile(paths=[p]), array, layout)
            for p in two_path_profile.paths
        )
        np.testing.assert_allclose(total, parts, atol=1e-12)

    def test_extra_delay_adds_common_ramp(self, array, layout, two_path_profile):
        base = synthesize_csi_matrix(two_path_profile, array, layout)
        delayed = synthesize_csi_matrix(two_path_profile, array, layout, extra_delay_s=50e-9)
        ramp = layout.delay_response(50e-9)
        np.testing.assert_allclose(delayed, base * ramp[None, :], atol=1e-12)

    def test_phase_offsets_applied_per_antenna(self, array, layout, two_path_profile):
        offsets = np.array([0.0, 0.5, -1.0])
        base = synthesize_csi_matrix(two_path_profile, array, layout)
        shifted = synthesize_csi_matrix(
            two_path_profile, array, layout, antenna_phase_offsets=offsets
        )
        np.testing.assert_allclose(shifted, base * np.exp(1j * offsets)[:, None], atol=1e-12)

    def test_rejects_wrong_offset_shape(self, array, layout, two_path_profile):
        with pytest.raises(ConfigurationError):
            synthesize_csi_matrix(
                two_path_profile, array, layout, antenna_phase_offsets=np.zeros(5)
            )

    def test_rejects_wrong_gain_shape(self, array, layout, two_path_profile):
        with pytest.raises(ConfigurationError):
            synthesize_csi_matrix(two_path_profile, array, layout, antenna_gains=np.ones(2))


class TestCsiSynthesizer:
    def test_trace_shape_and_metadata(self, synthesizer, two_path_profile, rng):
        trace = synthesizer.packets(two_path_profile, n_packets=4, snr_db=12.0, rng=rng)
        assert trace.csi.shape == (4, 3, 16)
        assert trace.snr_db == 12.0
        assert trace.direct_aoa_deg == 60.0
        np.testing.assert_allclose(trace.true_aoas_deg, [60.0, 120.0])

    def test_snr_is_accurate(self, array, layout, two_path_profile, clean_impairments, rng):
        synthesizer = CsiSynthesizer(array, layout, clean_impairments, seed=0)
        normalized = two_path_profile.normalized()
        clean = synthesize_csi_matrix(normalized, array, layout)
        trace = synthesizer.packets(two_path_profile, n_packets=60, snr_db=5.0, rng=rng)
        snrs = [measured_snr_db(clean, trace.packet(p)) for p in range(60)]
        assert np.mean(snrs) == pytest.approx(5.0, abs=0.7)

    def test_boot_offsets_constant_across_packets(self, array, layout, rng):
        impairments = ImpairmentModel(
            detection_delay_range_s=0.0, sfo_std_s=0.0, phase_offset_std_rad=1.0
        )
        synthesizer = CsiSynthesizer(array, layout, impairments, seed=42)
        trace = synthesizer.packets(single_path_profile(), n_packets=3, snr_db=60.0, rng=rng)
        # With no per-packet effects, inter-antenna ratios are identical
        # across packets (offsets are per boot, not per packet).
        ratios = trace.csi[:, 1, 0] / trace.csi[:, 0, 0]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-2)

    def test_same_seed_same_offsets(self, array, layout):
        impairments = ImpairmentModel(phase_offset_std_rad=1.0)
        a = CsiSynthesizer(array, layout, impairments, seed=7)
        b = CsiSynthesizer(array, layout, impairments, seed=7)
        np.testing.assert_array_equal(a.phase_offsets, b.phase_offsets)

    def test_detection_delays_recorded(self, array, layout, rng):
        impairments = ImpairmentModel(detection_delay_range_s=100e-9, sfo_std_s=0.0)
        synthesizer = CsiSynthesizer(array, layout, impairments, seed=0)
        trace = synthesizer.packets(single_path_profile(), n_packets=5, snr_db=30.0, rng=rng)
        assert trace.detection_delays_s.shape == (5,)
        assert np.all(trace.detection_delays_s <= 100e-9)

    def test_rejects_zero_packets(self, synthesizer, two_path_profile, rng):
        with pytest.raises(ConfigurationError):
            synthesizer.packets(two_path_profile, n_packets=0, snr_db=10.0, rng=rng)

    def test_rssi_reflects_link_power(self, array, layout, clean_impairments, rng):
        strong = single_path_profile(gain=1.0)
        weak = single_path_profile(gain=0.01)
        synthesizer = CsiSynthesizer(array, layout, clean_impairments, seed=0)
        strong_trace = synthesizer.packets(strong, n_packets=1, snr_db=10.0, rng=rng)
        weak_trace = synthesizer.packets(weak, n_packets=1, snr_db=10.0, rng=rng)
        assert strong_trace.rssi_dbm > weak_trace.rssi_dbm

    def test_polarization_tilt_lowers_rssi(self, array, layout, rng):
        upright = CsiSynthesizer(array, layout, ImpairmentModel(), seed=0)
        tilted = CsiSynthesizer(
            array, layout, ImpairmentModel(polarization_deviation_deg=45.0), seed=0
        )
        profile = single_path_profile()
        a = upright.packets(profile, n_packets=1, snr_db=10.0, rng=np.random.default_rng(0))
        b = tilted.packets(profile, n_packets=1, snr_db=10.0, rng=np.random.default_rng(0))
        assert b.rssi_dbm < a.rssi_dbm


class TestRssiFromPower:
    def test_monotone(self):
        assert rssi_from_power(1e-6) > rssi_from_power(1e-8)

    def test_floor(self):
        assert rssi_from_power(0.0) == -100.0
        assert rssi_from_power(1e-30) == -100.0

    def test_log_slope(self):
        assert rssi_from_power(1e-6) - rssi_from_power(1e-7) == pytest.approx(10.0)
