"""Tests for the client mobility models."""

import numpy as np
import pytest

from repro.channel.geometry import Room
from repro.channel.mobility import RandomWaypointModel, stationary_track, waypoint_walk
from repro.exceptions import ConfigurationError


class TestWaypointWalk:
    def test_starts_at_first_waypoint(self):
        samples = waypoint_walk([(0.0, 0.0), (4.0, 0.0)], speed_mps=1.0)
        assert samples[0].position == (0.0, 0.0)
        assert samples[0].time_s == 0.0

    def test_constant_speed_spacing(self):
        samples = waypoint_walk(
            [(0.0, 0.0), (10.0, 0.0)], speed_mps=2.0, sample_interval_s=0.5
        )
        positions = np.array([s.position for s in samples])
        steps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        np.testing.assert_allclose(steps[:-1], 1.0, atol=1e-9)  # 2 m/s × 0.5 s

    def test_reaches_final_waypoint(self):
        samples = waypoint_walk([(0.0, 0.0), (3.0, 4.0)], speed_mps=1.0, sample_interval_s=0.5)
        end = np.array(samples[-1].position)
        assert np.linalg.norm(end - [3.0, 4.0]) < 0.51

    def test_corner_turning(self):
        samples = waypoint_walk(
            [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0)], speed_mps=1.0, sample_interval_s=1.0
        )
        positions = [s.position for s in samples]
        assert (2.0, 0.0) in positions
        assert any(p[1] > 0 for p in positions)

    def test_rejects_single_waypoint(self):
        with pytest.raises(ConfigurationError):
            waypoint_walk([(0.0, 0.0)])

    def test_rejects_duplicate_waypoints(self):
        with pytest.raises(ConfigurationError):
            waypoint_walk([(0.0, 0.0), (0.0, 0.0)])

    def test_rejects_bad_speed(self):
        with pytest.raises(ConfigurationError):
            waypoint_walk([(0.0, 0.0), (1.0, 0.0)], speed_mps=0.0)


class TestRandomWaypoint:
    def make_model(self):
        return RandomWaypointModel(room=Room(width=10.0, depth=8.0))

    def test_stays_inside_room(self, rng):
        model = self.make_model()
        samples = model.generate(rng, duration_s=60.0)
        for sample in samples:
            assert 0.0 <= sample.position[0] <= 10.0
            assert 0.0 <= sample.position[1] <= 8.0

    def test_moves(self, rng):
        model = self.make_model()
        samples = model.generate(rng, duration_s=30.0)
        positions = {s.position for s in samples}
        assert len(positions) > 5

    def test_speed_bounded(self, rng):
        model = RandomWaypointModel(room=Room(), speed_range_mps=(0.5, 1.5))
        samples = model.generate(rng, duration_s=30.0, sample_interval_s=0.5)
        positions = np.array([s.position for s in samples])
        steps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        assert steps.max() <= 1.5 * 0.5 + 1e-9

    def test_explicit_start(self, rng):
        model = self.make_model()
        samples = model.generate(rng, duration_s=5.0, start=(5.0, 4.0))
        assert samples[0].position == (5.0, 4.0)

    def test_deterministic(self):
        model = self.make_model()
        a = model.generate(np.random.default_rng(3), duration_s=10.0)
        b = model.generate(np.random.default_rng(3), duration_s=10.0)
        assert [s.position for s in a] == [s.position for s in b]

    def test_rejects_bad_speed_range(self):
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(room=Room(), speed_range_mps=(2.0, 1.0))

    def test_rejects_start_outside(self, rng):
        with pytest.raises(ConfigurationError):
            self.make_model().generate(rng, duration_s=5.0, start=(99.0, 0.0))

    def test_rejects_bad_duration(self, rng):
        with pytest.raises(ConfigurationError):
            self.make_model().generate(rng, duration_s=0.0)


class TestStationaryTrack:
    def test_constant_position_and_zero_speed(self):
        samples = stationary_track((3.0, 4.0), duration_s=2.0, sample_interval_s=0.5)
        assert {s.position for s in samples} == {(3.0, 4.0)}
        assert {s.speed_mps for s in samples} == {0.0}

    def test_zero_duration_yields_single_t0_sample(self):
        samples = stationary_track((1.0, 1.0), duration_s=0.0)
        assert len(samples) == 1
        assert samples[0].time_s == 0.0
        assert samples[0].position == (1.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            stationary_track((1.0, 1.0), duration_s=-0.5)

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            stationary_track((1.0, 1.0), duration_s=1.0, sample_interval_s=0.0)


class TestSampleRateBoundaries:
    """Edge cases at the sample-rate / duration boundary."""

    def test_interval_longer_than_duration_gives_one_sample(self):
        samples = stationary_track((2.0, 2.0), duration_s=0.3, sample_interval_s=0.5)
        assert [s.time_s for s in samples] == [0.0]

    def test_divisible_duration_includes_endpoint(self):
        samples = stationary_track((2.0, 2.0), duration_s=2.0, sample_interval_s=0.5)
        assert len(samples) == 5
        assert samples[-1].time_s == pytest.approx(2.0)

    def test_fractional_interval_survives_float_accumulation(self):
        # 0.1 is not exactly representable; the endpoint must still be
        # emitted despite the accumulated drift in t += interval.
        samples = stationary_track((2.0, 2.0), duration_s=1.0, sample_interval_s=0.1)
        assert len(samples) == 11
        assert samples[-1].time_s == pytest.approx(1.0)

    def test_waypoint_walk_divisible_travel_time_reaches_endpoint(self):
        # 4 m at 1 m/s sampled every 0.5 s: 9 samples, last at the goal.
        samples = waypoint_walk(
            [(0.0, 0.0), (4.0, 0.0)], speed_mps=1.0, sample_interval_s=0.5
        )
        assert len(samples) == 9
        assert samples[-1].position == (4.0, 0.0)

    def test_waypoint_walk_interval_longer_than_travel_time(self):
        samples = waypoint_walk(
            [(0.0, 0.0), (1.0, 0.0)], speed_mps=2.0, sample_interval_s=5.0
        )
        assert [s.time_s for s in samples] == [0.0]
        assert samples[0].position == (0.0, 0.0)

    def test_random_waypoint_interval_longer_than_duration(self, rng):
        model = RandomWaypointModel(room=Room())
        samples = model.generate(rng, duration_s=0.2, sample_interval_s=0.5)
        assert len(samples) == 1
        assert samples[0].time_s == 0.0

    def test_random_waypoint_divisible_duration_includes_endpoint(self, rng):
        model = RandomWaypointModel(room=Room())
        samples = model.generate(rng, duration_s=2.0, sample_interval_s=0.5)
        assert samples[-1].time_s == pytest.approx(2.0)
        assert len(samples) == 5
