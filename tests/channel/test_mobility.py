"""Tests for the client mobility models."""

import numpy as np
import pytest

from repro.channel.geometry import Room
from repro.channel.mobility import RandomWaypointModel, waypoint_walk
from repro.exceptions import ConfigurationError


class TestWaypointWalk:
    def test_starts_at_first_waypoint(self):
        samples = waypoint_walk([(0.0, 0.0), (4.0, 0.0)], speed_mps=1.0)
        assert samples[0].position == (0.0, 0.0)
        assert samples[0].time_s == 0.0

    def test_constant_speed_spacing(self):
        samples = waypoint_walk(
            [(0.0, 0.0), (10.0, 0.0)], speed_mps=2.0, sample_interval_s=0.5
        )
        positions = np.array([s.position for s in samples])
        steps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        np.testing.assert_allclose(steps[:-1], 1.0, atol=1e-9)  # 2 m/s × 0.5 s

    def test_reaches_final_waypoint(self):
        samples = waypoint_walk([(0.0, 0.0), (3.0, 4.0)], speed_mps=1.0, sample_interval_s=0.5)
        end = np.array(samples[-1].position)
        assert np.linalg.norm(end - [3.0, 4.0]) < 0.51

    def test_corner_turning(self):
        samples = waypoint_walk(
            [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0)], speed_mps=1.0, sample_interval_s=1.0
        )
        positions = [s.position for s in samples]
        assert (2.0, 0.0) in positions
        assert any(p[1] > 0 for p in positions)

    def test_rejects_single_waypoint(self):
        with pytest.raises(ConfigurationError):
            waypoint_walk([(0.0, 0.0)])

    def test_rejects_duplicate_waypoints(self):
        with pytest.raises(ConfigurationError):
            waypoint_walk([(0.0, 0.0), (0.0, 0.0)])

    def test_rejects_bad_speed(self):
        with pytest.raises(ConfigurationError):
            waypoint_walk([(0.0, 0.0), (1.0, 0.0)], speed_mps=0.0)


class TestRandomWaypoint:
    def make_model(self):
        return RandomWaypointModel(room=Room(width=10.0, depth=8.0))

    def test_stays_inside_room(self, rng):
        model = self.make_model()
        samples = model.generate(rng, duration_s=60.0)
        for sample in samples:
            assert 0.0 <= sample.position[0] <= 10.0
            assert 0.0 <= sample.position[1] <= 8.0

    def test_moves(self, rng):
        model = self.make_model()
        samples = model.generate(rng, duration_s=30.0)
        positions = {s.position for s in samples}
        assert len(positions) > 5

    def test_speed_bounded(self, rng):
        model = RandomWaypointModel(room=Room(), speed_range_mps=(0.5, 1.5))
        samples = model.generate(rng, duration_s=30.0, sample_interval_s=0.5)
        positions = np.array([s.position for s in samples])
        steps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        assert steps.max() <= 1.5 * 0.5 + 1e-9

    def test_explicit_start(self, rng):
        model = self.make_model()
        samples = model.generate(rng, duration_s=5.0, start=(5.0, 4.0))
        assert samples[0].position == (5.0, 4.0)

    def test_deterministic(self):
        model = self.make_model()
        a = model.generate(np.random.default_rng(3), duration_s=10.0)
        b = model.generate(np.random.default_rng(3), duration_s=10.0)
        assert [s.position for s in a] == [s.position for s in b]

    def test_rejects_bad_speed_range(self):
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(room=Room(), speed_range_mps=(2.0, 1.0))

    def test_rejects_start_outside(self, rng):
        with pytest.raises(ConfigurationError):
            self.make_model().generate(rng, duration_s=5.0, start=(99.0, 0.0))

    def test_rejects_bad_duration(self, rng):
        with pytest.raises(ConfigurationError):
            self.make_model().generate(rng, duration_s=0.0)
