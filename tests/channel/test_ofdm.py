"""Tests for OFDM subcarrier layouts (paper Eq. 12, footnote 7)."""

import numpy as np
import pytest

from repro.channel.constants import SPEED_OF_LIGHT
from repro.channel.ofdm import SubcarrierLayout, intel5300_layout
from repro.exceptions import ConfigurationError


class TestIntel5300Layout:
    def test_paper_parameters(self):
        layout = intel5300_layout()
        assert layout.n_subcarriers == 30
        assert layout.spacing == pytest.approx(1.25e6)
        # Paper: "if Intel 5300 cards work with a 40 MHz band ... τmax = 800 ns".
        assert layout.max_unambiguous_delay == pytest.approx(800e-9)

    def test_20mhz_halves_spacing(self):
        layout = intel5300_layout(bandwidth_40mhz=False)
        assert layout.spacing == pytest.approx(0.625e6)
        assert layout.max_unambiguous_delay == pytest.approx(1600e-9)

    def test_wavelength_is_5ghz_band(self):
        layout = intel5300_layout()
        assert layout.wavelength == pytest.approx(SPEED_OF_LIGHT / layout.center_frequency)
        assert 0.05 < layout.wavelength < 0.06  # ~5.6 cm


class TestDelayResponse:
    def test_zero_delay_is_all_ones(self, layout):
        np.testing.assert_allclose(layout.delay_response(0.0), np.ones(layout.n_subcarriers))

    def test_phase_ramp_slope(self, layout):
        """Eq. 12: adjacent-subcarrier phase shift is −2π·fδ·τ."""
        tau = 50e-9
        response = layout.delay_response(tau)
        step = np.angle(response[1] / response[0])
        assert step == pytest.approx(-2 * np.pi * layout.spacing * tau)

    def test_unit_magnitude(self, layout):
        np.testing.assert_allclose(np.abs(layout.delay_response(123e-9)), 1.0)

    def test_delay_aliases_at_tau_max(self, layout):
        """τ and τ + 1/fδ are indistinguishable — the aliasing the grids respect."""
        tau = 100e-9
        aliased = tau + layout.max_unambiguous_delay
        np.testing.assert_allclose(
            layout.delay_response(tau), layout.delay_response(aliased), atol=1e-9
        )

    def test_paper_phase_shift_example(self):
        """§III-B: a 5 ns ToA over 20 MHz gives 0.628 rad — vs 0.0054 from AoA."""
        shift = 2 * np.pi * 20e6 * 5e-9
        assert shift == pytest.approx(0.628, abs=0.001)


class TestValidation:
    def test_rejects_zero_subcarriers(self):
        with pytest.raises(ConfigurationError):
            SubcarrierLayout(n_subcarriers=0)

    def test_rejects_negative_spacing(self):
        with pytest.raises(ConfigurationError):
            SubcarrierLayout(spacing=-1.0)

    def test_rejects_zero_center_frequency(self):
        with pytest.raises(ConfigurationError):
            SubcarrierLayout(center_frequency=0.0)

    def test_frequency_offsets_shape_and_spacing(self, layout):
        offsets = layout.frequency_offsets()
        assert offsets.shape == (layout.n_subcarriers,)
        np.testing.assert_allclose(np.diff(offsets), layout.spacing)
