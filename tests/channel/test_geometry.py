"""Tests for room geometry and image-method multipath tracing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.constants import SPEED_OF_LIGHT
from repro.channel.geometry import (
    AccessPoint,
    Room,
    Scene,
    Wall,
    reflect_point,
    trace_paths,
)
from repro.exceptions import GeometryError

WAVELENGTH = 0.056


class TestWall:
    def test_mirror_vertical_wall(self):
        wall = Wall(axis=0, offset=2.0, lo=0.0, hi=10.0)
        np.testing.assert_allclose(wall.mirror(np.array([5.0, 3.0])), [-1.0, 3.0])

    def test_mirror_horizontal_wall(self):
        wall = Wall(axis=1, offset=0.0, lo=0.0, hi=10.0)
        np.testing.assert_allclose(wall.mirror(np.array([4.0, 3.0])), [4.0, -3.0])

    def test_mirror_is_involution(self):
        wall = Wall(axis=0, offset=1.5, lo=0.0, hi=5.0)
        point = np.array([3.3, 0.7])
        np.testing.assert_allclose(wall.mirror(wall.mirror(point)), point)

    def test_reflect_point_alias(self):
        wall = Wall(axis=1, offset=2.0, lo=0.0, hi=4.0)
        np.testing.assert_allclose(reflect_point([1.0, 5.0], wall), [1.0, -1.0])

    def test_contains_projection(self):
        wall = Wall(axis=0, offset=0.0, lo=1.0, hi=2.0)
        assert wall.contains_projection(np.array([0.0, 1.5]))
        assert not wall.contains_projection(np.array([0.0, 3.0]))

    def test_rejects_degenerate_extent(self):
        with pytest.raises(GeometryError):
            Wall(axis=0, offset=0.0, lo=2.0, hi=1.0)

    def test_rejects_bad_axis(self):
        with pytest.raises(GeometryError):
            Wall(axis=2, offset=0.0, lo=0.0, hi=1.0)


class TestRoom:
    def test_default_is_paper_classroom_scale(self):
        room = Room()
        assert room.width == 18.0 and room.depth == 12.0

    def test_four_walls_bound_the_rectangle(self):
        room = Room(width=4.0, depth=3.0)
        offsets = sorted((w.axis, w.offset) for w in room.walls)
        assert offsets == [(0, 0.0), (0, 4.0), (1, 0.0), (1, 3.0)]

    def test_contains(self):
        room = Room(width=4.0, depth=3.0)
        assert room.contains(np.array([2.0, 1.5]))
        assert not room.contains(np.array([-0.1, 1.0]))
        assert not room.contains(np.array([2.0, 3.1]))

    def test_rejects_bad_dimensions(self):
        with pytest.raises(GeometryError):
            Room(width=0.0)

    def test_rejects_bad_reflection_coefficient(self):
        with pytest.raises(GeometryError):
            Room(reflection_coefficient=1.5)


class TestAccessPointBearing:
    def test_along_axis_is_zero_degrees(self):
        ap = AccessPoint(position=(0.0, 0.0), axis_direction_deg=0.0)
        assert ap.bearing_to_aoa(np.array([5.0, 0.0])) == pytest.approx(0.0)

    def test_perpendicular_is_ninety(self):
        ap = AccessPoint(position=(0.0, 0.0), axis_direction_deg=0.0)
        assert ap.bearing_to_aoa(np.array([0.0, 5.0])) == pytest.approx(90.0)

    def test_behind_is_180(self):
        ap = AccessPoint(position=(1.0, 1.0), axis_direction_deg=0.0)
        assert ap.bearing_to_aoa(np.array([0.0, 1.0])) == pytest.approx(180.0)

    def test_rotated_axis(self):
        ap = AccessPoint(position=(0.0, 0.0), axis_direction_deg=90.0)
        assert ap.bearing_to_aoa(np.array([0.0, 3.0])) == pytest.approx(0.0)
        assert ap.bearing_to_aoa(np.array([3.0, 0.0])) == pytest.approx(90.0)

    def test_coincident_source_rejected(self):
        ap = AccessPoint(position=(1.0, 1.0))
        with pytest.raises(GeometryError):
            ap.bearing_to_aoa(np.array([1.0, 1.0]))

    @given(st.floats(0.5, 17.5), st.floats(0.5, 11.5))
    @settings(max_examples=30, deadline=None)
    def test_bearing_always_in_range(self, x, y):
        ap = AccessPoint(position=(0.0, 6.0), axis_direction_deg=90.0)
        if (x, y) == (0.0, 6.0):
            return
        aoa = ap.bearing_to_aoa(np.array([x, y]))
        assert 0.0 <= aoa <= 180.0


class TestTracePaths:
    def setup_method(self):
        self.room = Room(width=10.0, depth=8.0, reflection_coefficient=0.6)
        self.receiver = AccessPoint(position=(0.0, 4.0), axis_direction_deg=90.0, name="rx")

    def test_direct_path_present_and_earliest(self):
        profile = trace_paths(self.room, np.array([6.0, 4.0]), self.receiver, WAVELENGTH)
        direct = profile.direct_path
        assert direct.is_direct
        assert direct.toa_s == min(profile.toas_s)

    def test_direct_toa_matches_distance(self):
        profile = trace_paths(self.room, np.array([6.0, 4.0]), self.receiver, WAVELENGTH)
        assert profile.direct_path.toa_s == pytest.approx(6.0 / SPEED_OF_LIGHT)

    def test_direct_aoa_matches_bearing(self):
        profile = trace_paths(self.room, np.array([6.0, 7.0]), self.receiver, WAVELENGTH)
        assert profile.direct_path.aoa_deg == pytest.approx(
            self.receiver.bearing_to_aoa(np.array([6.0, 7.0]))
        )

    def test_first_order_reflections_found(self):
        profile = trace_paths(self.room, np.array([6.0, 4.0]), self.receiver, WAVELENGTH)
        # Symmetric transmitter: top, bottom and far-wall bounces exist.
        assert len(profile) >= 3

    def test_reflection_length_matches_image_distance(self):
        """Image method invariant: path length = |image − rx|."""
        tx = np.array([6.0, 2.0])
        profile = trace_paths(self.room, tx, self.receiver, WAVELENGTH)
        # The floor (y=0) bounce has unfolded length |(6,−2) − (0,4)|.
        expected = np.linalg.norm([6.0, -2.0 - 4.0])
        lengths = profile.toas_s * SPEED_OF_LIGHT
        assert any(abs(l - expected) < 1e-9 for l in lengths)

    def test_reflections_weaker_than_direct(self):
        profile = trace_paths(self.room, np.array([3.0, 4.0]), self.receiver, WAVELENGTH)
        direct_gain = abs(profile.direct_path.gain)
        for path in profile.paths:
            if not path.is_direct:
                assert abs(path.gain) < direct_gain

    def test_scatterer_adds_path(self):
        base = trace_paths(self.room, np.array([6.0, 4.0]), self.receiver, WAVELENGTH)
        with_scatterer = trace_paths(
            self.room, np.array([6.0, 4.0]), self.receiver, WAVELENGTH,
            scatterers=[(3.0, 6.0)],
        )
        assert len(with_scatterer) == len(base) + 1

    def test_scatterer_outside_room_rejected(self):
        with pytest.raises(GeometryError):
            trace_paths(
                self.room, np.array([6.0, 4.0]), self.receiver, WAVELENGTH,
                scatterers=[(30.0, 6.0)],
            )

    def test_coincident_tx_rx_rejected(self):
        with pytest.raises(GeometryError):
            trace_paths(self.room, np.array([0.0, 4.0]), self.receiver, WAVELENGTH)

    def test_paths_sorted_by_toa(self):
        profile = trace_paths(self.room, np.array([6.0, 5.0]), self.receiver, WAVELENGTH)
        assert np.all(np.diff(profile.toas_s) >= 0)

    def test_second_order_adds_longer_weaker_paths(self):
        tx = np.array([6.0, 5.0])
        first = trace_paths(self.room, tx, self.receiver, WAVELENGTH, max_reflections=1)
        second = trace_paths(self.room, tx, self.receiver, WAVELENGTH, max_reflections=2)
        assert len(second) > len(first)
        first_max_toa = max(first.toas_s)
        extras = [p for p in second.paths if p.toa_s > first_max_toa]
        assert extras, "second-order bounces should arrive after all first-order ones"
        # Double bounces carry the reflection coefficient twice.
        weakest_first = min(abs(p.gain) for p in first.paths)
        assert min(abs(p.gain) for p in extras) < weakest_first

    def test_second_order_direct_path_unchanged(self):
        tx = np.array([6.0, 5.0])
        first = trace_paths(self.room, tx, self.receiver, WAVELENGTH, max_reflections=1)
        second = trace_paths(self.room, tx, self.receiver, WAVELENGTH, max_reflections=2)
        assert second.direct_path.toa_s == pytest.approx(first.direct_path.toa_s)
        assert second.direct_path.aoa_deg == pytest.approx(first.direct_path.aoa_deg)

    def test_double_bounce_length_matches_double_image(self):
        """Image-method invariant for two bounces: length = |image₂ − rx|."""
        tx = np.array([6.0, 5.0])
        profile = trace_paths(self.room, tx, self.receiver, WAVELENGTH, max_reflections=2)
        # Floor (y=0) then ceiling (y=8): image = (6, −5) → (6, 21).
        expected = np.linalg.norm(np.array([6.0, 21.0]) - np.array([0.0, 4.0]))
        lengths = profile.toas_s * SPEED_OF_LIGHT
        assert any(abs(l - expected) < 1e-9 for l in lengths)

    def test_rejects_unsupported_reflection_order(self):
        with pytest.raises(GeometryError):
            trace_paths(
                self.room, np.array([6.0, 5.0]), self.receiver, WAVELENGTH, max_reflections=3
            )


class TestScene:
    def test_ground_truth_consistency(self):
        room = Room()
        scene = Scene(
            room=room,
            access_points=[AccessPoint((0.0, 6.0), 90.0, "a"), AccessPoint((18.0, 6.0), 90.0, "b")],
            client=(9.0, 6.0),
        )
        assert scene.ground_truth_aoa(0) == pytest.approx(90.0)
        assert scene.ground_truth_distance(0) == pytest.approx(9.0)
        profile = scene.multipath_profile(0, WAVELENGTH)
        assert profile.direct_path.aoa_deg == pytest.approx(scene.ground_truth_aoa(0))

    def test_client_outside_room_rejected(self):
        with pytest.raises(GeometryError):
            Scene(room=Room(), access_points=[AccessPoint((0.0, 6.0))], client=(99.0, 6.0))

    def test_ap_outside_room_rejected(self):
        with pytest.raises(GeometryError):
            Scene(room=Room(), access_points=[AccessPoint((-1.0, 6.0))], client=(9.0, 6.0))

    def test_requires_at_least_one_ap(self):
        with pytest.raises(GeometryError):
            Scene(room=Room(), access_points=[], client=(9.0, 6.0))
