"""Tests for the CSI trace container and its on-disk format."""

import numpy as np
import pytest

from repro.channel.trace import CsiTrace
from repro.exceptions import ConfigurationError


def make_trace(rng, n_packets=4):
    return CsiTrace(
        csi=rng.standard_normal((n_packets, 3, 30)) + 1j * rng.standard_normal((n_packets, 3, 30)),
        snr_db=7.5,
        detection_delays_s=rng.uniform(0, 100e-9, n_packets),
        antenna_phase_offsets=np.array([0.0, 0.3, -0.2]),
        true_aoas_deg=np.array([60.0, 120.0]),
        true_toas_s=np.array([40e-9, 200e-9]),
        direct_aoa_deg=60.0,
        direct_toa_s=40e-9,
        rssi_dbm=-48.0,
    )


class TestContainer:
    def test_dimension_properties(self, rng):
        trace = make_trace(rng)
        assert trace.n_packets == 4
        assert trace.n_antennas == 3
        assert trace.n_subcarriers == 30

    def test_packet_accessor(self, rng):
        trace = make_trace(rng)
        np.testing.assert_array_equal(trace.packet(2), trace.csi[2])

    def test_rejects_2d_csi(self, rng):
        with pytest.raises(ConfigurationError):
            CsiTrace(csi=rng.standard_normal((3, 30)), snr_db=0.0)

    def test_subset(self, rng):
        trace = make_trace(rng)
        subset = trace.subset(2)
        assert subset.n_packets == 2
        np.testing.assert_array_equal(subset.csi, trace.csi[:2])
        assert subset.direct_aoa_deg == trace.direct_aoa_deg
        assert subset.rssi_dbm == trace.rssi_dbm

    def test_subset_bounds(self, rng):
        trace = make_trace(rng)
        with pytest.raises(ConfigurationError):
            trace.subset(0)
        with pytest.raises(ConfigurationError):
            trace.subset(5)


class TestRoundTrip:
    def test_save_load_identity(self, rng, tmp_path):
        trace = make_trace(rng)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = CsiTrace.load(path)
        np.testing.assert_array_equal(loaded.csi, trace.csi)
        np.testing.assert_array_equal(loaded.detection_delays_s, trace.detection_delays_s)
        np.testing.assert_array_equal(loaded.true_aoas_deg, trace.true_aoas_deg)
        assert loaded.snr_db == trace.snr_db
        assert loaded.direct_aoa_deg == trace.direct_aoa_deg
        assert loaded.rssi_dbm == trace.rssi_dbm

    def test_loaded_trace_is_usable(self, rng, tmp_path):
        trace = make_trace(rng)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = CsiTrace.load(path)
        assert loaded.subset(1).n_packets == 1


class TestCaptureMetadata:
    """The capture-provenance fields added for real-trace support."""

    def test_metadata_round_trips(self, rng, tmp_path):
        from dataclasses import replace

        trace = replace(
            make_trace(rng),
            capture_times_s=np.array([0.0, 0.01, 0.02, 0.031]),
            ap_id="ap-west",
            source_format="intel-dat",
        )
        path = tmp_path / "meta.npz"
        trace.save(path)
        loaded = CsiTrace.load(path)
        assert loaded.equals(trace)
        assert loaded.ap_id == "ap-west"
        assert loaded.source_format == "intel-dat"
        np.testing.assert_array_equal(loaded.capture_times_s, trace.capture_times_s)

    def test_old_archive_without_metadata_defaults(self, rng, tmp_path):
        # An archive written before the metadata fields existed: only
        # the original field set.  It must load with defaults.
        path = tmp_path / "old.npz"
        csi = rng.standard_normal((2, 3, 30)) + 1j * rng.standard_normal((2, 3, 30))
        np.savez(path, csi=csi, snr_db=9.0)
        loaded = CsiTrace.load(path)
        assert loaded.ap_id == ""
        assert loaded.source_format == ""
        assert loaded.capture_times_s.shape == (0,)
        assert np.isnan(loaded.direct_aoa_deg)

    def test_unknown_future_field_warns_and_is_ignored(self, rng, tmp_path):
        path = tmp_path / "future.npz"
        csi = rng.standard_normal((2, 3, 30)) + 1j * rng.standard_normal((2, 3, 30))
        np.savez(path, csi=csi, snr_db=9.0, polarization_map=np.eye(3))
        with pytest.warns(RuntimeWarning, match="unknown trace fields"):
            loaded = CsiTrace.load(path)
        assert loaded.n_packets == 2

    def test_missing_mandatory_field_rejected(self, rng, tmp_path):
        from repro.exceptions import IngestError

        path = tmp_path / "broken.npz"
        np.savez(path, snr_db=9.0)
        with pytest.raises(IngestError, match="missing"):
            CsiTrace.load(path)

    def test_subset_slices_capture_times(self, rng):
        from dataclasses import replace

        trace = replace(
            make_trace(rng), capture_times_s=np.array([0.0, 0.1, 0.2, 0.3])
        )
        subset = trace.subset(2)
        np.testing.assert_array_equal(subset.capture_times_s, [0.0, 0.1])
