"""Tests for the CSI trace container and its on-disk format."""

import numpy as np
import pytest

from repro.channel.trace import CsiTrace
from repro.exceptions import ConfigurationError


def make_trace(rng, n_packets=4):
    return CsiTrace(
        csi=rng.standard_normal((n_packets, 3, 30)) + 1j * rng.standard_normal((n_packets, 3, 30)),
        snr_db=7.5,
        detection_delays_s=rng.uniform(0, 100e-9, n_packets),
        antenna_phase_offsets=np.array([0.0, 0.3, -0.2]),
        true_aoas_deg=np.array([60.0, 120.0]),
        true_toas_s=np.array([40e-9, 200e-9]),
        direct_aoa_deg=60.0,
        direct_toa_s=40e-9,
        rssi_dbm=-48.0,
    )


class TestContainer:
    def test_dimension_properties(self, rng):
        trace = make_trace(rng)
        assert trace.n_packets == 4
        assert trace.n_antennas == 3
        assert trace.n_subcarriers == 30

    def test_packet_accessor(self, rng):
        trace = make_trace(rng)
        np.testing.assert_array_equal(trace.packet(2), trace.csi[2])

    def test_rejects_2d_csi(self, rng):
        with pytest.raises(ConfigurationError):
            CsiTrace(csi=rng.standard_normal((3, 30)), snr_db=0.0)

    def test_subset(self, rng):
        trace = make_trace(rng)
        subset = trace.subset(2)
        assert subset.n_packets == 2
        np.testing.assert_array_equal(subset.csi, trace.csi[:2])
        assert subset.direct_aoa_deg == trace.direct_aoa_deg
        assert subset.rssi_dbm == trace.rssi_dbm

    def test_subset_bounds(self, rng):
        trace = make_trace(rng)
        with pytest.raises(ConfigurationError):
            trace.subset(0)
        with pytest.raises(ConfigurationError):
            trace.subset(5)


class TestRoundTrip:
    def test_save_load_identity(self, rng, tmp_path):
        trace = make_trace(rng)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = CsiTrace.load(path)
        np.testing.assert_array_equal(loaded.csi, trace.csi)
        np.testing.assert_array_equal(loaded.detection_delays_s, trace.detection_delays_s)
        np.testing.assert_array_equal(loaded.true_aoas_deg, trace.true_aoas_deg)
        assert loaded.snr_db == trace.snr_db
        assert loaded.direct_aoa_deg == trace.direct_aoa_deg
        assert loaded.rssi_dbm == trace.rssi_dbm

    def test_loaded_trace_is_usable(self, rng, tmp_path):
        trace = make_trace(rng)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = CsiTrace.load(path)
        assert loaded.subset(1).n_packets == 1
