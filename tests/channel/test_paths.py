"""Tests for propagation-path containers and the synthetic profile generator."""

import numpy as np
import pytest

from repro.channel.paths import MultipathProfile, PropagationPath, random_profile
from repro.exceptions import ConfigurationError


class TestPropagationPath:
    def test_rejects_out_of_range_aoa(self):
        for aoa in (-1.0, 181.0):
            with pytest.raises(ConfigurationError):
                PropagationPath(aoa_deg=aoa, toa_s=1e-9, gain=1.0)

    def test_rejects_negative_toa(self):
        with pytest.raises(ConfigurationError):
            PropagationPath(aoa_deg=90.0, toa_s=-1e-9, gain=1.0)


class TestMultipathProfile:
    def test_requires_at_least_one_path(self):
        with pytest.raises(ConfigurationError):
            MultipathProfile(paths=[])

    def test_rejects_two_direct_paths(self):
        paths = [
            PropagationPath(10.0, 1e-9, 1.0, is_direct=True),
            PropagationPath(20.0, 2e-9, 1.0, is_direct=True),
        ]
        with pytest.raises(ConfigurationError):
            MultipathProfile(paths=paths)

    def test_direct_path_falls_back_to_earliest(self):
        paths = [
            PropagationPath(10.0, 5e-9, 1.0),
            PropagationPath(20.0, 2e-9, 0.5),
        ]
        profile = MultipathProfile(paths=paths)
        assert profile.direct_path.aoa_deg == 20.0

    def test_arrays_match_paths(self, two_path_profile):
        np.testing.assert_allclose(two_path_profile.aoas_deg, [60.0, 120.0])
        np.testing.assert_allclose(two_path_profile.toas_s, [40e-9, 200e-9])
        assert two_path_profile.gains.dtype == complex

    def test_normalized_has_unit_power(self, two_path_profile):
        normalized = two_path_profile.normalized()
        assert normalized.total_power == pytest.approx(1.0)
        # Relative gains preserved.
        ratio = abs(normalized.gains[1]) / abs(normalized.gains[0])
        original = abs(two_path_profile.gains[1]) / abs(two_path_profile.gains[0])
        assert ratio == pytest.approx(original)

    def test_normalize_zero_power_rejected(self):
        profile = MultipathProfile(paths=[PropagationPath(10.0, 1e-9, 0.0)])
        with pytest.raises(ConfigurationError):
            profile.normalized()

    def test_sorted_by_toa(self):
        paths = [
            PropagationPath(10.0, 9e-9, 1.0),
            PropagationPath(20.0, 2e-9, 1.0, is_direct=True),
        ]
        ordered = MultipathProfile(paths=paths).sorted_by_toa()
        assert ordered.paths[0].is_direct


class TestDirectAttenuation:
    def test_attenuates_only_direct(self, two_path_profile):
        blocked = two_path_profile.with_direct_attenuation(20.0)
        assert abs(blocked.direct_path.gain) == pytest.approx(
            abs(two_path_profile.direct_path.gain) / 10.0
        )
        assert abs(blocked.paths[1].gain) == pytest.approx(abs(two_path_profile.paths[1].gain))

    def test_zero_attenuation_is_identity(self, two_path_profile):
        same = two_path_profile.with_direct_attenuation(0.0)
        np.testing.assert_allclose(same.gains, two_path_profile.gains)

    def test_rejects_negative(self, two_path_profile):
        with pytest.raises(ConfigurationError):
            two_path_profile.with_direct_attenuation(-3.0)


class TestRandomProfile:
    def test_path_count(self, rng):
        profile = random_profile(rng, n_paths=5)
        assert len(profile) == 5

    def test_direct_path_properties(self, rng):
        profile = random_profile(rng, n_paths=4, direct_aoa_deg=150.0, direct_toa_s=30e-9)
        direct = profile.direct_path
        assert direct.is_direct
        assert direct.aoa_deg == 150.0
        assert direct.toa_s == 30e-9

    def test_direct_is_earliest(self, rng):
        for seed in range(5):
            profile = random_profile(np.random.default_rng(seed), n_paths=5)
            assert profile.direct_path.toa_s == min(profile.toas_s)

    def test_direct_is_strongest_on_average(self, rng):
        profile = random_profile(rng, n_paths=5)
        direct_gain = abs(profile.direct_path.gain)
        others = [abs(p.gain) for p in profile.paths if not p.is_direct]
        assert direct_gain > np.mean(others)

    def test_aoa_separation_enforced(self, rng):
        profile = random_profile(rng, n_paths=5, min_aoa_separation_deg=10.0)
        aoas = np.sort(profile.aoas_deg)
        assert np.all(np.diff(aoas) >= 10.0 - 1e-9)

    def test_single_path_profile(self, rng):
        profile = random_profile(rng, n_paths=1)
        assert len(profile) == 1
        assert profile.paths[0].is_direct

    def test_rejects_zero_paths(self, rng):
        with pytest.raises(ConfigurationError):
            random_profile(rng, n_paths=0)

    def test_deterministic_given_generator_state(self):
        a = random_profile(np.random.default_rng(9), n_paths=4)
        b = random_profile(np.random.default_rng(9), n_paths=4)
        np.testing.assert_allclose(a.aoas_deg, b.aoas_deg)
        np.testing.assert_allclose(a.gains, b.gains)
