"""Tests for the planar-array extension (paper §IV-F)."""

import numpy as np
import pytest

from repro.channel.array2d import DualPolarizationFeed, PlanarArray
from repro.channel.impairments import polarization_loss
from repro.exceptions import ConfigurationError


class TestPlanarArray:
    def test_element_positions_grid(self):
        array = PlanarArray(n_x=2, n_y=3, spacing_x=0.02, spacing_y=0.01)
        positions = array.element_positions()
        assert positions.shape == (6, 2)
        np.testing.assert_allclose(positions[0], [0.0, 0.0])
        assert positions[:, 0].max() == pytest.approx(0.02)
        assert positions[:, 1].max() == pytest.approx(0.02)

    def test_boresight_has_flat_phase(self):
        array = PlanarArray()
        vector = array.steering_vector(azimuth_deg=123.0, elevation_deg=90.0)
        np.testing.assert_allclose(vector, np.ones(array.n_elements), atol=1e-12)

    def test_unit_magnitude(self):
        array = PlanarArray()
        vector = array.steering_vector(40.0, 30.0)
        np.testing.assert_allclose(np.abs(vector), 1.0)

    def test_grazing_arrival_along_x_matches_ula(self):
        """At elevation 0, azimuth 0, a 1×M row behaves like paper Eq. 1 endfire."""
        array = PlanarArray(n_x=3, n_y=1, spacing_x=PlanarArray().wavelength / 2)
        vector = array.steering_vector(0.0, 0.0)
        # Adjacent phase step: −2π·(λ/2)/λ = −π.
        step = np.angle(vector[1] / vector[0])
        assert abs(abs(step) - np.pi) < 1e-9

    def test_azimuth_distinguishable_via_second_dimension(self):
        """A ULA cannot tell front from back; a planar array can."""
        array = PlanarArray(n_x=2, n_y=2)
        front = array.steering_vector(60.0, 20.0)
        mirrored = array.steering_vector(-60.0 % 360.0, 20.0)
        assert not np.allclose(front, mirrored, atol=1e-6)

    def test_steering_matrix_ordering(self):
        array = PlanarArray()
        azimuths = np.array([0.0, 90.0, 180.0])
        elevations = np.array([10.0, 50.0])
        matrix = array.steering_matrix(azimuths, elevations)
        assert matrix.shape == (4, 6)
        np.testing.assert_allclose(
            matrix[:, 1 * 3 + 2], array.steering_vector(180.0, 50.0)
        )

    def test_rejects_single_element(self):
        with pytest.raises(ConfigurationError):
            PlanarArray(n_x=1, n_y=1)

    def test_rejects_wide_spacing(self):
        with pytest.raises(ConfigurationError, match="ambiguous"):
            PlanarArray(spacing_x=0.06, wavelength=0.056)

    def test_rejects_bad_elevation(self):
        with pytest.raises(ConfigurationError):
            PlanarArray().steering_vector(0.0, 91.0)


class TestDualPolarization:
    def test_no_loss_at_any_tilt(self):
        feed = DualPolarizationFeed(combining_efficiency=1.0)
        for deviation in (0.0, 20.0, 45.0, 90.0):
            assert feed.amplitude(deviation) == pytest.approx(1.0)

    def test_beats_single_feed_at_large_tilt(self):
        """The §IV-F remedy for Fig. 8c: tilt no longer kills reception."""
        feed = DualPolarizationFeed()
        for deviation in (20.0, 45.0, 70.0):
            assert feed.amplitude(deviation) > polarization_loss(deviation)

    def test_efficiency_scales(self):
        assert DualPolarizationFeed(combining_efficiency=0.5).amplitude(0.0) == pytest.approx(0.5)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            DualPolarizationFeed(combining_efficiency=0.0)

    def test_rejects_bad_deviation(self):
        with pytest.raises(ConfigurationError):
            DualPolarizationFeed().amplitude(120.0)
