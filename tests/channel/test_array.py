"""Tests for the ULA steering model (paper Eq. 1/2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.array import UniformLinearArray
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_defaults_match_paper_hardware(self, array):
        assert array.n_antennas == 3
        # Paper: antennas "equally spaced at half wavelength, 2.6 cm".
        assert array.spacing == pytest.approx(array.wavelength / 2)
        assert array.spacing == pytest.approx(0.028, abs=0.003)

    def test_rejects_single_antenna(self):
        with pytest.raises(ConfigurationError):
            UniformLinearArray(n_antennas=1)

    def test_rejects_spacing_above_half_wavelength(self):
        with pytest.raises(ConfigurationError, match="ambiguous"):
            UniformLinearArray(spacing=0.06, wavelength=0.056)

    def test_rejects_nonpositive_spacing(self):
        with pytest.raises(ConfigurationError):
            UniformLinearArray(spacing=0.0)

    def test_aperture(self):
        array = UniformLinearArray(n_antennas=4, spacing=0.02, wavelength=0.056)
        assert array.aperture == pytest.approx(0.06)


class TestSteeringVector:
    def test_first_entry_is_one(self, array):
        for aoa in (0.0, 45.0, 90.0, 180.0):
            assert array.steering_vector(aoa)[0] == pytest.approx(1.0)

    def test_entries_are_unit_magnitude(self, array):
        vector = array.steering_vector(37.0)
        np.testing.assert_allclose(np.abs(vector), 1.0)

    def test_broadside_has_no_phase_progression(self, array):
        """θ = 90° ⇒ cos θ = 0 ⇒ all antennas in phase."""
        np.testing.assert_allclose(array.steering_vector(90.0), np.ones(3), atol=1e-12)

    def test_endfire_phase_step_is_pi_at_half_wavelength(self, array):
        """θ = 0° with d = λ/2 ⇒ adjacent phase −2πd/λ = −π."""
        vector = array.steering_vector(0.0)
        assert np.angle(vector[1]) == pytest.approx(-np.pi, abs=1e-9) or np.angle(
            vector[1]
        ) == pytest.approx(np.pi, abs=1e-9)

    def test_geometric_progression(self, array):
        """Eq. 1: entry m is Λ^m."""
        vector = array.steering_vector(62.0)
        factor = vector[1]
        np.testing.assert_allclose(vector[2], factor**2, rtol=1e-12)

    @given(st.floats(0.0, 180.0))
    @settings(max_examples=50, deadline=None)
    def test_injective_over_valid_range(self, aoa):
        """d ≤ λ/2 keeps distinct angles distinguishable (Fig. 1 caption)."""
        array = UniformLinearArray()
        other = aoa + 7.0
        if other > 180.0:
            other = aoa - 7.0
        v1 = array.steering_vector(aoa)
        v2 = array.steering_vector(other)
        assert not np.allclose(v1, v2, atol=1e-6)


class TestSteeringMatrix:
    def test_columns_match_vectors(self, array):
        angles = np.array([10.0, 90.0, 140.0])
        matrix = array.steering_matrix(angles)
        assert matrix.shape == (3, 3)
        for j, angle in enumerate(angles):
            np.testing.assert_allclose(matrix[:, j], array.steering_vector(angle))

    def test_rejects_2d_angles(self, array):
        with pytest.raises(ConfigurationError):
            array.steering_matrix(np.zeros((2, 2)))

    def test_superposition(self, array):
        """Eq. 3: y = S a holds by construction."""
        angles = np.array([40.0, 130.0])
        gains = np.array([1.0 + 0.5j, -0.3 + 0.2j])
        s = array.steering_matrix(angles)
        y = s @ gains
        manual = gains[0] * array.steering_vector(40.0) + gains[1] * array.steering_vector(130.0)
        np.testing.assert_allclose(y, manual)
