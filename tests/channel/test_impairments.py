"""Tests for the hardware impairment models."""

import numpy as np
import pytest

from repro.channel.impairments import ImpairmentModel, polarization_loss
from repro.exceptions import ConfigurationError


class TestPolarizationLoss:
    def test_no_deviation_no_loss(self):
        assert polarization_loss(0.0) == 1.0

    def test_cosine_law(self):
        assert polarization_loss(60.0) == pytest.approx(0.5)

    def test_floor_at_extreme_tilt(self):
        assert polarization_loss(90.0) == 0.05

    def test_monotonically_decreasing(self):
        values = [polarization_loss(d) for d in (0, 15, 30, 45, 60, 75)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_rejects_out_of_range(self):
        for deviation in (-1.0, 91.0):
            with pytest.raises(ConfigurationError):
                polarization_loss(deviation)


class TestDetectionDelay:
    def test_within_configured_range(self, rng):
        model = ImpairmentModel(detection_delay_range_s=100e-9, sfo_std_s=0.0)
        delays = [model.draw_detection_delay(rng) for _ in range(200)]
        assert all(0.0 <= d <= 100e-9 for d in delays)

    def test_zero_range_zero_delay(self, rng):
        model = ImpairmentModel(detection_delay_range_s=0.0, sfo_std_s=0.0)
        assert model.draw_detection_delay(rng) == 0.0

    def test_sfo_adds_jitter(self, rng):
        model = ImpairmentModel(detection_delay_range_s=0.0, sfo_std_s=5e-9)
        delays = [model.draw_detection_delay(rng) for _ in range(100)]
        assert max(delays) > 0.0

    def test_delays_vary_per_packet(self, rng):
        """The effect behind paper Fig. 4a vs 4b."""
        model = ImpairmentModel()
        delays = {model.draw_detection_delay(rng) for _ in range(10)}
        assert len(delays) == 10

    def test_rejects_negative_range(self):
        with pytest.raises(ConfigurationError):
            ImpairmentModel(detection_delay_range_s=-1.0)


class TestCfoResidual:
    def test_zero_cfo_gives_zero_phase(self, rng):
        model = ImpairmentModel(cfo_residual_rad=0.0)
        assert model.draw_cfo_phase(rng) == 0.0

    def test_phase_bounded(self, rng):
        model = ImpairmentModel(cfo_residual_rad=0.4)
        phases = [model.draw_cfo_phase(rng) for _ in range(100)]
        assert all(-0.4 <= p <= 0.4 for p in phases)
        assert len(set(phases)) > 50  # varies per packet

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ImpairmentModel(cfo_residual_rad=-0.1)

    def test_cfo_invisible_to_interantenna_ratio(self, rng):
        """Common phase cancels across antennas — AoA is CFO-immune."""
        from repro.channel.csi import CsiSynthesizer
        from repro.channel.ofdm import SubcarrierLayout
        from repro.channel.paths import MultipathProfile, PropagationPath
        from repro.channel.array import UniformLinearArray

        model = ImpairmentModel(
            detection_delay_range_s=0.0, sfo_std_s=0.0, cfo_residual_rad=3.0
        )
        synthesizer = CsiSynthesizer(
            UniformLinearArray(), SubcarrierLayout(n_subcarriers=16, spacing=1.25e6),
            model, seed=0,
        )
        profile = MultipathProfile(
            paths=[PropagationPath(70.0, 30e-9, 1.0, is_direct=True)]
        )
        trace = synthesizer.packets(profile, n_packets=4, snr_db=60.0, rng=rng)
        ratios = trace.csi[:, 1, 0] / trace.csi[:, 0, 0]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-2)


class TestPhaseOffsets:
    def test_disabled_by_default(self, rng):
        model = ImpairmentModel()
        np.testing.assert_array_equal(model.draw_phase_offsets(rng, 3), np.zeros(3))

    def test_reference_antenna_stays_zero(self, rng):
        model = ImpairmentModel(phase_offset_std_rad=1.0)
        offsets = model.draw_phase_offsets(rng, 3)
        assert offsets[0] == 0.0
        assert np.all(offsets[1:] != 0.0)

    def test_offsets_bounded_by_pi(self, rng):
        model = ImpairmentModel(phase_offset_std_rad=1.0)
        for _ in range(20):
            offsets = model.draw_phase_offsets(rng, 4)
            assert np.all(np.abs(offsets) <= np.pi)


class TestPolarizationRipple:
    def test_no_deviation_unit_gains(self, rng):
        model = ImpairmentModel(polarization_deviation_deg=0.0)
        np.testing.assert_array_equal(
            model.draw_polarization_ripple(rng, 3), np.ones(3, dtype=complex)
        )

    def test_ripple_grows_with_deviation(self):
        mild = ImpairmentModel(polarization_deviation_deg=10.0)
        severe = ImpairmentModel(polarization_deviation_deg=45.0)
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        deviation_mild = np.abs(mild.draw_polarization_ripple(rng_a, 3) - 1.0)
        deviation_severe = np.abs(severe.draw_polarization_ripple(rng_b, 3) - 1.0)
        assert deviation_severe.mean() > deviation_mild.mean()

    def test_amplitude_factor_uses_cosine_law(self):
        model = ImpairmentModel(polarization_deviation_deg=60.0)
        assert model.polarization_amplitude() == pytest.approx(0.5)

    def test_rejects_invalid_deviation(self):
        with pytest.raises(ConfigurationError):
            ImpairmentModel(polarization_deviation_deg=120.0)

    def test_rejects_negative_ripple(self):
        with pytest.raises(ConfigurationError):
            ImpairmentModel(polarization_ripple=-0.1)
