"""Tests for AWGN injection and SNR measurement."""

import numpy as np
import pytest

from repro.channel.noise import awgn, measured_snr_db, noise_std_for_snr
from repro.exceptions import ConfigurationError


class TestAwgn:
    def test_achieves_requested_snr(self, rng):
        signal = np.exp(1j * rng.uniform(0, 2 * np.pi, size=20000))
        for target in (-3.0, 2.0, 10.0, 20.0):
            noisy = awgn(signal, target, rng)
            assert measured_snr_db(signal, noisy) == pytest.approx(target, abs=0.3)

    def test_preserves_shape(self, rng):
        signal = np.ones((3, 30), dtype=complex)
        assert awgn(signal, 10.0, rng).shape == (3, 30)

    def test_noise_is_complex(self, rng):
        signal = np.ones(100, dtype=complex)
        noisy = awgn(signal, 0.0, rng)
        assert np.any(np.abs(noisy.imag) > 0)

    def test_rejects_zero_signal(self, rng):
        with pytest.raises(ConfigurationError):
            awgn(np.zeros(10), 10.0, rng)

    def test_higher_snr_means_less_perturbation(self, rng):
        signal = np.ones(5000, dtype=complex)
        low = awgn(signal, 0.0, np.random.default_rng(1))
        high = awgn(signal, 20.0, np.random.default_rng(1))
        assert np.linalg.norm(high - signal) < np.linalg.norm(low - signal)


class TestNoiseStd:
    def test_matches_snr_definition(self, rng):
        signal = 2.0 * np.ones(1000, dtype=complex)
        sigma = noise_std_for_snr(signal, 10.0)
        # SNR = P_sig / σ² → σ² = 4 / 10.
        assert sigma**2 == pytest.approx(0.4)

    def test_rejects_zero_signal(self):
        with pytest.raises(ConfigurationError):
            noise_std_for_snr(np.zeros(4), 10.0)


class TestMeasuredSnr:
    def test_identical_signals_infinite_snr(self):
        signal = np.ones(10, dtype=complex)
        assert measured_snr_db(signal, signal) == float("inf")

    def test_known_ratio(self):
        clean = np.ones(4, dtype=complex)
        noisy = clean + np.array([1.0, -1.0, 1.0, -1.0]) * 0.1
        # Noise power 0.01, signal power 1 → 20 dB.
        assert measured_snr_db(clean, noisy) == pytest.approx(20.0)
