"""Tests for the co-channel interference model."""

import numpy as np
import pytest

from repro.channel.array import UniformLinearArray
from repro.channel.csi import synthesize_csi_matrix
from repro.channel.interference import (
    Interferer,
    add_interference,
    interference_to_noise_equivalent_db,
)
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.exceptions import ConfigurationError


def victim_csi(array, layout):
    profile = MultipathProfile(
        paths=[PropagationPath(60.0, 40e-9, 1.0, is_direct=True)]
    ).normalized()
    return synthesize_csi_matrix(profile, array, layout)


def interferer_profile(aoa=140.0):
    return MultipathProfile(paths=[PropagationPath(aoa, 60e-9, 1.0, is_direct=True)])


class TestAddInterference:
    def test_power_calibrated_to_inr(self, array, layout, rng):
        csi = victim_csi(array, layout)
        interfered = add_interference(
            csi, [Interferer(interferer_profile(), power_db=0.0)], array, layout, rng
        )
        added_power = np.mean(np.abs(interfered - csi) ** 2)
        victim_power = np.mean(np.abs(csi) ** 2)
        assert added_power == pytest.approx(victim_power, rel=0.05)

    def test_weak_interferer_adds_little(self, array, layout, rng):
        csi = victim_csi(array, layout)
        interfered = add_interference(
            csi, [Interferer(interferer_profile(), power_db=-20.0)], array, layout, rng
        )
        added = np.mean(np.abs(interfered - csi) ** 2)
        assert added < 0.02 * np.mean(np.abs(csi) ** 2)

    def test_batch_input_per_packet_phases(self, array, layout, rng):
        csi = np.stack([victim_csi(array, layout)] * 3)
        interfered = add_interference(
            csi, [Interferer(interferer_profile())], array, layout, rng
        )
        assert interfered.shape == csi.shape
        # Per-packet symbol phases: added components differ between packets.
        deltas = interfered - csi
        assert not np.allclose(deltas[0], deltas[1])

    def test_structured_not_white(self, array, layout, rng):
        """Interference is rank-1 across antennas — unlike AWGN."""
        csi = victim_csi(array, layout)
        interfered = add_interference(
            csi, [Interferer(interferer_profile(), power_db=10.0)], array, layout, rng
        )
        delta = interfered - csi
        singular_values = np.linalg.svd(delta, compute_uv=False)
        assert singular_values[0] > 100 * singular_values[1]

    def test_no_interferers_is_identity(self, array, layout, rng):
        csi = victim_csi(array, layout)
        np.testing.assert_array_equal(add_interference(csi, [], array, layout, rng), csi)

    def test_rejects_zero_victim(self, array, layout, rng):
        with pytest.raises(ConfigurationError):
            add_interference(
                np.zeros((3, 16), dtype=complex),
                [Interferer(interferer_profile())],
                array,
                layout,
                rng,
            )

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            Interferer(interferer_profile(), delay_s=-1e-9)


class TestInrSummary:
    def test_single_interferer(self):
        assert interference_to_noise_equivalent_db(
            [Interferer(interferer_profile(), power_db=-3.0)]
        ) == pytest.approx(-3.0)

    def test_two_equal_interferers_add_3db(self):
        two = [Interferer(interferer_profile(), power_db=0.0)] * 2
        assert interference_to_noise_equivalent_db(two) == pytest.approx(3.0, abs=0.1)

    def test_empty_is_minus_inf(self):
        assert interference_to_noise_equivalent_db([]) == float("-inf")


class TestEndToEnd:
    def test_roarray_survives_delayed_interferer(self, rng):
        """An asynchronous (delayed) interferer appears at a later ToA, so
        the smallest-ToA rule still finds the victim's direct path."""
        from repro.channel.csi import CsiSynthesizer
        from repro.channel.impairments import ImpairmentModel
        from repro.channel.ofdm import intel5300_layout
        from repro.channel.trace import CsiTrace
        from repro.core.pipeline import RoArrayEstimator

        array = UniformLinearArray()
        layout = intel5300_layout()
        profile = MultipathProfile(
            paths=[
                PropagationPath(60.0, 30e-9, 1.0, is_direct=True),
                PropagationPath(100.0, 120e-9, 0.4),
            ]
        )
        synthesizer = CsiSynthesizer(
            array, layout, ImpairmentModel(detection_delay_range_s=0.0, sfo_std_s=0.0), seed=0
        )
        trace = synthesizer.packets(profile, n_packets=5, snr_db=15.0, rng=rng)
        interfered = add_interference(
            trace.csi,
            [Interferer(interferer_profile(aoa=170.0), power_db=-3.0, delay_s=300e-9)],
            array,
            layout,
            rng,
        )
        estimate = RoArrayEstimator().estimate_direct_path(
            CsiTrace(csi=interfered, snr_db=trace.snr_db)
        )
        assert estimate.aoa_deg == pytest.approx(60.0, abs=8.0)
