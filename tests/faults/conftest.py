"""Fixtures for the fault-injection suite: one clean synthetic trace."""

from __future__ import annotations

import pytest

from repro.channel.csi import CsiSynthesizer
from repro.channel.paths import random_profile
from repro.channel.trace import CsiTrace


@pytest.fixture
def clean_trace(array, layout, clean_impairments, rng) -> CsiTrace:
    """A 10-packet, defect-free trace on the reduced test layout."""
    synthesizer = CsiSynthesizer(array, layout, clean_impairments, seed=7)
    profile = random_profile(rng, n_paths=3, direct_aoa_deg=70.0)
    return synthesizer.packets(profile, n_packets=10, snr_db=15.0, rng=rng)
