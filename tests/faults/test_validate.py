"""Unit tests for the CSI validation gate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.trace import CsiTrace
from repro.exceptions import ValidationError
from repro.faults import (
    AntennaDropout,
    ValueCorruption,
    classify_defects,
    sanitize_trace,
)


class TestCleanPath:
    def test_clean_trace_returns_same_object(self, clean_trace):
        sanitized, report = sanitize_trace(clean_trace)
        assert sanitized is clean_trace  # identity: the gate is a true no-op
        assert report.clean
        assert report.n_quarantined == 0

    def test_clean_trace_with_expected_shape(self, clean_trace):
        shape = (clean_trace.n_antennas, clean_trace.n_subcarriers)
        sanitized, report = sanitize_trace(clean_trace, expected_shape=shape)
        assert sanitized is clean_trace
        assert report.clean


class TestDefectClassification:
    def test_non_finite_packets_detected(self, clean_trace):
        faulted, _ = ValueCorruption(fraction=0.3).apply(
            clean_trace, np.random.default_rng(0)
        )
        defects = classify_defects(faulted)
        assert {d.kind for d in defects} == {"non_finite"}
        assert len(defects) == int(round(0.3 * clean_trace.n_packets))

    def test_zero_power_packet_detected(self, clean_trace):
        csi = clean_trace.csi.copy()
        csi[2] = 0.0
        defects = classify_defects(CsiTrace(csi=csi, snr_db=clean_trace.snr_db))
        assert [d.kind for d in defects] == ["zero_power_packet"]
        assert defects[0].packet == 2

    def test_dead_antenna_detected_structurally(self, clean_trace):
        faulted, _ = AntennaDropout(antennas=(1,)).apply(
            clean_trace, np.random.default_rng(0)
        )
        defects = classify_defects(faulted)
        assert [d.kind for d in defects] == ["zero_power_antenna"]
        assert defects[0].antenna == 1

    def test_empty_trace_detected(self):
        empty = CsiTrace(csi=np.zeros((0, 3, 16), dtype=complex), snr_db=10.0)
        defects = classify_defects(empty)
        assert [d.kind for d in defects] == ["empty"]

    def test_shape_mismatch_detected(self, clean_trace):
        defects = classify_defects(clean_trace, expected_shape=(4, 30))
        assert [d.kind for d in defects] == ["shape_mismatch"]


class TestSanitization:
    def test_quarantines_poisoned_packets(self, clean_trace):
        faulted, _ = ValueCorruption(fraction=0.3).apply(
            clean_trace, np.random.default_rng(0)
        )
        sanitized, report = sanitize_trace(faulted)
        n_bad = int(round(0.3 * clean_trace.n_packets))
        assert report.n_quarantined == n_bad
        assert sanitized.n_packets == clean_trace.n_packets - n_bad
        assert np.isfinite(sanitized.csi).all()
        assert sanitized.detection_delays_s.shape[0] in (0, sanitized.n_packets)

    def test_surviving_packets_are_bitwise_originals(self, clean_trace):
        faulted, _ = ValueCorruption(fraction=0.2).apply(
            clean_trace, np.random.default_rng(0)
        )
        sanitized, report = sanitize_trace(faulted)
        keep = [p for p in range(clean_trace.n_packets) if p not in report.quarantined_packets]
        np.testing.assert_array_equal(sanitized.csi, clean_trace.csi[keep])

    def test_all_packets_bad_raises(self, clean_trace):
        csi = clean_trace.csi.copy()
        csi[:, 0, 0] = np.nan
        with pytest.raises(ValidationError, match="all .* packets quarantined"):
            sanitize_trace(CsiTrace(csi=csi, snr_db=clean_trace.snr_db))

    def test_empty_trace_raises(self):
        empty = CsiTrace(csi=np.zeros((0, 3, 16), dtype=complex), snr_db=10.0)
        with pytest.raises(ValidationError, match="empty"):
            sanitize_trace(empty)

    def test_shape_mismatch_raises(self, clean_trace):
        with pytest.raises(ValidationError, match="shape_mismatch"):
            sanitize_trace(clean_trace, expected_shape=(4, 30))

    def test_dead_antenna_survives_but_is_reported(self, clean_trace):
        faulted, _ = AntennaDropout(antennas=(0,)).apply(
            clean_trace, np.random.default_rng(0)
        )
        sanitized, report = sanitize_trace(faulted)
        # A dead antenna is degradation, not grounds for rejection.
        assert sanitized is faulted
        assert report.dead_antennas == (0,)

    def test_report_round_trips_to_json(self, clean_trace):
        import json

        faulted, _ = ValueCorruption(fraction=0.3).apply(
            clean_trace, np.random.default_rng(0)
        )
        _, report = sanitize_trace(faulted)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["quarantined_packets"] == list(report.quarantined_packets)
