"""End-to-end chaos acceptance tests.

The scenario from the robustness acceptance criteria: a 6-AP world
where 2 APs are killed, a third loses an antenna, and 20% of every
surviving AP's packets are NaN-corrupted — and the pipeline still
produces a :class:`~repro.core.localization.DegradedResult` per
location, deterministically, at any worker count.

These run the full estimator per AP per location, so they carry the
``chaos`` marker alongside the tier-1 suite.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import demo_scenario, run_chaos_experiment

pytestmark = pytest.mark.chaos

#: One small world, analyzed once per module (the experiment is pure).
_KWARGS = dict(n_aps=6, n_locations=2, n_packets=8, seed=3)


@pytest.fixture(scope="module")
def chaos_result():
    return run_chaos_experiment(**_KWARGS)


class TestGracefulDegradation:
    def test_every_location_gets_a_fix_not_an_exception(self, chaos_result):
        assert chaos_result.n_located == len(chaos_result.locations)
        for outcome in chaos_result.locations:
            assert outcome.fix is not None
            assert outcome.quorum_failure is None

    def test_fixes_are_degraded_and_scored(self, chaos_result):
        for outcome in chaos_result.locations:
            fix = outcome.fix
            assert fix.degraded
            assert 0.0 < fix.confidence <= 1.0
            assert len(fix.used_aps) == 4  # 6 APs minus the 2 outages
            assert len(fix.dropped_aps) == 2
            assert all("outage" in ap.reason for ap in fix.dropped_aps)

    def test_validation_gate_quarantined_the_corruption(self, chaos_result):
        # 20% of 8 packets ≈ 2 per surviving AP; 4 survivors × 2 locations.
        assert chaos_result.report.n_quarantined_packets == 16
        assert chaos_result.report.n_failures == 0

    def test_injection_log_matches_the_scenario(self, chaos_result):
        for outcome in chaos_result.locations:
            kinds = [record.fault.kind for record in outcome.injection.injected]
            assert kinds.count("ap_outage") == 2
            assert kinds.count("antenna_dropout") == 1
            assert kinds.count("value_corruption") == 4
            assert outcome.injection.dead == (4, 5)

    def test_degradation_rows_render(self, chaos_result):
        from repro.experiments.reporting.markdown import format_degradation_table

        table = format_degradation_table(chaos_result.degradation_rows())
        assert "| location |" in table
        assert "AP outage" in table
        assert table.count("\n") == 2 + len(chaos_result.locations)

    def test_result_is_json_serializable(self, chaos_result):
        payload = json.loads(json.dumps(chaos_result.to_dict()))
        assert payload["n_located"] == 2
        assert payload["report"]["n_quarantined_packets"] == 16
        assert payload["metrics"]["chaos.aps_killed"]["value"] == 4.0


class TestChaosDeterminism:
    def test_rerun_is_byte_identical(self, chaos_result):
        rerun = run_chaos_experiment(**_KWARGS)
        assert json.dumps(rerun.to_dict()["locations"], sort_keys=True) == json.dumps(
            chaos_result.to_dict()["locations"], sort_keys=True
        )

    def test_worker_count_does_not_change_results(self, chaos_result):
        parallel = run_chaos_experiment(**_KWARGS, workers=2)
        assert json.dumps(parallel.to_dict()["locations"], sort_keys=True) == json.dumps(
            chaos_result.to_dict()["locations"], sort_keys=True
        )

    def test_different_seed_changes_the_world(self, chaos_result):
        other = run_chaos_experiment(n_aps=6, n_locations=2, n_packets=8, seed=4)
        assert json.dumps(other.to_dict()["locations"]) != json.dumps(
            chaos_result.to_dict()["locations"]
        )


class TestChaosValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            run_chaos_experiment(n_locations=0)
        with pytest.raises(ConfigurationError):
            run_chaos_experiment(band="nope")

    def test_scenario_killing_too_many_aps_hits_quorum(self):
        scenario = demo_scenario(4, seed=0)
        result = run_chaos_experiment(
            scenario, n_aps=4, n_locations=1, n_packets=6, seed=0, min_quorum=3
        )
        outcome = result.locations[0]
        assert outcome.fix is None
        assert "below quorum" in outcome.quorum_failure
        assert result.n_located == 0
