"""Unit tests for the CSI fault injectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FaultInjectionError
from repro.faults import (
    INJECTORS,
    AntennaDropout,
    ApOutage,
    PacketDuplication,
    PacketLoss,
    PhaseGlitch,
    SnrCollapse,
    SubcarrierNulling,
    ValueCorruption,
)


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestDeterminismAndPurity:
    @pytest.mark.parametrize(
        "injector",
        [
            AntennaDropout(n_antennas=1),
            SubcarrierNulling(fraction=0.25),
            PacketLoss(probability=0.4),
            PacketDuplication(probability=0.4),
            PhaseGlitch(probability=0.5),
            ValueCorruption(fraction=0.3),
            SnrCollapse(drop_db=8.0),
        ],
        ids=lambda injector: type(injector).__name__,
    )
    def test_same_seed_reproduces_identical_fault(self, clean_trace, injector):
        first, faults_a = injector.apply(clean_trace, _rng(42))
        second, faults_b = injector.apply(clean_trace, _rng(42))
        assert first.equals(second)
        assert faults_a == faults_b

    def test_input_trace_is_never_mutated(self, clean_trace):
        original = clean_trace.csi.copy()
        for injector in (
            AntennaDropout(),
            SubcarrierNulling(fraction=0.25),
            PacketLoss(probability=0.5),
            PhaseGlitch(probability=0.9),
            ValueCorruption(fraction=0.5),
            SnrCollapse(),
        ):
            injector.apply(clean_trace, _rng(1))
            np.testing.assert_array_equal(clean_trace.csi, original)

    def test_different_seeds_differ(self, clean_trace):
        injector = ValueCorruption(fraction=0.3)
        first, _ = injector.apply(clean_trace, _rng(0))
        second, _ = injector.apply(clean_trace, _rng(1))
        assert not first.equals(second)


class TestInjectorInvariants:
    def test_antenna_dropout_keeps_one_alive(self, clean_trace):
        injector = AntennaDropout(n_antennas=99)  # way more than exist
        faulted, faults = injector.apply(clean_trace, _rng(0))
        power = np.sum(np.abs(faulted.csi) ** 2, axis=(0, 2))
        assert np.count_nonzero(power) >= 1
        assert faults[0].kind == "antenna_dropout"

    def test_antenna_dropout_pinned_victims(self, clean_trace):
        faulted, _ = AntennaDropout(antennas=(1,)).apply(clean_trace, _rng(0))
        assert np.all(faulted.csi[:, 1, :] == 0)
        assert np.any(faulted.csi[:, 0, :] != 0)

    def test_antenna_dropout_rejects_killing_all(self, clean_trace):
        victims = tuple(range(clean_trace.n_antennas))
        with pytest.raises(FaultInjectionError):
            AntennaDropout(antennas=victims).apply(clean_trace, _rng(0))

    def test_subcarrier_nulling_zeroes_selected_bins(self, clean_trace):
        faulted, faults = SubcarrierNulling(fraction=0.25).apply(clean_trace, _rng(0))
        power = np.sum(np.abs(faulted.csi) ** 2, axis=(0, 1))
        n_nulled = int(round(0.25 * clean_trace.n_subcarriers))
        assert np.count_nonzero(power == 0) == n_nulled
        assert faults[0].kind == "subcarrier_null"

    def test_packet_loss_keeps_one_packet(self, clean_trace):
        faulted, _ = PacketLoss(probability=1.0).apply(clean_trace, _rng(0))
        assert faulted.n_packets == 1

    def test_packet_loss_slices_detection_delays(self, clean_trace):
        faulted, faults = PacketLoss(probability=0.5).apply(clean_trace, _rng(3))
        assert faulted.n_packets < clean_trace.n_packets
        assert faulted.detection_delays_s.shape[0] == faulted.n_packets
        assert faults[0].kind == "packet_loss"

    def test_packet_duplication_grows_the_trace(self, clean_trace):
        faulted, faults = PacketDuplication(probability=1.0).apply(clean_trace, _rng(0))
        assert faulted.n_packets == 2 * clean_trace.n_packets
        np.testing.assert_array_equal(faulted.csi[0], faulted.csi[1])
        assert faulted.detection_delays_s.shape[0] == faulted.n_packets
        assert faults[0].kind == "packet_duplication"

    def test_phase_glitch_preserves_magnitude(self, clean_trace):
        faulted, _ = PhaseGlitch(probability=1.0).apply(clean_trace, _rng(0))
        np.testing.assert_allclose(np.abs(faulted.csi), np.abs(clean_trace.csi))
        assert not np.allclose(faulted.csi, clean_trace.csi)

    def test_value_corruption_poisons_expected_packets(self, clean_trace):
        faulted, faults = ValueCorruption(fraction=0.3).apply(clean_trace, _rng(0))
        bad = ~np.isfinite(faulted.csi).all(axis=(1, 2))
        assert np.count_nonzero(bad) == int(round(0.3 * clean_trace.n_packets))
        assert faults[0].kind == "value_corruption"

    def test_value_corruption_inf_mode(self, clean_trace):
        faulted, _ = ValueCorruption(fraction=0.2, mode="inf").apply(clean_trace, _rng(0))
        assert np.isinf(faulted.csi.real).any() or np.isinf(faulted.csi.imag).any()
        assert not np.isnan(faulted.csi.real).any()

    def test_snr_collapse_updates_snr_and_adds_noise(self, clean_trace):
        faulted, faults = SnrCollapse(drop_db=10.0).apply(clean_trace, _rng(0))
        assert faulted.snr_db == pytest.approx(clean_trace.snr_db - 10.0)
        assert not np.allclose(faulted.csi, clean_trace.csi)
        assert faults[0].kind == "snr_collapse"

    def test_ap_outage_returns_none(self, clean_trace):
        faulted, faults = ApOutage().apply(clean_trace, _rng(0))
        assert faulted is None
        assert faults[0].kind == "ap_outage"

    def test_zero_rate_faults_are_noops(self, clean_trace):
        for injector in (
            SubcarrierNulling(fraction=0.0),
            PacketLoss(probability=0.0),
            PacketDuplication(probability=0.0),
            PhaseGlitch(probability=0.0),
            ValueCorruption(fraction=0.0),
        ):
            faulted, faults = injector.apply(clean_trace, _rng(0))
            assert faulted is clean_trace
            assert faults == []


class TestParameterValidation:
    def test_fractions_must_be_fractions(self):
        with pytest.raises(FaultInjectionError):
            SubcarrierNulling(fraction=1.5)
        with pytest.raises(FaultInjectionError):
            PacketLoss(probability=-0.1)
        with pytest.raises(FaultInjectionError):
            ValueCorruption(fraction=2.0)

    def test_other_knobs_validated(self):
        with pytest.raises(FaultInjectionError):
            AntennaDropout(n_antennas=0)
        with pytest.raises(FaultInjectionError):
            PhaseGlitch(max_jump_rad=0.0)
        with pytest.raises(FaultInjectionError):
            ValueCorruption(entries_per_packet=0)
        with pytest.raises(FaultInjectionError):
            ValueCorruption(mode="zero")
        with pytest.raises(FaultInjectionError):
            SnrCollapse(drop_db=-1.0)

    def test_catalogue_lists_every_injector(self):
        assert len(INJECTORS) == 10
        kinds = {injector.kind for injector in INJECTORS}
        assert len(kinds) == 10
