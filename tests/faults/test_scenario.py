"""Unit tests for chaos scenarios (seeded fault composition)."""

from __future__ import annotations

import pytest

from repro.exceptions import FaultInjectionError
from repro.faults import (
    AntennaDropout,
    ApFault,
    ApOutage,
    ChaosScenario,
    PacketLoss,
    ValueCorruption,
    demo_scenario,
)


@pytest.fixture
def traces(clean_trace):
    """Four identical APs' worth of the clean trace."""
    return [clean_trace] * 4


class TestScenarioApplication:
    def test_reapplication_is_byte_identical(self, traces):
        scenario = demo_scenario(4, seed=9)
        first = scenario.apply(traces, salt=3)
        second = scenario.apply(traces, salt=3)
        assert first.injected == second.injected
        for a, b in zip(first.traces, second.traces):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.equals(b)

    def test_salt_decorrelates_locations(self, traces):
        scenario = ChaosScenario(
            faults=(ApFault(ap=0, injector=ValueCorruption(fraction=0.3)),), seed=5
        )
        at_zero = scenario.apply(traces, salt=0)
        at_one = scenario.apply(traces, salt=1)
        assert not at_zero.traces[0].equals(at_one.traces[0])

    def test_outage_yields_none_and_dead_index(self, traces):
        scenario = ChaosScenario(faults=(ApFault(ap=2, injector=ApOutage()),))
        result = scenario.apply(traces)
        assert result.traces[2] is None
        assert result.dead == (2,)
        assert result.surviving == (0, 1, 3)

    def test_faults_on_other_aps_do_not_interact(self, traces):
        """AP 1's corruption is identical whether or not AP 0 is also faulted."""
        solo = ChaosScenario(
            faults=(ApFault(ap=1, injector=ValueCorruption(fraction=0.3)),), seed=2
        )
        paired = ChaosScenario(
            faults=(
                ApFault(ap=0, injector=PacketLoss(probability=0.5)),
                ApFault(ap=1, injector=ValueCorruption(fraction=0.3)),
            ),
            seed=2,
        )
        # The AP-1 fault sits at a different chain position in the two
        # scenarios, so pin it to the same position via a leading no-op.
        assert paired.apply(traces).traces[1].equals(
            ChaosScenario(
                faults=(
                    ApFault(ap=0, injector=PacketLoss(probability=0.0)),
                    ApFault(ap=1, injector=ValueCorruption(fraction=0.3)),
                ),
                seed=2,
            ).apply(traces).traces[1]
        )
        assert solo is not None  # solo kept for readability of intent

    def test_injection_log_records_every_fault(self, traces):
        scenario = demo_scenario(4, seed=0)
        result = scenario.apply(traces)
        kinds = [record.fault.kind for record in result.injected]
        assert kinds.count("ap_outage") == 2
        assert "antenna_dropout" in kinds
        assert "value_corruption" in kinds

    def test_faults_after_outage_are_skipped(self, traces):
        scenario = ChaosScenario(
            faults=(
                ApFault(ap=0, injector=ApOutage()),
                ApFault(ap=0, injector=ValueCorruption(fraction=0.5)),
            )
        )
        result = scenario.apply(traces)
        assert result.traces[0] is None
        assert [r.fault.kind for r in result.injected] == ["ap_outage"]

    def test_out_of_range_ap_rejected(self, traces):
        scenario = ChaosScenario(faults=(ApFault(ap=7, injector=ApOutage()),))
        with pytest.raises(FaultInjectionError, match="targets AP 7"):
            scenario.apply(traces)

    def test_to_dict_and_describe(self, traces):
        scenario = demo_scenario(4, seed=1)
        result = scenario.apply(traces)
        import json

        json.dumps(result.to_dict())
        description = scenario.describe()
        assert description["name"] == "demo"
        assert len(description["faults"]) == len(scenario.faults)


class TestScenarioConstruction:
    def test_ap_fault_validates(self):
        with pytest.raises(FaultInjectionError):
            ApFault(ap=-1, injector=ApOutage())
        with pytest.raises(FaultInjectionError):
            ApFault(ap=0, injector=object())

    def test_demo_scenario_needs_four_aps(self):
        with pytest.raises(FaultInjectionError):
            demo_scenario(3)
        scenario = demo_scenario(6, seed=0, corrupt_fraction=0.25)
        assert len([f for f in scenario.faults if isinstance(f.injector, ApOutage)]) == 2
        assert len(
            [f for f in scenario.faults if isinstance(f.injector, AntennaDropout)]
        ) == 1
