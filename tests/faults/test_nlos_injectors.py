"""Unit tests for the measurement-domain NLOS injectors.

These injectors corrupt the arrival *geometry* rather than the sample
values, so the assertions here are spectral: a beamformer sweep over
the faulted trace must show the apparent AoA/ToA moving the way the
physics says it should, while the ground-truth fields stay untouched.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.faults as faults_pkg
from repro.channel.csi import CsiSynthesizer
from repro.channel.paths import random_profile
from repro.exceptions import FaultInjectionError
from repro.faults import INJECTORS, GhostPath, NlosBias

SPACING_WAVELENGTHS = 0.5
SUBCARRIER_SPACING_HZ = 1.25e6


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def _apparent_aoa(trace) -> float:
    """Bartlett-beamformer AoA estimate pooled over packets/subcarriers."""
    angles = np.linspace(0.0, 180.0, 721)
    steering = np.exp(
        -2j
        * np.pi
        * SPACING_WAVELENGTHS
        * np.cos(np.deg2rad(angles))[:, None]
        * np.arange(trace.n_antennas)[None, :]
    )
    snapshots = np.transpose(trace.csi, (0, 2, 1)).reshape(-1, trace.n_antennas)
    power = np.abs(snapshots @ steering.conj().T) ** 2
    return float(angles[int(np.argmax(power.sum(axis=0)))])


def _apparent_toa(trace) -> float:
    """Delay-beamformer ToA estimate pooled over packets/antennas."""
    delays = np.linspace(0.0, 600e-9, 601)
    ramps = np.exp(
        -2j
        * np.pi
        * SUBCARRIER_SPACING_HZ
        * delays[:, None]
        * np.arange(trace.n_subcarriers)[None, :]
    )
    snapshots = trace.csi.reshape(-1, trace.n_subcarriers)
    power = np.abs(snapshots @ ramps.conj().T) ** 2
    return float(delays[int(np.argmax(power.sum(axis=0)))])


@pytest.fixture
def los_trace(array, layout, clean_impairments, rng):
    """A strongly line-of-sight trace with a late direct ToA.

    ``direct_toa_s=200 ns`` leaves room for a negative-delay ghost to
    land well inside the observable delay window, and the −12 dB
    reflections keep the clean beamformer peak pinned to the LoS path.
    """
    synthesizer = CsiSynthesizer(array, layout, clean_impairments, seed=11)
    profile = random_profile(
        rng,
        n_paths=3,
        direct_aoa_deg=70.0,
        direct_toa_s=200e-9,
        reflection_power_db=-12.0,
    )
    return synthesizer.packets(profile, n_packets=8, snr_db=25.0, rng=rng)


class TestNlosBias:
    def test_shifts_apparent_aoa_by_bias(self, los_trace):
        clean_aoa = _apparent_aoa(los_trace)
        faulted, faults = NlosBias(bias_deg=20.0, n_scatter=0).apply(los_trace, _rng(0))
        shift = _apparent_aoa(faulted) - clean_aoa
        assert shift == pytest.approx(20.0, abs=4.0)
        assert faults[0].kind == "nlos_bias"
        assert "aoa" in faults[0].detail

    def test_negative_bias_shifts_the_other_way(self, los_trace):
        clean_aoa = _apparent_aoa(los_trace)
        faulted, _ = NlosBias(bias_deg=-20.0, n_scatter=0).apply(los_trace, _rng(0))
        assert _apparent_aoa(faulted) - clean_aoa == pytest.approx(-20.0, abs=4.0)

    def test_ground_truth_fields_untouched(self, los_trace):
        faulted, _ = NlosBias(bias_deg=18.0).apply(los_trace, _rng(3))
        assert faulted.direct_aoa_deg == los_trace.direct_aoa_deg
        assert faulted.direct_toa_s == los_trace.direct_toa_s
        assert faulted.csi.shape == los_trace.csi.shape

    def test_input_trace_not_mutated(self, los_trace):
        original = los_trace.csi.copy()
        NlosBias(bias_deg=18.0).apply(los_trace, _rng(0))
        np.testing.assert_array_equal(los_trace.csi, original)

    def test_deterministic_given_seed(self, los_trace):
        first, faults_a = NlosBias(bias_deg=18.0).apply(los_trace, _rng(42))
        second, faults_b = NlosBias(bias_deg=18.0).apply(los_trace, _rng(42))
        assert first.equals(second)
        assert faults_a == faults_b

    def test_scatter_decorrelates_with_seed(self, los_trace):
        first, _ = NlosBias(bias_deg=18.0, n_scatter=3).apply(los_trace, _rng(0))
        second, _ = NlosBias(bias_deg=18.0, n_scatter=3).apply(los_trace, _rng(1))
        assert not first.equals(second)

    def test_pure_rotation_preserves_power(self, los_trace):
        faulted, _ = NlosBias(bias_deg=25.0, n_scatter=0).apply(los_trace, _rng(0))
        assert np.linalg.norm(faulted.csi) == pytest.approx(
            np.linalg.norm(los_trace.csi), rel=1e-12
        )

    def test_requires_direct_aoa_ground_truth(self, los_trace):
        blind = dataclasses.replace(los_trace, direct_aoa_deg=float("nan"))
        with pytest.raises(FaultInjectionError, match="direct_aoa_deg"):
            NlosBias(bias_deg=18.0).apply(blind, _rng(0))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bias_deg": 0.0},
            {"bias_deg": float("inf")},
            {"n_scatter": -1},
            {"scatter_amplitude": -0.5},
            {"spacing_wavelengths": 0.7},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(FaultInjectionError):
            NlosBias(**kwargs)


class TestGhostPath:
    def test_ghost_arrives_before_direct_path(self, los_trace):
        clean_toa = _apparent_toa(los_trace)
        injector = GhostPath(amplitude=3.0, delay_offset_s=-100e-9)
        faulted, faults = injector.apply(los_trace, _rng(0))
        ghost_toa = _apparent_toa(faulted)
        # The smallest-ToA direct-path rule would now pick the ghost.
        assert ghost_toa == pytest.approx(clean_toa - 100e-9, abs=20e-9)
        assert faults[0].kind == "ghost_path"

    def test_strong_ghost_captures_the_aoa_peak(self, los_trace):
        clean_aoa = _apparent_aoa(los_trace)
        faulted, _ = GhostPath(amplitude=3.0, aoa_offset_deg=40.0).apply(
            los_trace, _rng(0)
        )
        assert _apparent_aoa(faulted) - clean_aoa == pytest.approx(40.0, abs=6.0)

    def test_ground_truth_fields_untouched(self, los_trace):
        faulted, _ = GhostPath().apply(los_trace, _rng(0))
        assert faulted.direct_aoa_deg == los_trace.direct_aoa_deg
        assert faulted.direct_toa_s == los_trace.direct_toa_s

    def test_deterministic_given_seed(self, los_trace):
        first, _ = GhostPath().apply(los_trace, _rng(7))
        second, _ = GhostPath().apply(los_trace, _rng(7))
        assert first.equals(second)

    def test_fading_phase_varies_with_seed(self, los_trace):
        first, _ = GhostPath().apply(los_trace, _rng(0))
        second, _ = GhostPath().apply(los_trace, _rng(1))
        assert not first.equals(second)

    def test_requires_direct_aoa_ground_truth(self, los_trace):
        blind = dataclasses.replace(los_trace, direct_aoa_deg=float("nan"))
        with pytest.raises(FaultInjectionError, match="direct_aoa_deg"):
            GhostPath().apply(blind, _rng(0))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"amplitude": 0.0},
            {"amplitude": float("nan")},
            {"aoa_offset_deg": 0.0},
            {"delay_offset_s": float("nan")},
            {"spacing_wavelengths": 0.6},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(FaultInjectionError):
            GhostPath(**kwargs)


class TestCatalogue:
    def test_nlos_injectors_in_catalogue(self):
        assert NlosBias in INJECTORS
        assert GhostPath in INJECTORS

    def test_package_exports(self):
        assert "NlosBias" in faults_pkg.__all__
        assert "GhostPath" in faults_pkg.__all__
