"""Chaos sweeps resume from their checkpoint with identical results.

The hard-crash (SIGKILL) path is exercised subprocess-style by
``tests/runtime/test_resume_parity.py``; here the preemption is
simulated deterministically by truncating the faulted-batch journal to
a partial prefix, which is exactly the state a killed run leaves behind
after torn-tail recovery.  The resumed run must replay the surviving
records, recompute the rest under the same retry policy, and produce a
byte-identical degradation report.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import RoArrayConfig
from repro.core.grids import AngleGrid, DelayGrid
from repro.faults import run_chaos_experiment
from repro.runtime import ExecutionPolicy

pytestmark = pytest.mark.chaos


def _kwargs() -> dict:
    return dict(
        n_aps=4,
        n_locations=2,
        n_packets=4,
        seed=3,
        policy=ExecutionPolicy(validate=True, max_retries=1),
        config=RoArrayConfig(
            angle_grid=AngleGrid(n_points=61),
            delay_grid=DelayGrid(n_points=21, stop_s=800e-9),
            max_iterations=150,
        ),
    )


def _locations_json(result) -> str:
    return json.dumps(result.to_dict()["locations"], sort_keys=True)


class TestChaosCheckpointResume:
    def test_truncated_journal_resumes_byte_identically(self, tmp_path):
        reference = run_chaos_experiment(**_kwargs())
        first = run_chaos_experiment(**_kwargs(), checkpoint_dir=tmp_path)
        assert first.report.n_replayed == 0
        assert _locations_json(first) == _locations_json(reference)

        # Preempt: keep the header plus the first two faulted-job records.
        journal = tmp_path / "chaos_faulted.jsonl"
        lines = journal.read_text().splitlines()
        assert len(lines) > 3  # header + >2 job records to truncate away
        journal.write_text("\n".join(lines[:3]) + "\n")

        resumed = run_chaos_experiment(**_kwargs(), checkpoint_dir=tmp_path)
        assert resumed.report.n_replayed == 2
        assert _locations_json(resumed) == _locations_json(reference)
        # The merged report keeps the full failure/quarantine taxonomy —
        # replayed outcomes contribute their original counts.
        for key in ("n_jobs", "n_failures", "n_quarantined_packets", "n_fallbacks"):
            assert resumed.report.to_dict()[key] == reference.report.to_dict()[key]

    def test_completed_checkpoint_replays_everything(self, tmp_path):
        first = run_chaos_experiment(**_kwargs(), checkpoint_dir=tmp_path)
        rerun = run_chaos_experiment(**_kwargs(), checkpoint_dir=tmp_path)
        assert rerun.report.n_replayed == rerun.report.n_jobs > 0
        assert _locations_json(rerun) == _locations_json(first)
