"""End-to-end NLOS drill harness tests.

The full 10-trial drills run in CI's ``nlos-smoke`` job (and via
``roarray chaos --scenario nlos_*``); here we pin the harness contract
on a reduced working point: validation, scorecard shape, and the same
determinism guarantees the chaos runner makes — identical results at
any worker count and across a checkpoint resume.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import RoArrayConfig
from repro.core.grids import AngleGrid, DelayGrid
from repro.exceptions import ConfigurationError
from repro.faults.nlos import (
    NLOS_SCENARIOS,
    NlosSuiteResult,
    nlos_scenario,
    run_nlos_drill,
)

pytestmark = pytest.mark.nlos


def _kwargs() -> dict:
    return dict(
        n_trials=2,
        n_aps=4,
        n_packets=4,
        seed=5,
        config=RoArrayConfig(
            angle_grid=AngleGrid(n_points=61),
            delay_grid=DelayGrid(n_points=21, stop_s=800e-9),
            max_iterations=150,
        ),
    )


def _drill_json(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestDrillValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown NLOS scenario"):
            run_nlos_drill("nlos_everything")

    def test_bad_trial_count_rejected(self):
        with pytest.raises(ConfigurationError, match="n_trials"):
            run_nlos_drill("nlos_single_ap", n_trials=0)

    def test_sub_floor_bias_rejected(self):
        with pytest.raises(ConfigurationError, match="bias_deg"):
            run_nlos_drill("nlos_single_ap", bias_deg=10.0)

    def test_scenario_victims_validated(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            nlos_scenario("nlos_single_ap", n_aps=4, victims=(7,))

    def test_scenario_catalogue(self):
        assert NLOS_SCENARIOS == ("nlos_single_ap", "nlos_majority", "ghost_multipath")


class TestDrillHarness:
    def test_drill_shape_and_scorecard(self):
        result = run_nlos_drill("nlos_single_ap", **_kwargs())
        assert result.name == "nlos_single_ap"
        assert len(result.trials) == 2
        for trial in result.trials:
            assert len(trial.victims) == 1
            assert set(trial.trust) <= set(trial.evidence)
            assert trial.clean_error_m >= 0.0
        suite = NlosSuiteResult(drills=[result])
        scorecard = suite.scorecard()
        assert scorecard["n_scenarios"] == 1
        assert scorecard["scenarios"][0]["name"] == "nlos_single_ap"
        json.dumps(scorecard)  # must be JSON-serializable as-is

    def test_majority_drill_rotates_honest_ap(self):
        result = run_nlos_drill("nlos_majority", **_kwargs())
        for trial in result.trials:
            assert len(trial.victims) == 3

    def test_workers_parity(self):
        serial = run_nlos_drill("ghost_multipath", **_kwargs(), workers=0)
        parallel = run_nlos_drill("ghost_multipath", **_kwargs(), workers=2)
        assert serial.to_dict()["trials"] == parallel.to_dict()["trials"]

    def test_checkpoint_resume_is_byte_identical(self, tmp_path):
        reference = run_nlos_drill("nlos_single_ap", **_kwargs())
        first = run_nlos_drill("nlos_single_ap", **_kwargs(), checkpoint_dir=tmp_path)
        assert _drill_json(first) == _drill_json(reference)

        # Preempt: truncate the faulted-batch journal to a partial prefix,
        # the state a killed run leaves behind after torn-tail recovery.
        journal = tmp_path / "nlos_nlos_single_ap_faulted.jsonl"
        lines = journal.read_text().splitlines()
        assert len(lines) > 3
        journal.write_text("\n".join(lines[:3]) + "\n")

        resumed = run_nlos_drill("nlos_single_ap", **_kwargs(), checkpoint_dir=tmp_path)
        assert _drill_json(resumed) == _drill_json(reference)
