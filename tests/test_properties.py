"""Cross-cutting property-based tests (hypothesis).

These pin the invariants that hold across the whole parameter space,
complementing the example-based tests in each module's suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.array import UniformLinearArray
from repro.channel.csi import synthesize_csi_matrix
from repro.channel.geometry import AccessPoint, Room, trace_paths
from repro.channel.ofdm import SubcarrierLayout
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.core.steering import vectorize_csi_matrix
from repro.spectral.pdp import power_delay_profile

angles = st.floats(0.0, 180.0, allow_nan=False)
delays = st.floats(0.0, 700e-9, allow_nan=False)


class TestSteeringInvariants:
    @given(angles, delays)
    @settings(max_examples=40, deadline=None)
    def test_csi_magnitude_is_gain_magnitude(self, aoa, toa):
        """A unit-gain single path yields |CSI| ≡ 1 at every cell —
        steering only rotates phases."""
        array = UniformLinearArray()
        layout = SubcarrierLayout(n_subcarriers=8, spacing=1.25e6)
        profile = MultipathProfile(paths=[PropagationPath(aoa, toa, 1.0, is_direct=True)])
        csi = synthesize_csi_matrix(profile, array, layout)
        np.testing.assert_allclose(np.abs(csi), 1.0, atol=1e-12)

    @given(angles, delays, st.complex_numbers(min_magnitude=0.1, max_magnitude=10.0,
                                              allow_nan=False, allow_infinity=False))
    @settings(max_examples=40, deadline=None)
    def test_linearity_in_gain(self, aoa, toa, gain):
        array = UniformLinearArray()
        layout = SubcarrierLayout(n_subcarriers=8, spacing=1.25e6)
        unit = MultipathProfile(paths=[PropagationPath(aoa, toa, 1.0, is_direct=True)])
        scaled = MultipathProfile(paths=[PropagationPath(aoa, toa, gain, is_direct=True)])
        np.testing.assert_allclose(
            synthesize_csi_matrix(scaled, array, layout),
            gain * synthesize_csi_matrix(unit, array, layout),
            atol=1e-9,
        )

    @given(angles, delays)
    @settings(max_examples=40, deadline=None)
    def test_vectorization_preserves_energy(self, aoa, toa):
        array = UniformLinearArray()
        layout = SubcarrierLayout(n_subcarriers=8, spacing=1.25e6)
        profile = MultipathProfile(paths=[PropagationPath(aoa, toa, 0.7j, is_direct=True)])
        csi = synthesize_csi_matrix(profile, array, layout)
        assert np.linalg.norm(vectorize_csi_matrix(csi)) == pytest.approx(
            np.linalg.norm(csi)
        )


class TestGeometryInvariants:
    @given(st.floats(1.0, 17.0), st.floats(1.0, 11.0))
    @settings(max_examples=40, deadline=None)
    def test_direct_path_is_always_earliest(self, x, y):
        room = Room()
        receiver = AccessPoint(position=(0.0, 6.0), axis_direction_deg=90.0)
        if (x, y) == (0.0, 6.0):
            return
        profile = trace_paths(room, np.array([x, y]), receiver, 0.056, max_reflections=2)
        assert profile.direct_path.toa_s == min(profile.toas_s)

    @given(st.floats(1.0, 17.0), st.floats(1.0, 11.0))
    @settings(max_examples=40, deadline=None)
    def test_all_aoas_in_physical_range(self, x, y):
        room = Room()
        receiver = AccessPoint(position=(9.0, 0.0), axis_direction_deg=0.0)
        profile = trace_paths(room, np.array([x, y]), receiver, 0.056, max_reflections=2)
        assert np.all((profile.aoas_deg >= 0.0) & (profile.aoas_deg <= 180.0))

    @given(st.floats(1.0, 17.0), st.floats(1.0, 11.0))
    @settings(max_examples=40, deadline=None)
    def test_reflections_never_stronger_than_direct(self, x, y):
        room = Room(reflection_coefficient=0.7)
        receiver = AccessPoint(position=(0.0, 6.0), axis_direction_deg=90.0)
        profile = trace_paths(room, np.array([x, y]), receiver, 0.056, max_reflections=2)
        direct_gain = abs(profile.direct_path.gain)
        for path in profile.paths:
            if not path.is_direct:
                assert abs(path.gain) <= direct_gain + 1e-12


class TestPdpInvariants:
    @given(delays)
    @settings(max_examples=30, deadline=None)
    def test_oversampling_preserves_peak_location(self, toa):
        array = UniformLinearArray()
        layout = SubcarrierLayout(n_subcarriers=16, spacing=1.25e6)
        profile = MultipathProfile(paths=[PropagationPath(90.0, toa, 1.0, is_direct=True)])
        csi = synthesize_csi_matrix(profile, array, layout)
        coarse = power_delay_profile(csi, layout, oversample=2)
        fine = power_delay_profile(csi, layout, oversample=16)
        resolution = 1.0 / (layout.n_subcarriers * layout.spacing)
        # Peaks agree modulo the aliasing range.
        span = layout.max_unambiguous_delay
        delta = abs(coarse.strongest_delay() - fine.strongest_delay())
        delta = min(delta, span - delta)
        assert delta <= resolution
