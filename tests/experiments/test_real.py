"""run_real_trace_experiment: real captures through the batch runtime."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import run_real_trace_experiment

FIXTURES = "tests/fixtures/real_captures"
LAB_SOURCES = [
    "dataset://lab/ap-west",
    "dataset://lab/ap-east",
    "dataset://lab/ap-south-1",
]


def drop_timings(payload):
    """Everything but the (wall-clock, nondeterministic) batch report."""
    return {k: v for k, v in payload.items() if k != "report"}


class TestEndToEnd:
    def test_localizes_from_committed_captures(self):
        result = run_real_trace_experiment(
            LAB_SOURCES, registry=FIXTURES, localize=True
        )
        assert result.ok
        assert len(result.outcomes) == 3
        assert result.fix is not None
        assert result.fix["error_m"] == pytest.approx(0.30, abs=0.05)
        for outcome in result.outcomes:
            assert outcome.ok
            assert outcome.aoa_error_deg < 10.0

    def test_worker_parity(self):
        serial = run_real_trace_experiment(
            LAB_SOURCES, registry=FIXTURES, localize=True, workers=0
        )
        parallel = run_real_trace_experiment(
            LAB_SOURCES, registry=FIXTURES, localize=True, workers=2
        )
        assert drop_timings(serial.to_dict()) == drop_timings(parallel.to_dict())

    def test_checkpoint_resume_is_identical(self, tmp_path):
        first = run_real_trace_experiment(
            LAB_SOURCES, registry=FIXTURES, localize=True,
            checkpoint_dir=tmp_path,
        )
        resumed = run_real_trace_experiment(
            LAB_SOURCES, registry=FIXTURES, localize=True,
            checkpoint_dir=tmp_path,
        )
        assert drop_timings(resumed.to_dict()) == drop_timings(first.to_dict())

    def test_raw_stages_none(self):
        result = run_real_trace_experiment(
            ["dataset://lab/ap-west"], registry=FIXTURES, stages=None
        )
        assert len(result.outcomes) == 1

    def test_synthetic_sources_flow_through(self):
        result = run_real_trace_experiment(
            ["synthetic://random?n=2&packets=4&seed=1"], stages=None
        )
        assert [o.label for o in result.outcomes] == ["synthetic[0]", "synthetic[1]"]

    def test_localize_requires_dataset_geometry(self):
        with pytest.raises(ConfigurationError, match="dataset"):
            run_real_trace_experiment(
                ["synthetic://random?n=2&packets=3"], localize=True
            )

    def test_result_serializes(self):
        result = run_real_trace_experiment(
            ["dataset://lab/ap-west"], registry=FIXTURES
        )
        payload = result.to_dict()
        assert payload["outcomes"][0]["label"] == "dataset://lab/ap-west"
        assert payload["fix"] is None
