"""Tests for testbed scenario generation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.scenarios import (
    SNR_BANDS,
    SnrBand,
    build_random_scene,
    classroom_access_points,
    classroom_room,
    sample_client_position,
    sample_scatterers,
)


class TestClassroom:
    def test_room_dimensions_match_paper(self):
        room = classroom_room()
        assert (room.width, room.depth) == (18.0, 12.0)

    def test_six_aps_on_walls(self):
        room = classroom_room()
        aps = classroom_access_points(6, room)
        assert len(aps) == 6
        for ap in aps:
            x, y = ap.position
            on_wall = x in (0.0, room.width) or y in (0.0, room.depth)
            assert on_wall, f"{ap.name} not wall-mounted"

    def test_names_unique(self):
        names = [ap.name for ap in classroom_access_points(6)]
        assert len(set(names)) == 6

    def test_prefix_subsets(self):
        all_aps = classroom_access_points(6)
        subset = classroom_access_points(4)
        assert [a.name for a in subset] == [a.name for a in all_aps[:4]]

    def test_rejects_bad_count(self):
        with pytest.raises(ConfigurationError):
            classroom_access_points(0)
        with pytest.raises(ConfigurationError):
            classroom_access_points(7)


class TestSampling:
    def test_client_inside_margin(self, rng):
        room = classroom_room()
        for _ in range(50):
            x, y = sample_client_position(rng, room, margin=1.0)
            assert 1.0 <= x <= room.width - 1.0
            assert 1.0 <= y <= room.depth - 1.0

    def test_margin_too_large_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            sample_client_position(rng, classroom_room(), margin=7.0)

    def test_scatterers_inside_room(self, rng):
        room = classroom_room()
        scatterers = sample_scatterers(rng, room, n_scatterers=10)
        assert len(scatterers) == 10
        for x, y in scatterers:
            assert room.contains(np.array([x, y]))

    def test_scene_is_valid_and_varied(self, rng):
        scenes = [build_random_scene(rng, n_aps=4) for _ in range(3)]
        clients = {s.client for s in scenes}
        assert len(clients) == 3
        for scene in scenes:
            assert len(scene.access_points) == 4
            # Every AP yields a usable multipath profile.
            profile = scene.multipath_profile(0, 0.056)
            assert len(profile) >= 1


class TestSnrBands:
    def test_paper_band_edges(self):
        assert SNR_BANDS["high"].low_db == 15.0
        assert SNR_BANDS["medium"].low_db == 2.0
        assert SNR_BANDS["medium"].high_db == 15.0
        assert SNR_BANDS["low"].high_db == 2.0

    def test_draw_within_band(self, rng):
        for band in SNR_BANDS.values():
            for _ in range(20):
                assert band.contains(band.draw(rng))

    def test_blockage_grows_with_band_severity(self, rng):
        assert SNR_BANDS["low"].blockage_low_db > SNR_BANDS["high"].blockage_low_db
        low = [SNR_BANDS["low"].draw_blockage(rng) for _ in range(20)]
        high = [SNR_BANDS["high"].draw_blockage(rng) for _ in range(20)]
        assert np.mean(low) > np.mean(high)

    def test_degenerate_blockage_range(self, rng):
        band = SnrBand("x", 0.0, 1.0, 3.0, 3.0)
        assert band.draw_blockage(rng) == 3.0

    def test_rejects_empty_interval(self):
        with pytest.raises(ConfigurationError):
            SnrBand("bad", 5.0, 5.0)

    def test_rejects_bad_blockage(self):
        with pytest.raises(ConfigurationError):
            SnrBand("bad", 0.0, 1.0, 5.0, 2.0)
