"""Tests for the plain-text reporting helpers."""

import numpy as np

from repro.experiments.metrics import ErrorCdf
from repro.experiments.reporting.text import (
    format_cdf_series,
    format_comparison,
    format_spectrum_ascii,
)
from repro.spectral.spectrum import AngleSpectrum


class TestFormatCdfSeries:
    def test_rows_match_thresholds(self):
        cdf = ErrorCdf(np.array([0.5, 1.5, 2.5, 3.5]))
        text = format_cdf_series(cdf, thresholds=(1.0, 2.0, 4.0))
        lines = text.splitlines()
        assert len(lines) == 3
        assert "P(err <= 1 m) = 0.25" in lines[0]
        assert "P(err <= 4 m) = 1.00" in lines[2]

    def test_custom_unit(self):
        cdf = ErrorCdf(np.array([5.0]))
        assert "deg" in format_cdf_series(cdf, thresholds=(10.0,), unit="deg")


class TestFormatComparison:
    def test_contains_all_systems_and_stats(self):
        cdfs = {
            "ROArray": ErrorCdf(np.array([0.5, 1.0, 1.5])),
            "SpotFi": ErrorCdf(np.array([2.0, 3.0, 4.0])),
        }
        text = format_comparison(cdfs)
        assert "ROArray" in text and "SpotFi" in text
        assert "median=1.00 m" in text
        assert "n=3" in text

    def test_thresholds_append_cdf_rows(self):
        cdfs = {"X": ErrorCdf(np.array([1.0, 2.0]))}
        text = format_comparison(cdfs, thresholds=(1.5,))
        assert "P(err <= 1.5 m)" in text


class TestFormatSpectrumAscii:
    def make_spectrum(self):
        power = np.zeros(181)
        power[90] = 1.0
        return AngleSpectrum(np.linspace(0, 180, 181), power)

    def test_dimensions(self):
        text = format_spectrum_ascii(self.make_spectrum(), width=40, height=6)
        lines = text.splitlines()
        assert len(lines) == 7  # height rows + axis
        assert all(len(line) <= 40 for line in lines[:-1])

    def test_peak_column_filled_to_top(self):
        text = format_spectrum_ascii(self.make_spectrum(), width=40, height=6)
        top_row = text.splitlines()[0]
        assert "#" in top_row

    def test_axis_labels(self):
        text = format_spectrum_ascii(self.make_spectrum())
        assert text.splitlines()[-1].startswith("0°")
        assert "180°" in text.splitlines()[-1]

    def test_flat_spectrum_renders(self):
        spectrum = AngleSpectrum(np.linspace(0, 180, 10), np.zeros(10))
        text = format_spectrum_ascii(spectrum)
        assert "#" not in text.splitlines()[0]
