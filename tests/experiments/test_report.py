"""Tests for the markdown report generator."""

import pytest

from repro.experiments.reporting import ReportScale, generate_report


class TestReportScale:
    def test_from_factor_scales_locations(self):
        scale = ReportScale.from_factor(3)
        assert scale.locations_per_band == 18
        assert scale.ap_density_locations == 15

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ReportScale.from_factor(0)


class TestGenerateReport:
    def test_light_sections_render(self):
        markdown = generate_report(sections=("fig2", "fig3"))
        assert markdown.startswith("# ROArray evaluation report")
        assert "## Fig. 2" in markdown
        assert "## Fig. 3" in markdown
        assert "## Figs. 6" not in markdown  # not requested

    def test_fig4_section(self):
        markdown = generate_report(sections=("fig4",))
        assert "fused: AoA error" in markdown
        assert "packet A" in markdown

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            generate_report(sections=("fig99",))

    def test_deterministic(self):
        a = generate_report(sections=("fig3",), seed=5)
        b = generate_report(sections=("fig3",), seed=5)
        assert a == b

    def test_tables_are_wellformed_markdown(self):
        markdown = generate_report(sections=("fig2",))
        table_lines = [l for l in markdown.splitlines() if l.startswith("|")]
        widths = {l.count("|") for l in table_lines}
        assert widths == {4}  # header, separator and rows all 3-column
