"""Smoke and contract tests for the per-figure experiment drivers.

These runs are deliberately tiny (1–3 locations, few packets) — they
verify plumbing, determinism and result structure.  The benchmark suite
runs the figures at meaningful scale.
"""

import numpy as np
import pytest

from repro.core.pipeline import RoArrayEstimator
from repro.experiments.runner import (
    run_ap_density_experiment,
    run_calibration_experiment,
    run_fusion_experiment,
    run_iteration_progress_experiment,
    run_music_snr_experiment,
    run_polarization_experiment,
    run_snr_band_experiment,
)
from repro.exceptions import ConfigurationError


def small_systems(small_config):
    return [RoArrayEstimator(config=small_config)]


class TestBlockageCoupling:
    def test_monotone_decreasing_with_snr(self):
        from repro.experiments.runner import snr_coupled_blockage_db

        values = [snr_coupled_blockage_db(snr) for snr in (20.0, 12.0, 5.0, 0.0, -10.0)]
        assert values[0] == 0.0
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[-1] == 12.0  # capped

    def test_matches_band_severity(self):
        """The deterministic coupling sits inside the band blockage ranges."""
        from repro.experiments.runner import snr_coupled_blockage_db
        from repro.experiments.scenarios import SNR_BANDS

        low = SNR_BANDS["low"]
        value = snr_coupled_blockage_db(0.0)
        assert low.blockage_low_db <= value <= low.blockage_high_db + 1.0


class TestSnrBandExperiment:
    def test_structure_and_counts(self, small_config):
        result = run_snr_band_experiment(
            "high", n_locations=2, n_packets=3, n_aps=3,
            systems=small_systems(small_config), resolution_m=0.25,
        )
        assert result.band == "high"
        cdf = result.cdf("ROArray")
        assert len(cdf) == 2
        # AoA errors: one per AP per location.
        assert len(result.cdf("ROArray", kind="aoa")) == 6
        assert len(result.cdf("ROArray", kind="direct_aoa")) == 6

    def test_deterministic_given_seed(self, small_config):
        kwargs = dict(
            n_locations=1, n_packets=2, n_aps=3, seed=5,
            systems=small_systems(small_config), resolution_m=0.25,
        )
        a = run_snr_band_experiment("medium", **kwargs)
        b = run_snr_band_experiment("medium", **kwargs)
        assert (
            a.outcomes["ROArray"][0].location_error_m
            == b.outcomes["ROArray"][0].location_error_m
        )

    def test_band_object_accepted(self, small_config):
        from repro.experiments.scenarios import SNR_BANDS

        result = run_snr_band_experiment(
            SNR_BANDS["high"], n_locations=1, n_packets=2, n_aps=3,
            systems=small_systems(small_config), resolution_m=0.25,
        )
        assert result.band == "high"

    def test_rejects_zero_locations(self, small_config):
        with pytest.raises(ConfigurationError):
            run_snr_band_experiment(
                "high", n_locations=0, systems=small_systems(small_config)
            )

    def test_warm_start_matches_cold_within_tolerance(self, small_config):
        """ISSUE 2 acceptance: warm chaining lands on the cold-start answer.

        The warm-started sweep seeds every solve with the previous
        trace's solution; the program is convex, so the minimizer is
        unchanged and all derived quantities must agree to within the
        solver tolerance's effect on peak positions.
        """
        kwargs = dict(
            n_locations=2, n_packets=2, n_aps=3, seed=7, resolution_m=0.25,
        )
        cold = run_snr_band_experiment(
            "high", systems=small_systems(small_config), **kwargs
        )
        warm = run_snr_band_experiment(
            "high", systems=small_systems(small_config), warm_start=True, **kwargs
        )
        for cold_outcome, warm_outcome in zip(
            cold.outcomes["ROArray"], warm.outcomes["ROArray"]
        ):
            assert warm_outcome.location_error_m == pytest.approx(
                cold_outcome.location_error_m, abs=1e-6
            )
            np.testing.assert_allclose(
                warm_outcome.direct_aoa_errors_deg,
                cold_outcome.direct_aoa_errors_deg,
                atol=1e-6,
            )

    def test_warm_start_worker_parity(self, small_config):
        """ISSUE 7: warm sweeps run at any worker count, byte-identically.

        Every job warms from the same frozen WarmStartState seed (shipped
        to workers on the estimator spec), so the sequential and pooled
        paths compute exactly the same thing.
        """
        kwargs = dict(
            n_locations=1, n_packets=2, n_aps=3, seed=3, resolution_m=0.25,
            warm_start=True,
        )
        sequential = run_snr_band_experiment(
            "high", systems=small_systems(small_config), **kwargs
        )
        pooled = run_snr_band_experiment(
            "high", systems=small_systems(small_config), workers=2, **kwargs
        )
        for seq, par in zip(sequential.outcomes["ROArray"], pooled.outcomes["ROArray"]):
            assert par.location_error_m == seq.location_error_m
            assert par.direct_aoa_errors_deg == seq.direct_aoa_errors_deg

    def test_warm_start_checkpoint_resume_parity(self, small_config, tmp_path):
        """ISSUE 7: the warm_start × checkpoint refusal is gone.

        A warm sweep journals per-job analyses like any other; rerunning
        against the same checkpoint dir replays them byte-identically.
        """
        kwargs = dict(
            n_locations=1, n_packets=2, n_aps=3, seed=3, resolution_m=0.25,
            warm_start=True,
        )
        first = run_snr_band_experiment(
            "high", systems=small_systems(small_config),
            checkpoint_dir=tmp_path, **kwargs
        )
        assert (tmp_path / "snr_band_high_ROArray.jsonl").exists()
        replayed = run_snr_band_experiment(
            "high", systems=small_systems(small_config),
            checkpoint_dir=tmp_path, **kwargs
        )
        for a, b in zip(first.outcomes["ROArray"], replayed.outcomes["ROArray"]):
            assert a.location_error_m == b.location_error_m


class TestMusicSnrExperiment:
    def test_degradation_trend(self):
        points = run_music_snr_experiment(snrs_db=(20.0, -2.0), n_packets=4)
        assert len(points) == 2
        high, low = points
        # Fig. 2 claims: lower SNR → duller beam and (usually) worse peak.
        assert high.sharpness >= low.sharpness * 0.8
        assert all(p.spectrum.power.max() <= 1.0 + 1e-9 for p in points)

    def test_custom_system(self, small_config):
        points = run_music_snr_experiment(
            snrs_db=(15.0,), n_packets=2, system=RoArrayEstimator(config=small_config)
        )
        assert points[0].closest_peak_error_deg < 20.0


class TestIterationProgress:
    def test_sharpens_with_iterations(self):
        points = run_iteration_progress_experiment(iteration_counts=(3, 30))
        assert points[1].sharpness >= points[0].sharpness
        assert points[1].closest_peak_error_deg <= points[0].closest_peak_error_deg + 3.0

    def test_reports_all_counts(self):
        points = run_iteration_progress_experiment(iteration_counts=(3, 6, 9))
        assert [p.iterations for p in points] == [3, 6, 9]


class TestFusionExperiment:
    def test_fused_at_least_as_accurate(self):
        result = run_fusion_experiment(n_packets=8, n_single_examples=2, snr_db=5.0)
        assert len(result.single_spectra) == 2
        assert result.fused_direct_aoa_error_deg <= max(
            result.single_direct_aoa_errors_deg
        ) + 2.0

    def test_single_packet_toas_scatter(self):
        """Fig. 4a/b: different detection delays → different ToA peaks."""
        result = run_fusion_experiment(n_packets=6, n_single_examples=4, snr_db=15.0)
        toas = np.array(result.single_direct_toas_s)
        assert toas.std() > 0.0


class TestApDensity:
    @pytest.mark.slow
    def test_returns_cdf_per_count(self):
        results = run_ap_density_experiment(
            ap_counts=(3, 4), n_locations=2, n_packets=3, resolution_m=0.25
        )
        assert set(results.keys()) == {3, 4}
        for cdf in results.values():
            assert len(cdf) == 2


class TestCalibrationExperiment:
    @pytest.mark.slow
    def test_modes_present(self):
        results = run_calibration_experiment(
            modes=("roarray", "none"), n_locations=2, n_packets=3, n_aps=3,
            resolution_m=0.25,
        )
        assert set(results.keys()) == {"roarray", "none"}
        for cdf in results.values():
            assert len(cdf) == 2


class TestPolarizationExperiment:
    @pytest.mark.slow
    def test_ranges_reported(self):
        results = run_polarization_experiment(
            deviation_ranges_deg=((0.0, 0.0), (20.0, 45.0)),
            n_locations=2, n_packets=3, n_aps=3, resolution_m=0.25,
        )
        assert len(results) == 2
        for cdf in results.values():
            assert len(cdf) == 2
