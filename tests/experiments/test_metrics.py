"""Tests for error statistics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.metrics import ErrorCdf, summarize_systems


class TestErrorCdf:
    def test_median_and_percentile(self):
        cdf = ErrorCdf(np.arange(1, 101, dtype=float))
        assert cdf.median == pytest.approx(50.5)
        assert cdf.percentile(90) == pytest.approx(90.1)
        assert cdf.mean == pytest.approx(50.5)

    def test_cdf_points_monotone(self):
        cdf = ErrorCdf(np.array([3.0, 1.0, 2.0]))
        errors, fractions = cdf.cdf_points()
        np.testing.assert_array_equal(errors, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(fractions, [1 / 3, 2 / 3, 1.0])

    def test_fraction_below(self):
        cdf = ErrorCdf(np.array([0.5, 1.5, 2.5, 3.5]))
        assert cdf.fraction_below(2.0) == pytest.approx(0.5)
        assert cdf.fraction_below(10.0) == 1.0
        assert cdf.fraction_below(0.0) == 0.0

    def test_flattens_nested_samples(self):
        cdf = ErrorCdf(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert len(cdf) == 4

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ErrorCdf(np.array([]))

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ErrorCdf(np.array([1.0, -0.1]))

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            ErrorCdf(np.array([1.0, np.nan]))

    def test_percentile_bounds(self):
        cdf = ErrorCdf(np.array([1.0]))
        with pytest.raises(ConfigurationError):
            cdf.percentile(101)


class TestSummary:
    def test_contains_all_systems(self):
        table = summarize_systems(
            {
                "ROArray": ErrorCdf(np.array([0.5, 1.0])),
                "SpotFi": ErrorCdf(np.array([2.0, 3.0])),
            }
        )
        assert "ROArray" in table and "SpotFi" in table
        assert "median" in table
