"""The unified results API: ``.cdf()``, JSON round-trips, retired shims."""

from __future__ import annotations

import importlib
import json
import sys
import warnings

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.metrics import ErrorCdf
from repro.experiments.runner import CDF_KINDS, LocalizationOutcome, SnrBandResult
from repro.spectral.spectrum import AngleSpectrum, JointSpectrum


def _band_result() -> SnrBandResult:
    outcomes = [
        LocalizationOutcome(
            location_error_m=0.5 * (i + 1),
            direct_aoa_errors_deg=[1.0 + i, 2.0 + i],
            closest_aoa_errors_deg=[0.5 + i, 1.5 + i],
        )
        for i in range(3)
    ]
    return SnrBandResult(band="medium", outcomes={"ROArray": outcomes})


class TestUnifiedCdf:
    def test_kinds_cover_the_three_distributions(self):
        result = _band_result()
        assert result.cdf("ROArray").samples.tolist() == [0.5, 1.0, 1.5]
        assert len(result.cdf("ROArray", kind="aoa")) == 6
        assert len(result.cdf("ROArray", kind="direct_aoa")) == 6
        assert result.cdf("ROArray", kind="localization").median == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            _band_result().cdf("ROArray", kind="bogus")
        assert set(CDF_KINDS) == {"localization", "aoa", "direct_aoa"}

    @pytest.mark.parametrize(
        "old_method", ["localization_cdf", "aoa_cdf", "direct_aoa_cdf"]
    )
    def test_retired_per_kind_methods_are_gone(self, old_method):
        """The deprecated per-kind accessors were removed outright."""
        with pytest.raises(AttributeError):
            getattr(_band_result(), old_method)


class TestJsonRoundTrips:
    def test_snr_band_result(self):
        result = _band_result()
        payload = json.loads(json.dumps(result.to_dict()))
        clone = SnrBandResult.from_dict(payload)
        assert clone.band == result.band
        np.testing.assert_array_equal(
            clone.cdf("ROArray").samples, result.cdf("ROArray").samples
        )
        np.testing.assert_array_equal(
            clone.cdf("ROArray", kind="aoa").samples,
            result.cdf("ROArray", kind="aoa").samples,
        )

    def test_error_cdf(self):
        cdf = ErrorCdf(np.array([0.2, 1.0, 3.5]))
        clone = ErrorCdf.from_dict(json.loads(json.dumps(cdf.to_dict())))
        np.testing.assert_array_equal(clone.samples, cdf.samples)

    def test_angle_spectrum(self):
        spectrum = AngleSpectrum(np.linspace(0, 180, 5), np.array([0.0, 1.0, 0.5, 0.2, 0.0]))
        clone = AngleSpectrum.from_dict(json.loads(json.dumps(spectrum.to_dict())))
        np.testing.assert_array_equal(clone.angles_deg, spectrum.angles_deg)
        np.testing.assert_array_equal(clone.power, spectrum.power)

    def test_joint_spectrum(self):
        spectrum = JointSpectrum(
            np.linspace(0, 180, 3), np.linspace(0, 1e-7, 4), np.arange(12.0).reshape(3, 4)
        )
        clone = JointSpectrum.from_dict(json.loads(json.dumps(spectrum.to_dict())))
        np.testing.assert_array_equal(clone.power, spectrum.power)
        np.testing.assert_array_equal(clone.toas_s, spectrum.toas_s)


class TestRetiredImportSurfaces:
    def test_old_report_module_is_gone(self):
        """`repro.experiments.report` completed its deprecation cycle."""
        sys.modules.pop("repro.experiments.report", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.experiments.report")

    def test_new_package_imports_silently(self):
        for name in list(sys.modules):
            if name.startswith("repro.experiments.reporting"):
                sys.modules.pop(name)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            module = importlib.import_module("repro.experiments.reporting")
            assert callable(module.generate_report)
            assert callable(module.emit_json)
            from repro.experiments.reporting.text import format_comparison

            assert callable(format_comparison)

    def test_flat_text_names_are_gone(self):
        """The `__getattr__` re-exports were removed with the shim cycle."""
        import repro.experiments.reporting as reporting
        from repro.experiments.reporting import text

        for name in ("format_cdf_series", "format_comparison", "format_spectrum_ascii"):
            assert callable(getattr(text, name))
            with pytest.raises(AttributeError):
                getattr(reporting, name)
            assert name not in reporting.__all__
