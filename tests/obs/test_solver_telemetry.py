"""Solver telemetry hooks: recording, invariance, MFISTA monotonicity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import ConvergenceTrace
from repro.optim import (
    solve_lasso_admm,
    solve_lasso_fista,
    solve_mmv_fista,
    solve_omp,
    solve_reweighted_lasso,
    solve_sbl,
)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(7)
    m, n = 24, 60
    matrix = rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))
    x_true = np.zeros(n, dtype=complex)
    x_true[[4, 21, 50]] = rng.standard_normal(3) + 1j * rng.standard_normal(3)
    rhs = matrix @ x_true + 0.01 * (rng.standard_normal(m) + 1j * rng.standard_normal(m))
    return matrix, rhs


class TestRecording:
    def test_fista_records_every_iteration(self, problem):
        matrix, rhs = problem
        telemetry = ConvergenceTrace(solver="fista")
        result = solve_lasso_fista(matrix, rhs, 0.5, max_iterations=50, telemetry=telemetry)
        assert result.convergence is telemetry
        assert len(telemetry) == result.iterations
        assert all(norm >= 0 for norm in telemetry.residual_norms)
        assert telemetry.support_sizes[-1] > 0

    def test_callback_sees_iterates(self, problem):
        matrix, rhs = problem
        seen = []
        solve_lasso_fista(
            matrix, rhs, 0.5, max_iterations=20,
            callback=lambda i, x, obj: seen.append((i, x.shape, obj)),
        )
        iterations = [i for i, _, _ in seen]
        assert iterations == sorted(iterations)
        assert all(shape == (matrix.shape[1],) for _, shape, _ in seen)

    def test_no_telemetry_by_default(self, problem):
        matrix, rhs = problem
        assert solve_lasso_fista(matrix, rhs, 0.5, max_iterations=20).convergence is None

    @pytest.mark.parametrize("solver", ["mmv", "admm", "omp", "reweighted", "sbl"])
    def test_every_solver_records(self, problem, solver):
        matrix, rhs = problem
        telemetry = ConvergenceTrace(solver=solver)
        if solver == "mmv":
            stacked = np.column_stack([rhs, rhs])
            result = solve_mmv_fista(matrix, stacked, 0.5, max_iterations=30, telemetry=telemetry)
        elif solver == "admm":
            result = solve_lasso_admm(matrix, rhs, 0.5, max_iterations=30, telemetry=telemetry)
        elif solver == "omp":
            result = solve_omp(matrix, rhs, sparsity=3, telemetry=telemetry)
        elif solver == "reweighted":
            result = solve_reweighted_lasso(matrix, rhs, 0.5, max_iterations=30, telemetry=telemetry)
        else:
            result = solve_sbl(matrix, rhs, max_iterations=15, telemetry=telemetry)
        assert result.convergence is telemetry
        assert len(telemetry) >= 1
        assert len(telemetry.objectives) == len(telemetry.residual_norms)
        assert len(telemetry.objectives) == len(telemetry.support_sizes)


class TestInvariance:
    """Telemetry observes — it must never change the solution."""

    def test_fista_solution_identical_with_telemetry(self, problem):
        matrix, rhs = problem
        plain = solve_lasso_fista(matrix, rhs, 0.5, max_iterations=60)
        traced = solve_lasso_fista(
            matrix, rhs, 0.5, max_iterations=60, telemetry=ConvergenceTrace()
        )
        np.testing.assert_array_equal(plain.x, traced.x)
        assert plain.iterations == traced.iterations

    def test_mmv_solution_identical_with_telemetry(self, problem):
        matrix, rhs = problem
        stacked = np.column_stack([rhs, 2 * rhs])
        plain = solve_mmv_fista(matrix, stacked, 0.5, max_iterations=40)
        traced = solve_mmv_fista(
            matrix, stacked, 0.5, max_iterations=40, telemetry=ConvergenceTrace()
        )
        np.testing.assert_array_equal(plain.x, traced.x)


class TestMonotonicity:
    def test_mfista_objective_never_increases(self, problem):
        matrix, rhs = problem
        telemetry = ConvergenceTrace(solver="mfista")
        solve_lasso_fista(
            matrix, rhs, 0.5, max_iterations=80, monotone=True, telemetry=telemetry
        )
        assert len(telemetry) > 2
        assert telemetry.is_monotone()
        assert telemetry.objective_decay() > 0.0

    def test_omp_residual_never_increases(self, problem):
        matrix, rhs = problem
        telemetry = ConvergenceTrace(solver="omp")
        solve_omp(matrix, rhs, sparsity=3, telemetry=telemetry)
        norms = telemetry.residual_norms
        assert all(b <= a + 1e-12 for a, b in zip(norms, norms[1:]))
