"""Tests for the metrics registry."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4.0
        assert counter.to_dict() == {"type": "counter", "value": 4.0}

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("jobs_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("queue_depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.to_dict() == {"type": "gauge", "value": 2.0}

    def test_histogram_summary(self):
        histogram = MetricsRegistry().histogram("job_seconds")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.to_dict()
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 2.5

    def test_empty_histogram(self):
        assert MetricsRegistry().histogram("x").to_dict() == {"type": "histogram", "count": 0}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError):
            registry.gauge("a")

    def test_export_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc(2)
        registry.histogram("job_seconds").observe(0.5)
        path = tmp_path / "metrics.json"
        registry.export_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["jobs_total"] == {"type": "counter", "value": 2.0}
        assert payload["job_seconds"]["count"] == 1
