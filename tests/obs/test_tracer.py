"""Tests for the span tracer: nesting, adoption, the no-op default."""

from __future__ import annotations

import json

import pytest

from repro.obs import NULL_TRACER, NullTracer, Span, Tracer


class TestSpanNesting:
    def test_parent_child_by_lexical_scope(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
            with tracer.span("sibling") as sibling:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert [s.name for s in tracer.spans] == ["outer", "inner", "sibling"]

    def test_span_ids_unique(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == len(ids)

    def test_timing_recorded(self):
        tracer = Tracer()
        with tracer.span("work"):
            sum(range(1000))
        span = tracer.spans[0]
        assert span.wall_s >= 0.0
        assert span.cpu_s >= 0.0

    def test_finalized_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.current_span is None
        assert tracer.spans[0].wall_s >= 0.0
        # The stack unwound: a new span is a root again.
        with tracer.span("after") as after:
            pass
        assert after.parent_id is None

    def test_name_may_also_be_an_attribute(self):
        tracer = Tracer()
        with tracer.span("experiment", name="snr_band") as span:
            pass
        assert span.name == "experiment"
        assert span.attributes["name"] == "snr_band"


class TestAttributes:
    def test_open_attributes_and_annotate(self):
        tracer = Tracer()
        with tracer.span("solve", solver="fista") as span:
            span.annotate(iterations=42)
            tracer.annotate(converged=True)
        assert span.attributes == {"solver": "fista", "iterations": 42, "converged": True}

    def test_annotate_outside_any_span_is_noop(self):
        tracer = Tracer()
        tracer.annotate(orphan=True)
        assert tracer.spans == []


class TestNullTracer:
    def test_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_span_returns_one_shared_context(self):
        # Zero-overhead contract: no allocation per span.
        first = NULL_TRACER.span("a", k=1)
        second = NULL_TRACER.span("b")
        assert first is second
        with first as span:
            span.annotate(anything=1)  # swallowed

    def test_records_nothing(self):
        with NULL_TRACER.span("x"):
            pass
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.to_dict() == {"spans": []}


class TestAdopt:
    def test_remaps_ids_and_reparents_roots(self):
        worker = Tracer()
        with worker.span("job", index=3):
            with worker.span("solver"):
                pass
        payloads = [span.to_dict() for span in worker.spans]

        parent = Tracer()
        with parent.span("batch") as batch:
            adopted = parent.adopt(payloads)
        job, solver = adopted
        assert job.name == "job"
        assert job.parent_id == batch.span_id
        assert solver.parent_id == job.span_id
        assert job.attributes == {"index": 3}
        ids = [s.span_id for s in parent.spans]
        assert len(set(ids)) == len(ids)

    def test_outside_open_span_adopted_as_roots(self):
        worker = Tracer()
        with worker.span("job"):
            pass
        parent = Tracer()
        (job,) = parent.adopt([s.to_dict() for s in worker.spans])
        assert job.parent_id is None

    def test_preserves_timing(self):
        worker = Tracer()
        with worker.span("job"):
            sum(range(10000))
        parent = Tracer()
        (job,) = parent.adopt([s.to_dict() for s in worker.spans])
        assert job.wall_s == worker.spans[0].wall_s
        assert job.cpu_s == worker.spans[0].cpu_s


class TestQueriesAndExport:
    def _traced(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("job"):
            with tracer.span("solver", solver="fista"):
                pass
            with tracer.span("solver", solver="admm"):
                pass
        return tracer

    def test_find_and_total(self):
        tracer = self._traced()
        assert [s.attributes["solver"] for s in tracer.find("solver")] == ["fista", "admm"]
        assert tracer.total_wall_s("solver") == pytest.approx(
            sum(s.wall_s for s in tracer.find("solver"))
        )
        assert tracer.total_wall_s("missing") == 0.0

    def test_aggregate_rolls_up_by_name(self):
        rollup = self._traced().aggregate()
        assert rollup["solver"]["count"] == 2
        assert rollup["job"]["count"] == 1
        assert rollup["solver"]["wall_s"] >= 0.0

    def test_span_dict_round_trip(self):
        tracer = self._traced()
        for span in tracer.spans:
            clone = Span.from_dict(span.to_dict())
            assert clone == span

    def test_export_json(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        tracer.export_json(str(path))
        payload = json.loads(path.read_text())
        assert [s["name"] for s in payload["spans"]] == ["job", "solver", "solver"]
