"""Tests for ConvergenceTrace and the support-size helper."""

from __future__ import annotations

import numpy as np

from repro.obs import ConvergenceTrace, support_size


class TestSupportSize:
    def test_vector_counts_nonzeros(self):
        assert support_size(np.array([0.0, 1.0, 0.0, -2.0])) == 2

    def test_matrix_counts_active_rows(self):
        x = np.zeros((4, 3))
        x[1] = 1.0
        x[3, 0] = 0.5
        assert support_size(x) == 2


class TestConvergenceTrace:
    def _trace(self, objectives) -> ConvergenceTrace:
        trace = ConvergenceTrace(solver="fista")
        for i, objective in enumerate(objectives):
            trace.record(objective=objective, residual_norm=objective / 2, support_size=i)
        return trace

    def test_record_and_len(self):
        trace = self._trace([3.0, 2.0, 1.0])
        assert len(trace) == 3
        assert trace.iterations == 3
        assert trace.objectives == [3.0, 2.0, 1.0]
        assert trace.support_sizes == [0, 1, 2]

    def test_objective_decay(self):
        assert self._trace([3.0, 2.0, 1.0]).objective_decay() == 2.0
        assert self._trace([3.0]).objective_decay() == 0.0
        assert ConvergenceTrace().objective_decay() == 0.0

    def test_monotone_detection(self):
        assert self._trace([3.0, 2.0, 2.0, 1.0]).is_monotone()
        assert not self._trace([3.0, 2.0, 2.5]).is_monotone()
        # Floating-point noise within rtol does not count as an increase.
        assert self._trace([1.0, 1.0 + 1e-15]).is_monotone()
        assert ConvergenceTrace().is_monotone()

    def test_dict_round_trip(self):
        trace = self._trace([3.0, 1.0])
        clone = ConvergenceTrace.from_dict(trace.to_dict())
        assert clone == trace
        assert clone.solver == "fista"
