"""Calibration fitting: accuracy, JSON round-trip, model closure."""

import json

import numpy as np
import pytest

from repro.channel.array import UniformLinearArray
from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.ofdm import intel5300_layout
from repro.channel.paths import random_profile
from repro.exceptions import CalibrationError
from repro.io.calibration import CalibrationReport, fit_calibration


def synth_trace(model, *, n_packets=40, seed=3, snr_db=35.0):
    synthesizer = CsiSynthesizer(
        UniformLinearArray(), intel5300_layout(), model, seed=seed
    )
    rng = np.random.default_rng(seed)
    profile = random_profile(rng, n_paths=1, direct_aoa_deg=90.0)
    return synthesizer.packets(profile, n_packets=n_packets, snr_db=snr_db, rng=rng)


class TestAccuracy:
    def test_recovers_injected_delay_range(self):
        model = ImpairmentModel(
            detection_delay_range_s=100e-9,
            phase_offset_std_rad=0.0,
            sfo_std_s=0.0,
            cfo_residual_rad=0.0,
        )
        report = fit_calibration(synth_trace(model))
        # Relative delays are drawn uniformly inside the window; the
        # observed spread must sit inside it and, with 40 packets,
        # cover most of it.
        assert 50e-9 < report.detection_delay_range_s <= 105e-9
        assert report.cfo_residual_rad < 0.05

    def test_recovers_injected_phase_offsets(self):
        model = ImpairmentModel(
            detection_delay_range_s=0.0,
            phase_offset_std_rad=0.8,
            sfo_std_s=0.0,
            cfo_residual_rad=0.0,
        )
        trace = synth_trace(model)
        report = fit_calibration(trace)
        assert report.phase_offsets_rad[0] == 0.0
        # Offsets are static per boot, so the fit should be stable.
        assert report.phase_offset_stability_rad < 0.05
        assert max(abs(o) for o in report.phase_offsets_rad) > 0.05

    def test_recovers_injected_cfo(self):
        model = ImpairmentModel(
            detection_delay_range_s=0.0,
            phase_offset_std_rad=0.0,
            sfo_std_s=0.0,
            cfo_residual_rad=0.2,
        )
        report = fit_calibration(synth_trace(model))
        assert report.cfo_residual_rad == pytest.approx(0.2, abs=0.05)

    def test_clean_trace_reports_near_zero(self):
        model = ImpairmentModel(
            detection_delay_range_s=0.0,
            phase_offset_std_rad=0.0,
            sfo_std_s=0.0,
            cfo_residual_rad=0.0,
        )
        report = fit_calibration(synth_trace(model))
        assert report.detection_delay_range_s < 5e-9
        assert report.cfo_residual_rad < 0.05


class TestRoundTrip:
    def test_json_round_trip_is_exact(self):
        report = fit_calibration(synth_trace(ImpairmentModel()))
        payload = json.loads(json.dumps(report.to_dict()))
        assert CalibrationReport.from_dict(payload) == report

    def test_to_impairment_model_closes_the_loop(self):
        report = fit_calibration(synth_trace(ImpairmentModel()))
        model = report.to_impairment_model()
        assert model.detection_delay_range_s == report.detection_delay_range_s
        assert model.sfo_std_s == report.sfo_std_s
        assert model.cfo_residual_rad == report.cfo_residual_rad
        override = report.to_impairment_model(cfo_residual_rad=0.0)
        assert override.cfo_residual_rad == 0.0

    def test_to_correction_stage_undoes_offsets(self):
        model = ImpairmentModel(
            detection_delay_range_s=0.0,
            phase_offset_std_rad=0.8,
            sfo_std_s=0.0,
            cfo_residual_rad=0.0,
        )
        trace = synth_trace(model)
        stage = fit_calibration(trace).to_correction_stage()
        corrected, report = stage.apply(trace)
        assert report.changed
        residual = fit_calibration(corrected)
        assert max(abs(o) for o in residual.phase_offsets_rad) < 0.05


class TestErrors:
    def test_empty_trace_rejected(self):
        from repro.channel.trace import CsiTrace

        empty = CsiTrace(csi=np.zeros((0, 3, 30), dtype=complex), snr_db=10.0)
        with pytest.raises(CalibrationError, match="empty"):
            fit_calibration(empty)

    def test_single_antenna_rejected(self, rng):
        from repro.channel.trace import CsiTrace

        mono = CsiTrace(
            csi=rng.standard_normal((4, 1, 30)) + 0j, snr_db=10.0
        )
        with pytest.raises(CalibrationError, match=">= 2 antennas"):
            fit_calibration(mono)


class TestSpans:
    def test_span_emitted_with_annotations(self):
        from repro.obs import Tracer

        tracer = Tracer()
        fit_calibration(synth_trace(ImpairmentModel()), tracer=tracer)
        span = next(s for s in tracer.spans if s.name == "calibration_fit")
        assert "detection_delay_range_ns" in span.attributes
