"""Bulk ingestion: artifacts, failure tolerance, checkpoint replay."""

import numpy as np
import pytest

from repro.channel.trace import CsiTrace
from repro.io.ingest import ingest_sources
from repro.io.intel import write_intel_dat
from repro.io.registry import DatasetRegistry


class TestHappyPath:
    def test_dat_source_produces_artifact(self, tmp_path, int8_csi):
        capture = tmp_path / "west.dat"
        write_intel_dat(capture, int8_csi)
        result = ingest_sources([capture], out_dir=tmp_path / "out")
        assert result.ok and result.n_failed == 0
        [record] = result.records
        assert record.source_format == "intel-dat"
        assert record.n_packets == int8_csi.shape[0]
        # The artifact is the *cleaned* trace, reloadable as npz.
        reloaded = CsiTrace.load(record.output_path)
        assert reloaded.n_antennas == 3
        assert record.calibration is not None
        assert [r["stage"] for r in record.stage_reports] == [
            "sto-removal",
            "quarantine-gate",
        ]

    def test_synthetic_source_fans_out(self, tmp_path):
        result = ingest_sources(
            ["synthetic://random?n=3&packets=4&seed=1"], out_dir=tmp_path / "out"
        )
        assert [r.label for r in result.records] == [
            "synthetic[0]",
            "synthetic[1]",
            "synthetic[2]",
        ]
        assert result.ok

    def test_no_out_dir_skips_writing(self, tmp_path, int8_csi):
        capture = tmp_path / "west.dat"
        write_intel_dat(capture, int8_csi)
        [record] = ingest_sources([capture]).records
        assert record.ok and record.output_path is None


class TestFailureTolerance:
    @pytest.mark.filterwarnings("ignore:dropping torn final record")
    def test_bad_source_fails_run_continues(self, tmp_path, int8_csi):
        good = tmp_path / "good.dat"
        write_intel_dat(good, int8_csi)
        bad = tmp_path / "bad.dat"
        bad.write_bytes(b"definitely not a bfee log")
        result = ingest_sources([bad, good], out_dir=tmp_path / "out")
        assert not result.ok and result.n_failed == 1
        assert not result.records[0].ok
        assert "IngestError" in result.records[0].error
        assert result.records[1].ok

    def test_shape_gate_fails_wrong_capture(self, tmp_path, int8_csi):
        capture = tmp_path / "west.dat"
        write_intel_dat(capture, int8_csi)
        result = ingest_sources([capture], expected_shape=(2, 56))
        assert not result.ok
        assert "shape_mismatch" in result.records[0].error

    @pytest.mark.filterwarnings("ignore:dropping torn final record")
    def test_failures_carry_source_and_fault_kind(self, tmp_path):
        bad = tmp_path / "bad.dat"
        bad.write_bytes(b"definitely not a bfee log")
        [record] = ingest_sources([bad]).records
        assert not record.ok
        assert record.source == str(bad)
        assert record.error_kind == "empty"
        assert record.to_dict()["error_kind"] == "empty"

    @pytest.mark.filterwarnings("ignore:dropping torn final record")
    def test_failure_summary_dedupes_same_defect(self, tmp_path, int8_csi):
        # Three captures broken the same way, one broken differently,
        # one fine: the summary tells two stories, not four.
        same_defect = []
        for name in ("a", "b", "c"):
            bad = tmp_path / f"{name}.dat"
            bad.write_bytes(b"not a bfee log either")
            same_defect.append(bad)
        missing = tmp_path / "gone.dat"
        good = tmp_path / "good.dat"
        write_intel_dat(good, int8_csi)
        result = ingest_sources([*same_defect, missing, good])
        summary = result.failure_summary()
        assert [entry["count"] for entry in summary] == [3, 1]
        assert summary[0]["error_kind"] == "empty"
        assert summary[1]["error_kind"] == "unresolved"
        # Per-path prose is masked so one defect groups across files,
        # but the offending sources are still listed.
        assert "<source>" in summary[0]["error"]
        assert summary[0]["sources"] == [str(path) for path in same_defect]


class TestRegistration:
    def test_register_prefix_lands_in_manifest(self, tmp_path, int8_csi):
        capture = tmp_path / "west.dat"
        write_intel_dat(capture, int8_csi)
        registry = DatasetRegistry(tmp_path / "data")
        result = ingest_sources(
            [capture],
            out_dir=tmp_path / "data" / "traces",
            registry=registry,
            register_prefix="lab/",
        )
        [record] = result.records
        assert record.dataset == "lab/west"
        # Manifest was saved; a fresh registry can load the artifact.
        reloaded = DatasetRegistry(tmp_path / "data")
        trace = reloaded.load_trace("lab/west")
        assert trace.n_packets == int8_csi.shape[0]


class TestCheckpoint:
    def test_rerun_replays_finished_sources(self, tmp_path, int8_csi):
        capture = tmp_path / "west.dat"
        write_intel_dat(capture, int8_csi)
        sources = [str(capture), "synthetic://random?n=2&packets=3&seed=5"]
        first = ingest_sources(
            sources, out_dir=tmp_path / "out", checkpoint_dir=tmp_path / "ckpt"
        )
        assert first.n_replayed == 0
        second = ingest_sources(
            sources, out_dir=tmp_path / "out", checkpoint_dir=tmp_path / "ckpt"
        )
        assert second.n_replayed == len(sources)
        assert [r.to_dict() for r in second.records] == [
            r.to_dict() for r in first.records
        ]

    def test_config_change_refuses_stale_journal(self, tmp_path, int8_csi):
        from repro.exceptions import CheckpointError

        capture = tmp_path / "west.dat"
        write_intel_dat(capture, int8_csi)
        ingest_sources([capture], checkpoint_dir=tmp_path / "ckpt")
        # A different configuration must not silently mix with the old
        # journal — the runtime refuses, same as batch experiments.
        with pytest.raises(CheckpointError, match="different experiment"):
            ingest_sources([capture], calibrate=False, checkpoint_dir=tmp_path / "ckpt")
