"""Intel 5300 .dat parser/encoder tests.

The encoder and decoder are independent implementations of the bfee
bit packing; the round-trip tests exercise each against the other.
"""

import struct

import numpy as np
import pytest

from repro.exceptions import IngestError
from repro.io.intel import (
    BFEE_CODE,
    IDENTITY_ANTENNA_SEL,
    SM_2_20,
    SM_2_40,
    SM_3_20,
    read_bfee_records,
    read_intel_dat,
    remove_spatial_mapping,
    write_intel_dat,
)


class TestRoundTrip:
    def test_bit_exact(self, tmp_path, int8_csi):
        path = tmp_path / "capture.dat"
        write_intel_dat(path, int8_csi)
        records = read_bfee_records(path)
        assert len(records) == int8_csi.shape[0]
        for p, record in enumerate(records):
            assert record.n_rx == 3 and record.n_tx == 1
            np.testing.assert_array_equal(record.csi[:, 0, :], int8_csi[p])

    def test_multi_stream_round_trip(self, tmp_path, rng):
        csi = (
            rng.integers(-100, 100, size=(3, 3, 2, 30))
            + 1j * rng.integers(-100, 100, size=(3, 3, 2, 30))
        )
        path = tmp_path / "mimo.dat"
        write_intel_dat(path, csi)
        records = read_bfee_records(path)
        for p, record in enumerate(records):
            assert record.n_tx == 2
            np.testing.assert_array_equal(record.csi, csi[p])

    def test_metadata_round_trip(self, tmp_path, int8_csi):
        path = tmp_path / "meta.dat"
        timestamps = np.array([11, 22, 33, 44, 55], dtype=np.int64)
        write_intel_dat(
            path, int8_csi, timestamps_us=timestamps, rssi=(30, 31, 32), noise=-89, agc=35
        )
        records = read_bfee_records(path)
        assert [r.timestamp_low for r in records] == timestamps.tolist()
        assert records[0].rssi == (30, 31, 32)
        assert records[0].noise == -89
        assert records[0].agc == 35

    def test_rejects_non_integer_components(self, tmp_path, rng):
        csi = rng.standard_normal((2, 3, 30)) + 1j * rng.standard_normal((2, 3, 30))
        with pytest.raises(IngestError, match="integer-valued"):
            write_intel_dat(tmp_path / "bad.dat", csi)

    def test_rejects_out_of_range(self, tmp_path):
        csi = np.full((1, 3, 30), 200 + 0j)
        with pytest.raises(IngestError, match="int8"):
            write_intel_dat(tmp_path / "bad.dat", csi)


class TestStreamRobustness:
    def test_skips_non_bfee_records(self, tmp_path, int8_csi):
        path = tmp_path / "mixed.dat"
        write_intel_dat(path, int8_csi)
        raw = path.read_bytes()
        beacon = struct.pack(">H", 5) + bytes([0xC1, 1, 2, 3, 4])
        path.write_bytes(beacon + raw + beacon)
        records = read_bfee_records(path)
        assert len(records) == int8_csi.shape[0]

    def test_torn_tail_dropped_with_warning(self, tmp_path, int8_csi):
        path = tmp_path / "torn.dat"
        write_intel_dat(path, int8_csi)
        raw = path.read_bytes()
        path.write_bytes(raw[:-40])
        with pytest.warns(RuntimeWarning, match="torn final record"):
            records = read_bfee_records(path)
        assert len(records) == int8_csi.shape[0] - 1

    def test_empty_log_rejected(self, tmp_path):
        path = tmp_path / "empty.dat"
        path.write_bytes(struct.pack(">H", 5) + bytes([0xC1, 1, 2, 3, 4]))
        with pytest.raises(IngestError, match="no bfee records"):
            read_bfee_records(path)

    def test_antenna_permutation_restored(self, tmp_path, int8_csi):
        identity = tmp_path / "identity.dat"
        rotated = tmp_path / "rotated.dat"
        write_intel_dat(identity, int8_csi, antenna_sel=IDENTITY_ANTENNA_SEL)
        # antenna_sel = (1, 2, 0): captured stream k holds physical
        # antenna perm[k], so the decoder must undo the rotation.
        write_intel_dat(rotated, int8_csi, antenna_sel=0b00_10_01)
        base = read_bfee_records(identity)[0].csi
        permuted = read_bfee_records(rotated)[0].csi
        np.testing.assert_array_equal(permuted[1], base[0])
        np.testing.assert_array_equal(permuted[2], base[1])
        np.testing.assert_array_equal(permuted[0], base[2])


class TestScaling:
    def test_scaled_csi_matches_reference_formula(self, tmp_path, int8_csi):
        path = tmp_path / "scaled.dat"
        write_intel_dat(path, int8_csi, rssi=(33, 33, 33), noise=-92, agc=30)
        record = read_bfee_records(path)[0]
        csi = record.csi.astype(complex)
        csi_pwr = float(np.sum(np.abs(csi) ** 2))
        rssi_pwr = 10 ** (record.rssi_dbm / 10)
        scale = rssi_pwr / (csi_pwr / 30.0)
        total_noise = 10 ** (record.noise_dbm / 10) + scale * 3 * 1
        np.testing.assert_allclose(
            record.scaled_csi(), csi * np.sqrt(scale / total_noise), rtol=1e-12
        )

    def test_scaling_preserves_phase(self, tmp_path, int8_csi):
        path = tmp_path / "phase.dat"
        write_intel_dat(path, int8_csi)
        record = read_bfee_records(path)[0]
        raw = record.csi.astype(complex)
        nonzero = raw != 0
        np.testing.assert_allclose(
            np.angle(record.scaled_csi()[nonzero]), np.angle(raw[nonzero]), atol=1e-12
        )

    def test_noise_sentinel_maps_to_minus_92(self, tmp_path, int8_csi):
        path = tmp_path / "sentinel.dat"
        write_intel_dat(path, int8_csi, noise=-127)
        assert read_bfee_records(path)[0].noise_dbm == -92.0

    def test_trace_snr_reflects_fields(self, tmp_path, int8_csi):
        path = tmp_path / "snr.dat"
        write_intel_dat(path, int8_csi, rssi=(33, 33, 33), noise=-92, agc=30)
        trace = read_intel_dat(path)
        expected = (33 + 10 * np.log10(3)) - 44 - 30 - (-92)
        assert trace.snr_db == pytest.approx(expected, abs=1e-9)
        assert trace.source_format == "intel-dat"
        assert trace.capture_times_s.shape == (int8_csi.shape[0],)


class TestSpatialMapping:
    @pytest.mark.parametrize(
        "q, n_tx, bandwidth",
        [(SM_2_20, 2, 20), (SM_2_40, 2, 40), (SM_3_20, 3, 20)],
    )
    def test_matrices_are_unitary(self, q, n_tx, bandwidth):
        np.testing.assert_allclose(q @ q.conj().T, np.eye(n_tx), atol=1e-12)

    @pytest.mark.parametrize(
        "q, n_tx, bandwidth",
        [(SM_2_20, 2, 20), (SM_2_40, 2, 40), (SM_3_20, 3, 20)],
    )
    def test_removal_inverts_mapping(self, rng, q, n_tx, bandwidth):
        channel = rng.standard_normal((3, 30, n_tx)) + 1j * rng.standard_normal((3, 30, n_tx))
        measured = channel @ q.T
        recovered = remove_spatial_mapping(measured, n_tx, bandwidth_mhz=bandwidth)
        np.testing.assert_allclose(recovered, channel, atol=1e-10)

    def test_three_stream_40mhz_warns_and_passes_through(self, rng):
        measured = rng.standard_normal((3, 30, 3)) + 0j
        with pytest.warns(RuntimeWarning, match="no spatial-mapping matrix"):
            out = remove_spatial_mapping(measured, 3, bandwidth_mhz=40)
        np.testing.assert_array_equal(out, measured)

    def test_single_stream_passthrough(self, rng):
        measured = rng.standard_normal((3, 30, 1)) + 0j
        assert remove_spatial_mapping(measured, 1, bandwidth_mhz=20) is measured


class TestFixtures:
    def test_committed_captures_parse(self, fixture_dir):
        for name in ("ap_west.dat", "ap_east.dat", "ap_south_1.dat"):
            trace = read_intel_dat(fixture_dir / name)
            assert trace.n_packets == 8
            assert (trace.n_antennas, trace.n_subcarriers) == (3, 30)
            assert np.all(np.isfinite(trace.csi))
            assert trace.snr_db == pytest.approx(22.0, abs=0.5)
