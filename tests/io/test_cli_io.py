"""CLI-level tests for the unified trace-source grammar and --json."""

import json

import pytest

from repro.cli import main

REGISTRY = "tests/fixtures/real_captures"
LAB_SOURCES = [
    "dataset://lab/ap-west",
    "dataset://lab/ap-east",
    "dataset://lab/ap-south-1",
]


def run_json(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, json.loads(captured.out), captured.err


class TestIngest:
    def test_ingest_json(self, tmp_path, capsys):
        code, payload, _ = run_json(
            capsys,
            [
                "ingest",
                "tests/fixtures/real_captures/ap_west.dat",
                "--out",
                str(tmp_path),
                "--json",
            ],
        )
        assert code == 0
        assert payload["ok"]
        [record] = payload["records"]
        assert record["source_format"] == "intel-dat"
        assert record["n_packets"] == 8
        assert record["calibration"]["n_antennas"] == 3

    def test_ingest_failure_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "junk.dat"
        bad.write_bytes(b"nope")
        with pytest.warns(RuntimeWarning):
            code = main(["ingest", str(bad), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert not payload["ok"]

    def test_ingest_registers_datasets(self, tmp_path, capsys):
        code = main(
            [
                "ingest",
                "tests/fixtures/real_captures/ap_west.dat",
                "--out",
                str(tmp_path / "traces"),
                "--registry",
                str(tmp_path),
                "--register-prefix",
                "site/",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"][0]["dataset"] == "site/ap_west"
        code = main(
            ["analyze", "dataset://site/ap_west", "--registry", str(tmp_path), "--json"]
        )
        assert code == 0


class TestBatchSources:
    def test_dataset_sources_localize(self, capsys):
        code, payload, _ = run_json(
            capsys,
            ["batch", *LAB_SOURCES, "--registry", REGISTRY, "--preprocess",
             "--localize", "--json"],
        )
        assert code == 0
        fix = payload["fix"]
        assert fix["n_aps"] == 3
        assert fix["error_m"] == pytest.approx(0.30, abs=0.05)

    def test_worker_parity(self, capsys):
        argv = ["batch", *LAB_SOURCES, "--registry", REGISTRY, "--preprocess",
                "--localize", "--json"]
        _, serial, _ = run_json(capsys, argv)
        _, parallel, _ = run_json(capsys, argv + ["--workers", "2"])
        assert serial["outcomes"] == parallel["outcomes"]
        assert serial["fix"] == parallel["fix"]

    def test_synthetic_flag_still_works(self, capsys):
        code, payload, _ = run_json(
            capsys, ["batch", "--synthetic", "2", "--packets", "3", "--json"]
        )
        assert code == 0
        labels = [o["label"] for o in payload["outcomes"]]
        assert labels == ["synthetic[0]", "synthetic[1]"]

    def test_mixed_sources(self, tmp_path, capsys):
        code, payload, _ = run_json(
            capsys,
            ["batch", "synthetic://fixed?aoa=100&packets=3",
             "dataset://lab/ap-west", "--registry", REGISTRY, "--json"],
        )
        assert code == 0
        assert len(payload["outcomes"]) == 2

    def test_localize_needs_dataset_sources(self, capsys):
        code = main(
            ["batch", "--synthetic", "1", "--packets", "3", "--localize", "--json"]
        )
        assert code == 2
        assert "localize" in capsys.readouterr().err


class TestAnalyze:
    def test_dataset_source_with_preprocess(self, capsys):
        code, payload, _ = run_json(
            capsys,
            ["analyze", "dataset://lab/spotfi-sample", "--registry", REGISTRY,
             "--preprocess", "--json"],
        )
        assert code == 0
        assert payload["direct"]["aoa_deg"] == pytest.approx(114.0, abs=1.0)


class TestJsonEverywhere:
    def test_loadgen_json(self, tmp_path, capsys):
        out = tmp_path / "load.npz"
        code, payload, _ = run_json(
            capsys,
            ["loadgen", str(out), "--clients", "2", "--duration", "1",
             "--band", "medium", "--json"],
        )
        assert code == 0
        assert payload["clients"] == 2
        assert payload["packets"] > 0
        assert out.exists()

    def test_resume_json(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        main(["batch", "--synthetic", "2", "--packets", "3",
              "--checkpoint", str(ckpt), "--json"])
        capsys.readouterr()
        code = main(["resume", str(ckpt), "--json"])
        captured = capsys.readouterr()
        assert code == 0
        # The status payload leads stderr; the replayed command's own
        # progress may follow it.
        start = captured.err.index("{")
        payload, _ = json.JSONDecoder().raw_decode(captured.err[start:])
        assert payload["journals"][0]["complete"]
        # The replayed batch emits its (fully journaled) result on stdout.
        replay = json.loads(captured.out)
        assert len(replay["outcomes"]) == 2

    def test_band_spec_spelling(self, tmp_path, capsys):
        out = tmp_path / "load.jsonl"
        code = main(
            ["loadgen", str(out), "--clients", "1", "--duration", "1",
             "--band", "synthetic://band/low", "--json"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["band"] == "low"

    def test_bad_band_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["loadgen", str(tmp_path / "x.jsonl"), "--band", "random"])
        assert "not an SNR band" in capsys.readouterr().err
