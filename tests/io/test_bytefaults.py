"""Byte-level fault injectors: determinism, size contracts, catalogue."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FaultInjectionError
from repro.io.bytefaults import (
    BYTE_FAULT_CATALOGUE,
    BitFlips,
    ByteFault,
    FrameDuplication,
    GarbageInsertion,
    LengthFieldCorruption,
    Truncation,
    corrupt_bytes,
    fuzz_corpus,
)

PAYLOAD = bytes(range(256)) * 4


def rng(seed=0):
    return np.random.default_rng(seed)


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        first, faults_a = corrupt_bytes(PAYLOAD, BYTE_FAULT_CATALOGUE, seed=99)
        second, faults_b = corrupt_bytes(PAYLOAD, BYTE_FAULT_CATALOGUE, seed=99)
        assert first == second
        assert [f.to_dict() for f in faults_a] == [f.to_dict() for f in faults_b]

    def test_different_seed_different_bytes(self):
        first, _ = corrupt_bytes(PAYLOAD, [BitFlips(n_flips=16)], seed=1)
        second, _ = corrupt_bytes(PAYLOAD, [BitFlips(n_flips=16)], seed=2)
        assert first != second

    @given(data=st.binary(min_size=2, max_size=512), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_replayable_for_arbitrary_input(self, data, seed):
        first, _ = corrupt_bytes(data, BYTE_FAULT_CATALOGUE, seed=seed)
        second, _ = corrupt_bytes(data, BYTE_FAULT_CATALOGUE, seed=seed)
        assert isinstance(first, bytes) and first == second


class TestInjectorContracts:
    def test_truncation_shortens_but_never_empties(self):
        corrupted, [fault] = Truncation(min_keep=4).apply(PAYLOAD, rng())
        assert 4 <= len(corrupted) < len(PAYLOAD)
        assert corrupted == PAYLOAD[: len(corrupted)]
        assert fault.kind == "truncation"

    def test_truncation_short_input_is_noop(self):
        data = b"ab"
        corrupted, faults = Truncation(min_keep=2).apply(data, rng())
        assert corrupted == data and faults == []

    def test_bit_flips_preserve_length(self):
        corrupted, [fault] = BitFlips(n_flips=8).apply(PAYLOAD, rng())
        assert len(corrupted) == len(PAYLOAD)
        assert corrupted != PAYLOAD
        assert fault.kind == "bit_flips"

    def test_zero_flips_is_noop(self):
        corrupted, faults = BitFlips(n_flips=0).apply(PAYLOAD, rng())
        assert corrupted is PAYLOAD and faults == []

    def test_length_field_preserves_length(self):
        corrupted, faults = LengthFieldCorruption(n_fields=3).apply(PAYLOAD, rng())
        assert len(corrupted) == len(PAYLOAD)
        assert len(faults) == 3
        assert all(f.kind == "length_field" for f in faults)

    def test_frame_duplication_grows(self):
        corrupted, [fault] = FrameDuplication(max_frame=32).apply(PAYLOAD, rng())
        assert len(PAYLOAD) < len(corrupted) <= len(PAYLOAD) + 32
        assert fault.kind == "frame_duplication"

    def test_garbage_insertion_grows_by_n_bytes(self):
        corrupted, [fault] = GarbageInsertion(n_bytes=7).apply(PAYLOAD, rng())
        assert len(corrupted) == len(PAYLOAD) + 7
        assert fault.kind == "garbage_insertion"

    def test_misconfiguration_rejected(self):
        with pytest.raises(FaultInjectionError):
            Truncation(min_keep=0)
        with pytest.raises(FaultInjectionError):
            BitFlips(n_flips=-1)
        with pytest.raises(FaultInjectionError):
            LengthFieldCorruption(endian="?")
        with pytest.raises(FaultInjectionError):
            GarbageInsertion(n_bytes=-1)

    def test_bytefault_to_dict(self):
        assert ByteFault("truncation", "cut").to_dict() == {
            "kind": "truncation",
            "detail": "cut",
        }


class TestFuzzCorpus:
    def test_yields_n_seeded_variants(self):
        variants = list(fuzz_corpus(PAYLOAD, seed=100, n=11))
        assert len(variants) == 11
        assert [seed for seed, _, _ in variants] == list(range(100, 111))
        # Each variant is individually replayable from its seed alone.
        for i, (seed, corrupted, _) in enumerate(variants):
            injector = BYTE_FAULT_CATALOGUE[i % len(BYTE_FAULT_CATALOGUE)]
            replayed, _ = corrupt_bytes(PAYLOAD, [injector], seed=seed)
            assert replayed == corrupted

    def test_cycles_full_catalogue(self):
        n = len(BYTE_FAULT_CATALOGUE)
        kinds = [
            faults[0].kind
            for _, _, faults in fuzz_corpus(PAYLOAD, seed=0, n=n)
            if faults
        ]
        assert set(kinds) == {injector.kind for injector in BYTE_FAULT_CATALOGUE}

    def test_zero_n_is_empty(self):
        assert list(fuzz_corpus(PAYLOAD, seed=0, n=0)) == []

    def test_bad_arguments_rejected(self):
        with pytest.raises(FaultInjectionError):
            list(fuzz_corpus(PAYLOAD, seed=0, n=-1))
        with pytest.raises(FaultInjectionError):
            list(fuzz_corpus(PAYLOAD, seed=0, n=1, injectors=()))
