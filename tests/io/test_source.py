"""open_trace / resolve_source resolution-rule tests."""

import numpy as np
import pytest
from scipy.io import savemat

from repro.channel.trace import CsiTrace
from repro.exceptions import IngestError
from repro.io import (
    open_trace,
    open_traces,
    resolve_source,
    scenario_band,
    sniff_format,
    synthesize_from_spec,
)
from repro.io.intel import write_intel_dat


class TestSniffing:
    def test_extensions_are_decisive(self, tmp_path):
        for name, expected in (
            ("a.npz", "npz"),
            ("b.dat", "intel-dat"),
            ("c.mat", "spotfi-mat"),
        ):
            # Extension sniffing never opens the file.
            assert sniff_format(tmp_path / name) == expected

    def test_magic_npz(self, tmp_path, rng):
        path = tmp_path / "archive.bin"
        trace = CsiTrace(csi=rng.standard_normal((1, 3, 30)) + 0j, snr_db=5.0)
        trace.save(tmp_path / "t.npz")
        path.write_bytes((tmp_path / "t.npz").read_bytes())
        assert sniff_format(path) == "npz"

    def test_magic_matlab(self, tmp_path, rng):
        path = tmp_path / "capture.bin"
        savemat(tmp_path / "c.mat", {"csi": rng.standard_normal((3, 30)) + 0j})
        path.write_bytes((tmp_path / "c.mat").read_bytes())
        assert sniff_format(path) == "spotfi-mat"

    def test_magic_intel(self, tmp_path, int8_csi):
        path = tmp_path / "log.bin"
        write_intel_dat(tmp_path / "l.dat", int8_csi)
        path.write_bytes((tmp_path / "l.dat").read_bytes())
        assert sniff_format(path) == "intel-dat"

    def test_unrecognized_rejected(self, tmp_path):
        path = tmp_path / "mystery.bin"
        path.write_bytes(b"\x00\x00\x00garbage")
        with pytest.raises(IngestError, match="cannot determine"):
            sniff_format(path)


class TestResolutionRules:
    def test_dataset_prefix(self):
        resolved = resolve_source("dataset://lab/ap-west")
        assert resolved.kind == "dataset"
        assert resolved.dataset == "lab/ap-west"

    def test_empty_dataset_name_rejected(self):
        with pytest.raises(IngestError, match="empty dataset name"):
            resolve_source("dataset://")

    def test_synthetic_prefix(self):
        assert resolve_source("synthetic://random?n=2").kind == "synthetic"

    def test_existing_file_wins_over_scenario_name(self, tmp_path, rng, monkeypatch):
        monkeypatch.chdir(tmp_path)
        trace = CsiTrace(csi=rng.standard_normal((1, 3, 30)) + 0j, snr_db=5.0)
        trace.save(tmp_path / "t.npz")
        (tmp_path / "medium").write_bytes((tmp_path / "t.npz").read_bytes())
        resolved = resolve_source("medium")
        assert resolved.kind == "file"
        assert resolved.format == "npz"

    def test_bare_scenario_name_when_no_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert resolve_source("medium").kind == "synthetic"
        assert resolve_source("random?n=2").kind == "synthetic"

    def test_unknown_source_rejected(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(IngestError, match="neither an existing file"):
            resolve_source("no-such-thing")

    def test_format_override(self, tmp_path, int8_csi):
        path = tmp_path / "misleading.npz"
        write_intel_dat(path, int8_csi)
        assert resolve_source(path, format="intel-dat").format == "intel-dat"
        with pytest.raises(IngestError, match="unknown format"):
            resolve_source(path, format="csv")


class TestOpenTrace:
    def test_trace_instance_passes_through(self, rng):
        trace = CsiTrace(csi=rng.standard_normal((1, 3, 30)) + 0j, snr_db=5.0)
        assert open_trace(trace) is trace

    def test_npz_round_trip(self, tmp_path, rng):
        trace = CsiTrace(csi=rng.standard_normal((2, 3, 30)) + 0j, snr_db=5.0)
        path = tmp_path / "t.npz"
        trace.save(path)
        assert open_trace(path).equals(trace)

    def test_dat_equals_parser(self, tmp_path, int8_csi):
        from repro.io.intel import read_intel_dat

        path = tmp_path / "t.dat"
        write_intel_dat(path, int8_csi)
        assert open_trace(path).equals(read_intel_dat(path))

    def test_dataset_source(self, fixture_dir):
        trace = open_trace("dataset://lab/ap-west", registry=fixture_dir)
        assert trace.source_format == "intel-dat"
        assert trace.ap_id == "ap-west"
        assert not np.isnan(trace.direct_aoa_deg)

    def test_fan_out_rejected(self):
        with pytest.raises(IngestError, match="resolves to 3 traces"):
            open_trace("synthetic://random?n=3")

    def test_single_synthetic_allowed(self):
        trace = open_trace("synthetic://fixed?aoa=140&packets=4")
        assert trace.n_packets == 4
        assert trace.direct_aoa_deg == 140.0

    def test_stages_applied(self, fixture_dir):
        from repro.io import StoRemoval

        raw = open_trace("dataset://lab/ap-west", registry=fixture_dir)
        cleaned = open_trace(
            "dataset://lab/ap-west",
            registry=fixture_dir,
            stages=[StoRemoval.for_bandwidth(40)],
        )
        assert not np.allclose(cleaned.csi, raw.csi)

    def test_csitrace_load_delegates_here(self, tmp_path, int8_csi):
        # The API-redesign contract: CsiTrace.load accepts every source
        # the front door accepts, including non-npz formats.
        path = tmp_path / "t.dat"
        write_intel_dat(path, int8_csi)
        assert CsiTrace.load(path).source_format == "intel-dat"


class TestSyntheticSpecs:
    def test_random_matches_legacy_batch_loop(self):
        # The exact generation the old `roarray batch --synthetic N`
        # performed, for checkpoint/golden compatibility.
        from repro.channel.array import UniformLinearArray
        from repro.channel.csi import CsiSynthesizer
        from repro.channel.impairments import ImpairmentModel
        from repro.channel.ofdm import intel5300_layout
        from repro.channel.paths import random_profile

        seed, packets, snr = 3, 6, 9.0
        rng = np.random.default_rng(seed)
        synthesizer = CsiSynthesizer(
            UniformLinearArray(), intel5300_layout(), ImpairmentModel(), seed=seed
        )
        legacy = []
        for _ in range(2):
            profile = random_profile(
                rng, n_paths=4, direct_aoa_deg=float(rng.uniform(20, 160))
            )
            legacy.append(
                synthesizer.packets(profile, n_packets=packets, snr_db=snr, rng=rng)
            )

        pairs = synthesize_from_spec(f"synthetic://random?n=2&packets={packets}&snr={snr:g}&seed={seed}")
        assert [label for label, _ in pairs] == ["synthetic[0]", "synthetic[1]"]
        for (_, trace), want in zip(pairs, legacy):
            assert trace.equals(want)

    def test_band_scenario_labels(self):
        pairs = synthesize_from_spec("synthetic://band/medium?n=2&seed=1")
        assert [label for label, _ in pairs] == ["medium[0]", "medium[1]"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(IngestError, match="unknown synthetic scenario"):
            synthesize_from_spec("synthetic://weird")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(IngestError, match="unknown synthetic spec parameter"):
            synthesize_from_spec("synthetic://random?bogus=1")

    def test_bad_parameter_value_rejected(self):
        with pytest.raises(IngestError, match="not an int"):
            synthesize_from_spec("synthetic://random?n=many")

    def test_deterministic(self):
        a = synthesize_from_spec("synthetic://fixed?aoa=100&seed=5")[0][1]
        b = synthesize_from_spec("synthetic://fixed?aoa=100&seed=5")[0][1]
        assert a.equals(b)


class TestScenarioBand:
    def test_bare_and_spec_spellings(self):
        assert scenario_band("medium") == "medium"
        assert scenario_band("synthetic://band/medium") == "medium"
        assert scenario_band("synthetic://low") == "low"

    def test_rejects_non_band(self):
        with pytest.raises(IngestError, match="not an SNR band"):
            scenario_band("random")

    def test_rejects_parameters(self):
        with pytest.raises(IngestError, match="must not carry parameters"):
            scenario_band("synthetic://band/medium?n=3")


class TestOpenTraces:
    def test_fan_out_labels(self):
        pairs = open_traces("synthetic://random?n=2&seed=4")
        assert len(pairs) == 2
        assert [label for label, _ in pairs] == ["synthetic[0]", "synthetic[1]"]
