"""SpotFi .mat capture reader tests."""

import numpy as np
import pytest
from scipy.io import savemat

from repro.exceptions import IngestError
from repro.io.matio import read_spotfi_mat


def complex_csi(rng, shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestLayouts:
    def test_flat_vector_is_antenna_major(self, tmp_path, rng):
        csi = complex_csi(rng, (3, 30))
        path = tmp_path / "flat.mat"
        savemat(path, {"csi": csi.reshape(-1)})
        trace = read_spotfi_mat(path)
        assert trace.csi.shape == (1, 3, 30)
        np.testing.assert_allclose(trace.csi[0], csi)
        assert trace.source_format == "spotfi-mat"

    def test_2d_antennas_by_subcarriers(self, tmp_path, rng):
        csi = complex_csi(rng, (3, 30))
        path = tmp_path / "matrix.mat"
        savemat(path, {"csi": csi})
        np.testing.assert_allclose(read_spotfi_mat(path).csi[0], csi)

    def test_2d_transposed_is_disambiguated(self, tmp_path, rng):
        csi = complex_csi(rng, (3, 30))
        path = tmp_path / "transposed.mat"
        savemat(path, {"csi": csi.T})
        np.testing.assert_allclose(read_spotfi_mat(path).csi[0], csi)

    def test_3d_packet_batch(self, tmp_path, rng):
        csi = complex_csi(rng, (4, 3, 30))
        path = tmp_path / "batch.mat"
        savemat(path, {"csi_trace": csi})
        trace = read_spotfi_mat(path)
        assert trace.csi.shape == (4, 3, 30)
        np.testing.assert_allclose(trace.csi, csi)


class TestVariables:
    def test_candidate_names_searched_in_order(self, tmp_path, rng):
        csi = complex_csi(rng, (3, 30))
        path = tmp_path / "named.mat"
        savemat(path, {"sample_csi_trace": csi, "unrelated": np.arange(4)})
        np.testing.assert_allclose(read_spotfi_mat(path).csi[0], csi)

    def test_explicit_variable_wins(self, tmp_path, rng):
        wanted = complex_csi(rng, (3, 30))
        decoy = complex_csi(rng, (3, 30))
        path = tmp_path / "two.mat"
        savemat(path, {"csi": decoy, "mine": wanted})
        np.testing.assert_allclose(
            read_spotfi_mat(path, variable="mine").csi[0], wanted
        )

    def test_missing_variable_rejected(self, tmp_path, rng):
        path = tmp_path / "missing.mat"
        savemat(path, {"csi": complex_csi(rng, (3, 30))})
        with pytest.raises(IngestError, match="no variable 'nope'"):
            read_spotfi_mat(path, variable="nope")

    def test_no_candidate_rejected(self, tmp_path):
        path = tmp_path / "none.mat"
        savemat(path, {"unrelated": np.arange(4)})
        with pytest.raises(IngestError):
            read_spotfi_mat(path)

    def test_real_valued_csi_warns(self, tmp_path, rng):
        path = tmp_path / "real.mat"
        savemat(path, {"csi": rng.standard_normal((3, 30))})
        with pytest.warns(RuntimeWarning, match="real"):
            read_spotfi_mat(path)

    def test_not_a_mat_file(self, tmp_path):
        path = tmp_path / "junk.mat"
        path.write_bytes(b"this is not matlab")
        with pytest.raises(IngestError):
            read_spotfi_mat(path)


class TestFixture:
    def test_committed_sample_parses(self, fixture_dir):
        trace = read_spotfi_mat(fixture_dir / "sample_spotfi.mat")
        assert trace.csi.shape == (1, 3, 30)
        assert np.all(np.isfinite(trace.csi))
