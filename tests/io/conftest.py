"""Shared fixtures for the repro.io tests."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.channel.array import UniformLinearArray
from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.ofdm import intel5300_layout
from repro.channel.paths import MultipathProfile, PropagationPath

FIXTURE_DIR = Path(__file__).parent.parent / "fixtures" / "real_captures"


@pytest.fixture
def fixture_dir() -> Path:
    return FIXTURE_DIR


@pytest.fixture
def smooth_trace(rng):
    """A realistic multipath trace with smooth per-antenna phase.

    STO-removal property tests need channels whose unwrapped phase is
    well defined — white random-phase matrices flip unwrap branches and
    are not representative of any physical channel.
    """
    profile = MultipathProfile(
        paths=[
            PropagationPath(aoa_deg=72.0, toa_s=35e-9, gain=1.0 + 0.0j, is_direct=True),
            PropagationPath(aoa_deg=121.0, toa_s=150e-9, gain=0.35 * np.exp(0.7j)),
            PropagationPath(aoa_deg=48.0, toa_s=260e-9, gain=0.2 * np.exp(-1.1j)),
        ]
    )
    synthesizer = CsiSynthesizer(
        UniformLinearArray(),
        intel5300_layout(),
        ImpairmentModel(
            detection_delay_range_s=80e-9,
            phase_offset_std_rad=0.0,
            sfo_std_s=0.0,
            cfo_residual_rad=0.1,
        ),
        seed=7,
    )
    return synthesizer.packets(profile, n_packets=6, snr_db=25.0, rng=rng)


@pytest.fixture
def int8_csi(rng):
    """Random integer-valued complex CSI, shape (packets, 3, 30)."""
    real = rng.integers(-128, 128, size=(5, 3, 30))
    imag = rng.integers(-128, 128, size=(5, 3, 30))
    return real + 1j * imag
