"""Differential fuzz: hostile capture bytes never escape the taxonomy.

Every parser in :mod:`repro.io` is driven with seeded byte-level
corruptions of a known-valid capture (plus raw hypothesis garbage) and
must either return a usable trace or raise :class:`IngestError` with a
``kind`` from :data:`INGEST_FAULT_KINDS` — never a stray
``struct.error``, ``IndexError``, or infinite loop.  ``REPRO_FUZZ_N``
scales the corpus (the CI ``fuzz-smoke`` job runs 1000 variants per
format; the default keeps tier-1 fast).
"""

import os
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.io import savemat

from repro.channel.trace import CsiTrace
from repro.exceptions import INGEST_FAULT_KINDS, IngestError
from repro.io import (
    fuzz_corpus,
    read_intel_dat,
    read_npz_trace,
    read_spotfi_mat,
    write_intel_dat,
)

FUZZ_N = int(os.environ.get("REPRO_FUZZ_N", "24"))
FUZZ_SEED = 20260807
FORMATS = ("dat", "mat", "npz")

PARSERS = {
    "dat": read_intel_dat,
    "mat": read_spotfi_mat,
    "npz": read_npz_trace,
}


@pytest.fixture(scope="module")
def seed_captures(tmp_path_factory):
    """One small, definitely-valid capture per wire format, as bytes."""
    root = tmp_path_factory.mktemp("fuzz-seeds")
    rng = np.random.default_rng(7)
    csi_int = rng.integers(-128, 128, size=(4, 3, 30)) + 1j * rng.integers(
        -128, 128, size=(4, 3, 30)
    )
    csi = rng.normal(size=(4, 3, 30)) + 1j * rng.normal(size=(4, 3, 30))
    write_intel_dat(root / "seed.dat", csi_int)
    savemat(root / "seed.mat", {"csi": csi})
    CsiTrace(csi=csi, snr_db=20.0).save(root / "seed.npz")
    return {fmt: (root / f"seed.{fmt}").read_bytes() for fmt in FORMATS}


def _parse(fmt, path):
    """Run one parser with its (expected, already-tested) warnings muted."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return PARSERS[fmt](path)


class TestSeedCorpus:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_uncorrupted_seed_parses(self, fmt, seed_captures, tmp_path):
        path = tmp_path / f"seed.{fmt}"
        path.write_bytes(seed_captures[fmt])
        trace = _parse(fmt, path)
        assert trace.csi.shape == (4, 3, 30)


class TestDifferentialFuzz:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_corrupted_captures_parse_or_raise_taxonomized(
        self, fmt, seed_captures, tmp_path
    ):
        path = tmp_path / f"variant.{fmt}"
        n_ok = n_rejected = 0
        kinds_seen = set()
        for seed, corrupted, faults in fuzz_corpus(
            seed_captures[fmt], seed=FUZZ_SEED, n=FUZZ_N
        ):
            path.write_bytes(corrupted)
            try:
                trace = _parse(fmt, path)
            except IngestError as error:
                assert error.kind in INGEST_FAULT_KINDS
                assert str(error)
                kinds_seen.add(error.kind)
                n_rejected += 1
            except Exception as error:  # noqa: BLE001 - the contract under test
                injected = [fault.to_dict() for fault in faults]
                pytest.fail(
                    f"{fmt} variant seed={seed} escaped the taxonomy with "
                    f"{type(error).__name__}: {error} (injected faults: {injected})"
                )
            else:
                # Survivors must be structurally sound, not half-parsed.
                assert trace.csi.ndim == 3
                assert trace.csi.shape[0] >= 1
                n_ok += 1
        assert n_ok + n_rejected == FUZZ_N
        assert kinds_seen <= set(INGEST_FAULT_KINDS)

    @pytest.mark.parametrize("fmt", FORMATS)
    @given(data=st.binary(max_size=512))
    @settings(max_examples=20, deadline=None)
    def test_raw_garbage_never_escapes(self, fmt, tmp_path_factory, data):
        path = tmp_path_factory.mktemp("garbage") / f"junk.{fmt}"
        path.write_bytes(data)
        try:
            _parse(fmt, path)
        except IngestError as error:
            assert error.kind in INGEST_FAULT_KINDS


class TestCraftedFraming:
    """Regressions for the framing attacks the resync logic must survive."""

    @pytest.fixture()
    def valid_dat(self, seed_captures):
        return seed_captures["dat"]

    def test_zero_length_field_resynchronizes(self, valid_dat, tmp_path):
        path = tmp_path / "zero-len.dat"
        path.write_bytes(b"\x00\x00" + valid_dat)
        with pytest.warns(RuntimeWarning, match="zero field_len"):
            trace = read_intel_dat(path)
        assert trace.n_packets == 4

    def test_past_eof_length_resynchronizes(self, valid_dat, tmp_path):
        corrupted = bytearray(valid_dat)
        corrupted[0:2] = (0xFFFF).to_bytes(2, "big")
        path = tmp_path / "past-eof.dat"
        path.write_bytes(bytes(corrupted))
        with pytest.warns(RuntimeWarning, match="past EOF"):
            trace = read_intel_dat(path)
        # The lying record is lost; every record behind it is recovered.
        assert trace.n_packets == 3

    def test_self_referential_record_is_skipped(self, valid_dat, tmp_path):
        # field_len = 1 frames a bfee "record" that is only its own code
        # byte; the decoder must reject it and resync on the real stream.
        path = tmp_path / "self-ref.dat"
        path.write_bytes(b"\x00\x01\xbb" + valid_dat)
        with pytest.warns(RuntimeWarning, match="too short"):
            trace = read_intel_dat(path)
        assert trace.n_packets == 4

    def test_tiny_file_is_empty_not_a_crash(self, tmp_path):
        path = tmp_path / "tiny.dat"
        path.write_bytes(b"\x00")
        with pytest.warns(RuntimeWarning, match="trailing bytes"):
            with pytest.raises(IngestError) as excinfo:
                read_intel_dat(path)
        assert excinfo.value.kind == "empty"

    def test_missing_file_is_io_kind(self, tmp_path):
        with pytest.raises(IngestError) as excinfo:
            read_intel_dat(tmp_path / "nope.dat")
        assert excinfo.value.kind == "io"

    def test_non_zip_npz_is_taxonomized(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(IngestError) as excinfo:
            read_npz_trace(path)
        assert excinfo.value.kind in INGEST_FAULT_KINDS

    def test_non_mat_bytes_are_taxonomized(self, tmp_path):
        path = tmp_path / "junk.mat"
        path.write_bytes(bytes(range(128)))
        with pytest.raises(IngestError) as excinfo:
            read_spotfi_mat(path)
        assert excinfo.value.kind in INGEST_FAULT_KINDS
