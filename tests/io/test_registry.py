"""Dataset registry manifest / checksum / ground-truth tests."""

import numpy as np
import pytest

from repro.channel.trace import CsiTrace
from repro.exceptions import DatasetError
from repro.io.intel import write_intel_dat
from repro.io.registry import DatasetRegistry, file_sha256


@pytest.fixture
def capture(tmp_path, int8_csi):
    path = tmp_path / "captures" / "west.dat"
    path.parent.mkdir()
    write_intel_dat(path, int8_csi)
    return path


class TestRegistration:
    def test_register_save_load_round_trip(self, tmp_path, capture):
        registry = DatasetRegistry(tmp_path)
        registry.register(
            "lab/west",
            capture,
            format="intel-dat",
            description="west wall AP",
            ap={"position": [0.0, 6.0], "axis_direction_deg": 0.0, "name": "ap-west"},
            ground_truth={"direct_aoa_deg": 111.8},
        )
        registry.save()

        reloaded = DatasetRegistry(tmp_path)
        entry = reloaded.entry("lab/west")
        assert entry.format == "intel-dat"
        assert entry.description == "west wall AP"
        assert entry.sha256 == file_sha256(capture)
        ap = entry.access_point()
        assert ap is not None and ap.name == "ap-west"
        assert ap.position == (0.0, 6.0)

    def test_paths_stored_relative(self, tmp_path, capture):
        registry = DatasetRegistry(tmp_path)
        registry.register("d", capture, format="intel-dat")
        assert registry.entries["d"].path == "captures/west.dat"

    def test_duplicate_needs_overwrite(self, tmp_path, capture):
        registry = DatasetRegistry(tmp_path)
        registry.register("d", capture, format="intel-dat")
        with pytest.raises(DatasetError, match="already registered"):
            registry.register("d", capture, format="intel-dat")
        registry.register("d", capture, format="intel-dat", overwrite=True)

    def test_unknown_format_rejected(self, tmp_path, capture):
        with pytest.raises(DatasetError, match="unknown dataset format"):
            DatasetRegistry(tmp_path).register("d", capture, format="csv")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="missing file"):
            DatasetRegistry(tmp_path).register(
                "d", tmp_path / "ghost.dat", format="intel-dat"
            )


class TestIntegrity:
    def test_checksum_verified_on_load(self, tmp_path, capture):
        registry = DatasetRegistry(tmp_path)
        registry.register("d", capture, format="intel-dat")
        registry.save()
        capture.write_bytes(capture.read_bytes() + b"\x00")
        with pytest.raises(DatasetError, match="checksum mismatch"):
            DatasetRegistry(tmp_path).load_trace("d")

    def test_unknown_name_lists_known(self, tmp_path, capture):
        registry = DatasetRegistry(tmp_path)
        registry.register("d", capture, format="intel-dat")
        with pytest.raises(DatasetError, match="unknown dataset 'nope'.*known: d"):
            registry.entry("nope")

    def test_bad_manifest_version_rejected(self, tmp_path):
        (tmp_path / "registry.json").write_text('{"version": 99, "datasets": {}}')
        with pytest.raises(DatasetError, match="version"):
            DatasetRegistry(tmp_path)


class TestGroundTruth:
    def test_truth_fills_nan_fields(self, tmp_path, capture):
        registry = DatasetRegistry(tmp_path)
        registry.register(
            "d",
            capture,
            format="intel-dat",
            ground_truth={"direct_aoa_deg": 111.8, "direct_toa_s": 3.3e-8},
        )
        trace = registry.load_trace("d")
        assert trace.direct_aoa_deg == 111.8
        assert trace.direct_toa_s == 3.3e-8

    def test_truth_does_not_override_measured(self, tmp_path, rng):
        # snr_db is measured by the parser from npz; the survey value
        # must not clobber it.
        trace = CsiTrace(csi=rng.standard_normal((1, 3, 30)) + 0j, snr_db=17.0)
        path = tmp_path / "t.npz"
        trace.save(path)
        registry = DatasetRegistry(tmp_path)
        registry.register("d", path, format="npz", ground_truth={"snr_db": 99.0})
        assert registry.load_trace("d").snr_db == 17.0

    def test_ap_id_applied(self, tmp_path, capture):
        registry = DatasetRegistry(tmp_path)
        registry.register(
            "d", capture, format="intel-dat", ap={"position": [0, 0], "name": "ap-x"}
        )
        assert registry.load_trace("d").ap_id == "ap-x"


class TestCommittedFixtures:
    def test_fixture_manifest_loads_all(self, fixture_dir):
        registry = DatasetRegistry(fixture_dir)
        assert registry.names() == [
            "lab/ap-east",
            "lab/ap-south-1",
            "lab/ap-west",
            "lab/spotfi-sample",
        ]
        for name in registry.names():
            trace = registry.load_trace(name)
            assert trace.n_antennas == 3
            assert np.all(np.isfinite(trace.csi))
