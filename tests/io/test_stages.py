"""Preprocessing-stage tests: STO removal golden + properties."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.io.matio import read_spotfi_mat
from repro.io.stages import (
    PhaseOffsetCorrection,
    PreprocessingStage,
    QuarantineGate,
    StoRemoval,
    default_stages,
    remove_sto,
    run_stages,
    subcarrier_indices,
)


class TestSubcarrierIndices:
    def test_20mhz_grid(self):
        indices = subcarrier_indices(20)
        assert indices.shape == (30,)
        assert indices[0] == -28 and indices[-1] == 28
        assert np.all(np.diff(indices) > 0)

    def test_40mhz_grid(self):
        indices = subcarrier_indices(40)
        assert indices.shape == (30,)
        assert indices[0] == -58 and indices[-1] == 58

    def test_rejects_other_bandwidths(self):
        with pytest.raises(ConfigurationError):
            subcarrier_indices(80)

    def test_rejects_wrong_grouping(self):
        with pytest.raises(ConfigurationError):
            subcarrier_indices(20, grouping=4)


class TestStoGolden:
    """The committed .mat capture pinned through SpotFi STO removal."""

    def test_matches_pinned_output(self, fixture_dir):
        trace = read_spotfi_mat(fixture_dir / "sample_spotfi.mat")
        cleaned, report = StoRemoval.for_bandwidth(20).apply(trace)
        golden = np.load(fixture_dir / "sto_golden.npz")
        np.testing.assert_allclose(cleaned.csi, golden["cleaned_csi"], atol=1e-12)
        np.testing.assert_allclose(
            report.details["slopes_rad"], golden["slopes_rad"], atol=1e-12
        )
        np.testing.assert_allclose(
            report.details["delays_ns"], golden["delays_ns"], atol=1e-9
        )
        assert report.changed


class TestStoProperties:
    def test_idempotent_on_multipath(self, smooth_trace):
        stage = StoRemoval()
        once, report1 = stage.apply(smooth_trace)
        twice, report2 = stage.apply(once)
        assert report1.changed
        # Second pass finds nothing left: zero slope, zero intercept.
        assert report2.metrics["max_abs_slope_rad"] < 1e-10
        np.testing.assert_allclose(twice.csi, once.csi, atol=1e-9)

    def test_zero_slope_fixed_point(self, smooth_trace):
        # A trace whose ramp was already removed is a fixed point: the
        # stage returns the *same object* (changed=False contract).
        stage = StoRemoval()
        cleaned, _ = stage.apply(smooth_trace)
        again, report = stage.apply(cleaned)
        slopes = np.asarray(report.details["slopes_rad"])
        assert np.max(np.abs(slopes)) < 1e-10
        np.testing.assert_allclose(again.csi, cleaned.csi, atol=1e-9)

    def test_preserves_antenna_phase_differences(self, smooth_trace):
        # The removed ramp is common to all antennas, so inter-antenna
        # phase (the AoA information) must be untouched.
        cleaned, _ = StoRemoval().apply(smooth_trace)
        before = smooth_trace.csi[:, 1:, :] * np.conj(smooth_trace.csi[:, :1, :])
        after = cleaned.csi[:, 1:, :] * np.conj(cleaned.csi[:, :1, :])
        np.testing.assert_allclose(np.angle(after), np.angle(before), atol=1e-9)

    def test_removes_injected_ramp(self, smooth_trace):
        indices = np.arange(smooth_trace.n_subcarriers, dtype=float)
        ramp = np.exp(-1j * 0.21 * indices)
        from dataclasses import replace

        ramped = replace(smooth_trace, csi=smooth_trace.csi * ramp)
        base_clean, _ = StoRemoval().apply(smooth_trace)
        ramp_clean, report = StoRemoval().apply(ramped)
        np.testing.assert_allclose(ramp_clean.csi, base_clean.csi, atol=1e-9)
        slopes = np.asarray(report.details["slopes_rad"])
        # Injected slope on top of the trace's own detection delays.
        base_slopes = np.asarray(
            StoRemoval().apply(smooth_trace)[1].details["slopes_rad"]
        )
        np.testing.assert_allclose(slopes - base_slopes, -0.21, atol=1e-9)

    def test_functional_wrapper_matches_stage(self, smooth_trace):
        matrix = smooth_trace.csi[0]
        via_function = remove_sto(matrix, bandwidth_mhz=20)
        stage = StoRemoval.for_bandwidth(20)
        from dataclasses import replace

        one_packet = replace(smooth_trace, csi=matrix[None])
        via_stage, _ = stage.apply(one_packet)
        np.testing.assert_allclose(via_function, via_stage.csi[0], atol=1e-12)

    def test_index_count_mismatch_rejected(self, smooth_trace):
        stage = StoRemoval(indices=np.arange(5, dtype=float))
        with pytest.raises(ConfigurationError, match="subcarrier"):
            stage.apply(smooth_trace)


class TestOtherStages:
    def test_phase_offset_correction_identity_on_zero(self, smooth_trace):
        stage = PhaseOffsetCorrection(offsets_rad=(0.0, 0.0, 0.0))
        out, report = stage.apply(smooth_trace)
        assert out is smooth_trace
        assert not report.changed

    def test_phase_offset_correction_undoes_offsets(self, smooth_trace):
        from repro.core.calibration import apply_phase_calibration

        offsets = (0.0, 0.4, -0.9)
        from dataclasses import replace

        skewed = replace(
            smooth_trace,
            csi=apply_phase_calibration(smooth_trace.csi, -np.asarray(offsets)),
        )
        corrected, report = PhaseOffsetCorrection(offsets_rad=offsets).apply(skewed)
        assert report.changed
        np.testing.assert_allclose(corrected.csi, smooth_trace.csi, atol=1e-12)

    def test_quarantine_gate_identity_on_clean(self, smooth_trace):
        out, report = QuarantineGate().apply(smooth_trace)
        assert out is smooth_trace
        assert not report.changed

    def test_quarantine_gate_drops_nan_packets(self, smooth_trace):
        from dataclasses import replace

        csi = smooth_trace.csi.copy()
        csi[1] = np.nan
        out, report = QuarantineGate().apply(replace(smooth_trace, csi=csi))
        assert report.changed
        assert out.n_packets == smooth_trace.n_packets - 1

    def test_stages_satisfy_protocol(self):
        for stage in (StoRemoval(), PhaseOffsetCorrection((0.0,)), QuarantineGate()):
            assert isinstance(stage, PreprocessingStage)


class TestRunStages:
    def test_reports_in_order(self, smooth_trace):
        stages = [StoRemoval(), QuarantineGate()]
        _, reports = run_stages(smooth_trace, stages)
        assert [r.stage for r in reports] == ["sto-removal", "quarantine-gate"]

    def test_empty_pipeline_is_identity(self, smooth_trace):
        out, reports = run_stages(smooth_trace, [])
        assert out is smooth_trace
        assert reports == []

    def test_spans_emitted(self, smooth_trace):
        from repro.obs import Tracer

        tracer = Tracer()
        run_stages(smooth_trace, [StoRemoval()], tracer=tracer)
        names = [span.name for span in tracer.spans]
        assert "preprocess" in names


class TestDefaultStages:
    @pytest.mark.parametrize(
        "source_format, expected",
        [
            ("intel-dat", ["sto-removal", "quarantine-gate"]),
            ("spotfi-mat", ["sto-removal", "quarantine-gate"]),
            ("synthetic", ["quarantine-gate"]),
            ("", ["quarantine-gate"]),
        ],
    )
    def test_pipeline_by_provenance(self, source_format, expected):
        assert [s.name for s in default_stages(source_format)] == expected

    def test_intel_uses_raw_40mhz_grid(self):
        stage = default_stages("intel-dat")[0]
        np.testing.assert_array_equal(stage.indices, subcarrier_indices(40))
