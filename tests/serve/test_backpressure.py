"""Backpressure ladder: watermarks, hysteresis, degradations, metrics."""

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry
from repro.serve import BackpressureController, BackpressurePolicy


def controller(max_pending=20, metrics=None, **policy):
    return BackpressureController(
        BackpressurePolicy(**policy), max_pending=max_pending, metrics=metrics
    )


class TestPolicyValidation:
    def test_rejects_bad_watermarks(self):
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(watermarks=(0.5, 0.75))
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(watermarks=(0.75, 0.5, 0.9))
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(watermarks=(0.0, 0.5, 0.9))

    def test_rejects_bad_degradations(self):
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(window_cap=0)
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(batch_cap_fraction=0.0)
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(shed_horizon_fraction=1.5)
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(hysteresis=-0.1)

    def test_rejects_bad_max_pending(self):
        with pytest.raises(ConfigurationError):
            controller(max_pending=0)


class TestLadder:
    def test_levels_follow_watermarks(self):
        ladder = controller(max_pending=20)
        assert ladder.update(9) == 0
        assert ladder.update(10) == 1
        assert ladder.update(15) == 2
        assert ladder.update(18) == 3
        assert ladder.max_level_seen == 3
        assert ladder.n_escalations == 3

    def test_hysteresis_holds_level_near_watermark(self):
        ladder = controller(max_pending=100)
        assert ladder.update(50) == 1
        # Just below the watermark but inside the hysteresis band: hold.
        assert ladder.update(47) == 1
        assert ladder.n_deescalations == 0
        # Clear below the band: de-escalate.
        assert ladder.update(44) == 0
        assert ladder.n_deescalations == 1

    def test_levels_can_skip_straight_down(self):
        ladder = controller(max_pending=100)
        ladder.update(95)
        assert ladder.level == 3
        assert ladder.update(0) == 0

    def test_degradations_by_level(self):
        ladder = controller(max_pending=10, window_cap=2, batch_cap_fraction=0.5)
        assert ladder.window_cap(4) == 4
        assert ladder.batch_cap(16) == 16
        assert ladder.shed_horizon_s(2.0) is None
        ladder.update(5)  # level 1
        assert ladder.window_cap(4) == 2
        assert ladder.batch_cap(16) == 16
        ladder.update(8)  # level 2
        assert ladder.batch_cap(16) == 8
        assert ladder.shed_horizon_s(2.0) is None
        ladder.update(9)  # level 3
        assert ladder.shed_horizon_s(2.0) == pytest.approx(1.0)

    def test_batch_cap_never_below_one(self):
        ladder = controller(max_pending=10, batch_cap_fraction=0.01)
        ladder.update(8)
        assert ladder.batch_cap(1) == 1

    def test_transition_metrics(self):
        metrics = MetricsRegistry()
        ladder = controller(max_pending=10, metrics=metrics)
        ladder.update(5)
        ladder.update(9)
        ladder.update(0)
        assert metrics.counter("serve.backpressure.escalate.to_level_1").value == 1
        assert metrics.counter("serve.backpressure.escalate.to_level_3").value == 1
        assert metrics.counter("serve.backpressure.deescalate.to_level_0").value == 1
        assert metrics.gauge("serve.backpressure.level").value == 0


class TestStateDict:
    def test_round_trip(self):
        ladder = controller(max_pending=10)
        ladder.update(8)
        ladder.update(2)
        restored = controller(max_pending=10)
        restored.restore_state(ladder.state_dict())
        assert restored.state_dict() == ladder.state_dict()
        assert restored.level == ladder.level

    def test_to_dict_includes_policy(self):
        ladder = controller(max_pending=10)
        payload = ladder.to_dict()
        assert payload["level"] == 0
        assert payload["policy"]["watermarks"] == [0.5, 0.75, 0.9]
