"""Backpressure ladder: watermarks, hysteresis, degradations, metrics."""

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry
from repro.serve import BackpressureController, BackpressurePolicy


def controller(max_pending=20, metrics=None, **policy):
    return BackpressureController(
        BackpressurePolicy(**policy), max_pending=max_pending, metrics=metrics
    )


class TestPolicyValidation:
    def test_rejects_bad_watermarks(self):
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(watermarks=(0.5, 0.75))
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(watermarks=(0.75, 0.5, 0.9))
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(watermarks=(0.0, 0.5, 0.9))

    def test_rejects_bad_degradations(self):
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(window_cap=0)
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(batch_cap_fraction=0.0)
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(shed_horizon_fraction=1.5)
        with pytest.raises(ConfigurationError):
            BackpressurePolicy(hysteresis=-0.1)

    def test_rejects_bad_max_pending(self):
        with pytest.raises(ConfigurationError):
            controller(max_pending=0)


class TestLadder:
    def test_levels_follow_watermarks(self):
        ladder = controller(max_pending=20)
        assert ladder.update(9) == 0
        assert ladder.update(10) == 1
        assert ladder.update(15) == 2
        assert ladder.update(18) == 3
        assert ladder.max_level_seen == 3
        assert ladder.n_escalations == 3

    def test_hysteresis_holds_level_near_watermark(self):
        ladder = controller(max_pending=100)
        assert ladder.update(50) == 1
        # Just below the watermark but inside the hysteresis band: hold.
        assert ladder.update(47) == 1
        assert ladder.n_deescalations == 0
        # Clear below the band: de-escalate.
        assert ladder.update(44) == 0
        assert ladder.n_deescalations == 1

    def test_levels_can_skip_straight_down(self):
        ladder = controller(max_pending=100)
        ladder.update(95)
        assert ladder.level == 3
        assert ladder.update(0) == 0

    def test_degradations_by_level(self):
        ladder = controller(max_pending=10, window_cap=2, batch_cap_fraction=0.5)
        assert ladder.window_cap(4) == 4
        assert ladder.batch_cap(16) == 16
        assert ladder.shed_horizon_s(2.0) is None
        ladder.update(5)  # level 1
        assert ladder.window_cap(4) == 2
        assert ladder.batch_cap(16) == 16
        ladder.update(8)  # level 2
        assert ladder.batch_cap(16) == 8
        assert ladder.shed_horizon_s(2.0) is None
        ladder.update(9)  # level 3
        assert ladder.shed_horizon_s(2.0) == pytest.approx(1.0)

    def test_batch_cap_never_below_one(self):
        ladder = controller(max_pending=10, batch_cap_fraction=0.01)
        ladder.update(8)
        assert ladder.batch_cap(1) == 1

    def test_transition_metrics(self):
        metrics = MetricsRegistry()
        ladder = controller(max_pending=10, metrics=metrics)
        ladder.update(5)
        ladder.update(9)
        ladder.update(0)
        assert metrics.counter("serve.backpressure.escalate.to_level_1").value == 1
        assert metrics.counter("serve.backpressure.escalate.to_level_3").value == 1
        assert metrics.counter("serve.backpressure.deescalate.to_level_0").value == 1
        assert metrics.gauge("serve.backpressure.level").value == 0


class TestStateDict:
    def test_round_trip(self):
        ladder = controller(max_pending=10)
        ladder.update(8)
        ladder.update(2)
        restored = controller(max_pending=10)
        restored.restore_state(ladder.state_dict())
        assert restored.state_dict() == ladder.state_dict()
        assert restored.level == ladder.level

    def test_to_dict_includes_policy(self):
        ladder = controller(max_pending=10)
        payload = ladder.to_dict()
        assert payload["level"] == 0
        assert payload["policy"]["watermarks"] == [0.5, 0.75, 0.9]


class TestWatermarkBoundaries:
    """Exact behavior at the default 0.5 / 0.75 / 0.9 watermarks.

    ``max_pending=1000`` makes one pending packet an occupancy epsilon
    of 0.001, so each case sits just below, exactly at, or just above a
    watermark — the three points where an off-by-one in the >= / <
    comparisons or the hysteresis arithmetic would flip the level.
    """

    EPSILON = 1  # pending-count epsilon at max_pending=1000

    def at(self, fraction: float, offset: int = 0) -> int:
        return int(round(fraction * 1000)) + offset

    @pytest.mark.parametrize(
        "watermark,level", [(0.5, 1), (0.75, 2), (0.9, 3)]
    )
    def test_exactly_at_watermark_escalates(self, watermark, level):
        ladder = controller(max_pending=1000)
        assert ladder.update(self.at(watermark)) == level

    @pytest.mark.parametrize(
        "watermark,level_below", [(0.5, 0), (0.75, 1), (0.9, 2)]
    )
    def test_epsilon_below_watermark_stays_below(self, watermark, level_below):
        ladder = controller(max_pending=1000)
        assert ladder.update(self.at(watermark, -self.EPSILON)) == level_below

    @pytest.mark.parametrize(
        "watermark,level", [(0.5, 1), (0.75, 2), (0.9, 3)]
    )
    def test_epsilon_above_watermark_escalates(self, watermark, level):
        ladder = controller(max_pending=1000)
        assert ladder.update(self.at(watermark, +self.EPSILON)) == level

    @pytest.mark.parametrize("watermark,level", [(0.5, 1), (0.75, 2), (0.9, 3)])
    def test_inside_hysteresis_band_holds_level(self, watermark, level):
        # Default hysteresis 0.05: dropping to watermark − 0.04 must NOT
        # de-escalate; watermark − hysteresis − epsilon must.
        ladder = controller(max_pending=1000)
        ladder.update(self.at(watermark))
        assert ladder.update(self.at(watermark - 0.04)) == level
        assert ladder.update(self.at(watermark - 0.05, -self.EPSILON)) == level - 1

    def test_recovery_descends_in_order(self):
        # A drain from saturation walks 3 → 2 → 1 → 0 in watermark
        # order, never skipping upward and never re-escalating.
        ladder = controller(max_pending=1000)
        assert ladder.update(1000) == 3
        levels = [ladder.update(pending) for pending in range(1000, -1, -50)]
        assert levels[0] == 3 and levels[-1] == 0
        assert all(b <= a for a, b in zip(levels, levels[1:]))
        assert {1, 2} <= set(levels)  # intermediate rungs actually visited
        assert ladder.n_deescalations == 3
        assert ladder.n_escalations == 1

    def test_full_cycle_counts_transitions(self):
        ladder = controller(max_pending=1000)
        for pending in (500, 750, 900):  # one escalation per watermark
            ladder.update(pending)
        # One de-escalation per rung: each step clears exactly one
        # hysteresis band (watermark − 0.05 − epsilon) while staying
        # above the next one down.
        for pending in (849, 699, 449):
            ladder.update(pending)
        assert ladder.level == 0
        assert ladder.n_escalations == 3
        assert ladder.n_deescalations == 3
