"""End-to-end tests for the streaming localization service."""

import asyncio

import numpy as np
import pytest

from repro.exceptions import ServiceError, SolverError
from repro.optim.warm import WarmStartState
from repro.serve import CsiPacket, LoadGenerator, LocalizationService, replay

from tests.serve.conftest import small_serve_config


def make_service(workload, config, **kwargs):
    return LocalizationService(
        workload.room,
        workload.access_points,
        array=workload.array,
        layout=workload.layout,
        config=config,
        **kwargs,
    )


def run_sync(service, packets):
    """Feed packets through the synchronous core and drain."""
    fixes = []
    for packet in packets:
        service.submit(packet)
        fixes.extend(service.process_due())
    fixes.extend(service.drain())
    return fixes


class TestEndToEnd:
    def test_every_client_gets_accurate_fixes(self, workload, serve_config):
        service = make_service(workload, serve_config)
        fixes = run_sync(service, workload.packets)
        fixed_clients = {fix.client for fix in fixes}
        assert fixed_clients == set(workload.clients)
        errors = [
            fix.error_to(workload.truth_position(fix.client, fix.time_s))
            for fix in fixes
        ]
        assert float(np.median(errors)) < 2.0
        # Solves actually batched (not per-packet).
        assert service.max_batch_observed >= serve_config.batch_size

    def test_async_run_matches_sync_summary(self, workload, serve_config):
        service = make_service(workload, serve_config)
        result = asyncio.run(service.run(replay(workload)))
        assert result.n_packets == len(workload.packets)
        assert result.n_accepted == len(workload.packets)
        assert set(result.fix_counts) == set(workload.clients)
        assert result.metrics["serve.fixes"]["value"] == result.n_fixes
        assert result.metrics["serve.fix_latency_s"]["count"] == result.n_fixes
        assert all(fix.latency_s >= 0.0 for fix in result.fixes)
        assert sum(result.batch_triggers.values()) >= 1
        for health in result.health.values():
            assert health["status"] == "healthy"

    def test_warm_starts_hit_in_steady_state(self, workload, serve_config):
        # window_packets=1 pins every solve to width 1, so the second
        # solve of each (client, AP) pair warms from the first.
        config = small_serve_config(window_packets=1)
        service = make_service(workload, config)
        run_sync(service, workload.packets)
        assert service.warm_state.hits > 0
        assert len(service.warm_state) > 0

    def test_warm_start_does_not_change_which_clients_fix(self, workload):
        warm = make_service(workload, small_serve_config())
        cold = make_service(workload, small_serve_config(warm_start=False))
        warm_fixes = run_sync(warm, workload.packets)
        cold_fixes = run_sync(cold, workload.packets)
        assert {f.client for f in warm_fixes} == {f.client for f in cold_fixes}
        assert cold.warm_state.hits == cold.warm_state.misses == 0


class TestAdmissionControl:
    def test_unknown_ap_rejected(self, workload, serve_config):
        service = make_service(workload, serve_config)
        packet = workload.packets[0]
        bad = CsiPacket(
            client=packet.client, ap="ap-nowhere", time_s=packet.time_s, csi=packet.csi
        )
        assert service.submit(bad) == "unknown_ap"
        assert service.metrics.to_dict()["serve.rejected.unknown_ap"]["value"] == 1

    def test_invalid_csi_rejected_and_counted_against_ap(self, workload, serve_config):
        service = make_service(workload, serve_config)
        packet = workload.packets[0]
        wrong_shape = CsiPacket(
            client="c", ap=packet.ap, time_s=0.0, csi=np.ones((2, 5), dtype=complex)
        )
        assert service.submit(wrong_shape) == "invalid_csi"
        poisoned = np.array(packet.csi, copy=True)
        poisoned[0, 0] = np.nan
        assert (
            service.submit(
                CsiPacket(client="c", ap=packet.ap, time_s=0.0, csi=poisoned)
            )
            == "invalid_csi"
        )
        assert service.health.to_dict(0.0)[packet.ap]["failures"] == {"invalid_csi": 2}

    def test_stale_packet_rejected(self, workload, serve_config):
        service = make_service(workload, serve_config)
        packet = workload.packets[0]
        service.submit(
            CsiPacket(client="c", ap=packet.ap, time_s=10.0, csi=packet.csi)
        )
        late = CsiPacket(
            client="c",
            ap=packet.ap,
            time_s=10.0 - serve_config.window_s - 0.1,
            csi=packet.csi,
        )
        assert service.submit(late) == "stale"

    def test_queue_full_backpressure(self, workload):
        config = small_serve_config(batch_size=2, max_pending=2, max_delay_s=100.0)
        service = make_service(workload, config)
        template = workload.packets[0]
        for index in range(2):
            packet = CsiPacket(
                client=f"c{index}", ap=template.ap, time_s=0.0, csi=template.csi
            )
            assert service.submit(packet) is None
        overflow = CsiPacket(client="c9", ap=template.ap, time_s=0.0, csi=template.csi)
        assert service.submit(overflow) == "queue_full"

    def test_draining_rejects_new_packets(self, workload, serve_config):
        service = make_service(workload, serve_config)
        service.drain()
        assert service.submit(workload.packets[0]) == "draining"


class TestDegradedMode:
    @pytest.fixture(scope="class")
    def outage_result(self):
        generator = LoadGenerator(
            n_clients=3,
            duration_s=2.0,
            sample_interval_s=0.5,
            stationary_fraction=0.34,
            n_aps=3,
            band="high",
            seed=11,
            outages={"ap-east": (0.8, 10.0)},
        )
        workload = generator.generate()
        # Tight staleness bounds so the blackout surfaces within the
        # short stream: estimates older than 1 s leave fixes, and an AP
        # silent for 1 s is an outage.
        config = small_serve_config(outage_after_s=1.0, observation_max_age_s=1.0)
        service = LocalizationService(
            workload.room,
            workload.access_points,
            array=workload.array,
            layout=workload.layout,
            config=config,
        )
        fixes = []
        for packet in workload.packets:
            service.submit(packet)
            fixes.extend(service.process_due())
        fixes.extend(service.drain())
        return workload, service, fixes

    def test_mid_stream_outage_keeps_fixing_with_quorum(self, outage_result):
        workload, _, fixes = outage_result
        assert {fix.client for fix in fixes} == set(workload.clients)
        degraded = [fix for fix in fixes if fix.degraded]
        assert degraded, "outage never surfaced as a degraded fix"
        # Fixes after the blackout exclude the dead AP with its reason.
        late = [fix for fix in degraded if fix.time_s > 2.0]
        assert late
        assert any(
            dropped.name == "ap-east" and "outage" in dropped.reason
            for fix in late
            for dropped in fix.dropped_aps
        )

    def test_degraded_fixes_have_lowered_confidence(self, outage_result):
        _, _, fixes = outage_result
        # Confidence is bounded by the surviving-AP fraction: 2 of 3.
        for fix in fixes:
            if fix.degraded and len(fix.used_aps) == 2:
                assert fix.confidence <= 2.0 / 3.0 + 1e-9

    def test_outage_taxonomized_in_metrics_and_health(self, outage_result):
        workload, service, _ = outage_result
        metrics = service.metrics.to_dict()
        assert metrics["serve.dropped_ap.outage"]["value"] > 0
        assert metrics["serve.degraded_fixes"]["value"] > 0
        health = service.health.to_dict(service.latest_packet_time_s)
        assert health["ap-east"]["status"] == "outage"


class TestFailureHandling:
    def test_solver_failure_degrades_instead_of_crashing(
        self, workload, serve_config, monkeypatch
    ):
        service = make_service(workload, serve_config)

        def explode(*args, **kwargs):
            raise SolverError("backend fault")

        monkeypatch.setattr("repro.serve.service.solve_batch", explode)
        fixes = run_sync(service, workload.packets)
        assert fixes == []
        metrics = service.metrics.to_dict()
        assert metrics["serve.solve_failures"]["value"] > 0
        assert "serve.fixes" not in metrics
        health = service.health.to_dict(service.latest_packet_time_s)
        assert all(record["failures"].get("solver", 0) > 0 for record in health.values())
        assert all(record["status"] == "outage" for record in health.values())

    def test_concurrent_run_raises_service_error(self, workload, serve_config):
        service = make_service(workload, serve_config)

        async def slow_source():
            for packet in workload.packets[:2]:
                yield packet
                await asyncio.sleep(0.05)

        async def scenario():
            first = asyncio.ensure_future(service.run(slow_source()))
            await asyncio.sleep(0.01)
            with pytest.raises(ServiceError):
                await service.run(replay(workload))
            await first

        asyncio.run(scenario())


class TestWarmStatePersistence:
    def test_save_load_round_trip(self, workload, serve_config, tmp_path):
        service = make_service(workload, serve_config)
        run_sync(service, workload.packets)
        assert len(service.warm_state) > 0
        path = tmp_path / "warm.json"
        service.save_warm_state(path)

        restored = make_service(workload, serve_config)
        assert restored.load_warm_state(path) == len(service.warm_state)
        assert isinstance(restored.warm_state, WarmStartState)
        for key, value in service.warm_state.slots.items():
            np.testing.assert_array_equal(restored.warm_state.slots[key], value)


class TestRobustMode:
    def test_robust_fixes_carry_trust_scores(self, workload):
        service = make_service(workload, small_serve_config(robust=True))
        fixes = run_sync(service, workload.packets)
        assert {fix.client for fix in fixes} == set(workload.clients)
        for fix in fixes:
            assert set(fix.trust) == set(fix.used_aps)
            assert all(0.0 <= value <= 1.0 for value in fix.trust.values())
        # Clean workload: nothing should look corrupted.
        assert not any(fix.contaminated for fix in fixes)
        errors = [
            fix.error_to(workload.truth_position(fix.client, fix.time_s))
            for fix in fixes
        ]
        assert float(np.median(errors)) < 2.0

    def test_robust_trust_feeds_health(self, workload):
        service = make_service(workload, small_serve_config(robust=True))
        run_sync(service, workload.packets)
        health = service.health.to_dict(max(p.time_s for p in workload.packets))
        for record in health.values():
            assert record["last_trust"] is not None
        assert service.metrics.histogram("serve.ap_trust").to_dict()["count"] > 0

    def test_robust_fix_to_dict_serializable(self, workload):
        import json

        service = make_service(workload, small_serve_config(robust=True))
        fixes = run_sync(service, workload.packets)
        payload = json.dumps([fix.to_dict() for fix in fixes])
        decoded = json.loads(payload)
        assert "trust" in decoded[0] and "contaminated" in decoded[0]

    def test_default_mode_has_no_trust(self, workload, serve_config):
        service = make_service(workload, serve_config)
        fixes = run_sync(service, workload.packets)
        assert all(fix.trust == {} for fix in fixes)
        assert all(not fix.contaminated for fix in fixes)

    def test_rejects_bad_trust_threshold(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="trust_threshold"):
            small_serve_config(robust=True, trust_threshold=0.0)
