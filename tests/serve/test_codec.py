"""Snapshot array codec: dense and sparse forms, bit-exact round trips."""

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.serve.codec import decode_array, decode_time, encode_array, encode_time


def round_trip(array):
    return decode_array(encode_array(array))


class TestDenseForm:
    def test_dense_float_round_trip(self):
        rng = np.random.default_rng(3)
        array = rng.normal(size=(7, 5))
        payload = encode_array(array)
        assert "b64" in payload and "indices" not in payload
        np.testing.assert_array_equal(round_trip(array), array)

    def test_dense_complex_round_trip(self):
        rng = np.random.default_rng(4)
        array = rng.normal(size=(3, 4)) + 1j * rng.normal(size=(3, 4))
        restored = round_trip(array)
        assert restored.dtype == np.complex128
        assert restored.tobytes() == array.astype(np.complex128).tobytes()

    def test_empty_array_round_trip(self):
        array = np.zeros((0, 4), dtype=np.complex128)
        restored = round_trip(array)
        assert restored.shape == (0, 4)
        assert restored.dtype == np.complex128

    def test_unsupported_dtype_rejected(self):
        payload = encode_array(np.ones(3))
        payload["dtype"] = "int8"
        with pytest.raises(ServiceError, match="unsupported dtype"):
            decode_array(payload)


class TestSparseForm:
    def test_mostly_zero_array_goes_sparse_and_shrinks(self):
        array = np.zeros((1281, 2), dtype=np.complex128)
        array[17, 0] = 1.5 - 0.25j
        array[902, 1] = -3.0
        payload = encode_array(array)
        assert "indices" in payload and "b64" not in payload
        dense_chars = len(encode_array(np.ones_like(array))["b64"])
        assert len(payload["indices"]) + len(payload["values"]) < dense_chars / 10
        restored = decode_array(payload)
        assert restored.tobytes() == array.tobytes()

    def test_dense_data_stays_dense(self):
        rng = np.random.default_rng(5)
        array = rng.normal(size=(64,))
        assert "b64" in encode_array(array)

    def test_all_zero_array_round_trip(self):
        array = np.zeros((9, 3), dtype=np.complex128)
        payload = encode_array(array)
        assert "indices" in payload
        restored = decode_array(payload)
        assert restored.tobytes() == array.tobytes()

    def test_negative_zero_survives_bit_exactly(self):
        # Soft-thresholding emits -0.0 for shrunk negative entries; the
        # bit-level nonzero test must keep them so the dense
        # reconstruction is byte-identical, not merely value-equal.
        array = np.zeros(32)
        array[3] = -0.0
        array[7] = 5e-324  # smallest subnormal
        payload = encode_array(array)
        assert "indices" in payload
        restored = decode_array(payload)
        assert restored.tobytes() == array.tobytes()
        assert np.signbit(restored[3])

    def test_complex_negative_zero_component(self):
        array = np.zeros(16, dtype=np.complex128)
        array[2] = complex(0.0, -0.0)
        restored = round_trip(array)
        assert restored.tobytes() == array.tobytes()

    def test_inconsistent_sparse_payload_rejected(self):
        payload = encode_array(np.zeros(8))
        payload["values"] = encode_array(np.ones(2))["b64"]
        with pytest.raises(ServiceError, match="inconsistent"):
            decode_array(payload)


class TestTimes:
    def test_sentinel_round_trip(self):
        assert encode_time(float("-inf")) is None
        assert decode_time(None) == float("-inf")
        assert decode_time(encode_time(12.5)) == 12.5
