"""Tests for the per-AP health monitor."""

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.jobs import FAILURE_KINDS
from repro.serve.health import HEALTH_FAILURE_KINDS, ApHealthMonitor


def monitor(**kwargs) -> ApHealthMonitor:
    kwargs.setdefault("outage_after_s", 2.0)
    kwargs.setdefault("failure_threshold", 3)
    return ApHealthMonitor(["ap-a", "ap-b"], **kwargs)


class TestStatus:
    def test_never_seen_is_outage(self):
        assert monitor().status("ap-a", now_s=0.0) == "outage"
        assert "no packets received" in monitor().outage_reason("ap-a", 0.0)

    def test_healthy_after_packet_and_success(self):
        m = monitor()
        m.record_packet("ap-a", 1.0)
        m.record_success("ap-a", 1.0)
        assert m.status("ap-a", now_s=1.5) == "healthy"

    def test_degraded_below_threshold_outage_at_threshold(self):
        m = monitor(failure_threshold=3)
        m.record_packet("ap-a", 1.0)
        m.record_failure("ap-a", "solver", 1.0)
        assert m.status("ap-a", now_s=1.0) == "degraded"
        m.record_failure("ap-a", "solver", 1.1)
        m.record_failure("ap-a", "timeout", 1.2)
        assert m.status("ap-a", now_s=1.2) == "outage"
        assert "consecutive solve failures" in m.outage_reason("ap-a", 1.2)

    def test_success_resets_consecutive_failures(self):
        m = monitor(failure_threshold=2)
        m.record_packet("ap-a", 1.0)
        m.record_failure("ap-a", "solver", 1.0)
        m.record_success("ap-a", 1.1)
        m.record_failure("ap-a", "solver", 1.2)
        assert m.status("ap-a", now_s=1.2) == "degraded"

    def test_packet_staleness_is_outage_on_packet_time(self):
        m = monitor(outage_after_s=2.0)
        m.record_packet("ap-a", 1.0)
        m.record_success("ap-a", 1.0)
        assert m.status("ap-a", now_s=3.0) == "healthy"
        assert m.status("ap-a", now_s=3.1) == "outage"
        assert "no packets for" in m.outage_reason("ap-a", 3.1)


class TestDroppedAps:
    def test_dropped_aps_carry_reasons(self):
        m = monitor()
        m.record_packet("ap-a", 1.0)
        m.record_success("ap-a", 1.0)
        dropped = m.dropped_aps(now_s=1.0)
        assert [d.name for d in dropped] == ["ap-b"]
        assert dropped[0].reason.startswith("AP outage:")

    def test_to_dict_reports_status_and_taxonomy(self):
        m = monitor()
        m.record_packet("ap-a", 1.0)
        m.record_failure("ap-a", "invalid_csi", 1.0)
        snapshot = m.to_dict(now_s=1.0)
        assert snapshot["ap-a"]["status"] == "degraded"
        assert snapshot["ap-a"]["failures"] == {"invalid_csi": 1}
        assert snapshot["ap-b"]["status"] == "outage"


class TestTaxonomy:
    def test_extends_runtime_failure_kinds(self):
        assert set(FAILURE_KINDS) < set(HEALTH_FAILURE_KINDS)
        assert "invalid_csi" in HEALTH_FAILURE_KINDS

    def test_unknown_kind_rejected(self):
        m = monitor()
        with pytest.raises(ConfigurationError):
            m.record_failure("ap-a", "cosmic_ray", 1.0)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ApHealthMonitor(["ap-a"], outage_after_s=0.0)
        with pytest.raises(ConfigurationError):
            ApHealthMonitor(["ap-a"], failure_threshold=0)
        with pytest.raises(ConfigurationError):
            ApHealthMonitor(["ap-a", "ap-a"])


class TestTransitionMetrics:
    def test_observed_transitions_are_counted_per_edge(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        m = monitor(metrics=metrics)
        # First observation sets the baseline silently.
        m.record_packet("ap-a", 1.0)
        m.record_success("ap-a", 1.0)
        assert m.status("ap-a", 1.0) == "healthy"
        assert (
            metrics.counter("serve.ap_health.transition.healthy_to_degraded").value
            == 0
        )
        m.record_failure("ap-a", "solver", 1.1)
        assert m.status("ap-a", 1.1) == "degraded"
        m.record_success("ap-a", 1.2)
        assert m.status("ap-a", 1.2) == "healthy"
        assert m.status("ap-a", 10.0) == "outage"
        assert (
            metrics.counter("serve.ap_health.transition.healthy_to_degraded").value
            == 1
        )
        assert (
            metrics.counter("serve.ap_health.transition.degraded_to_healthy").value
            == 1
        )
        assert (
            metrics.counter("serve.ap_health.transition.healthy_to_outage").value == 1
        )

    def test_steady_status_emits_nothing(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        m = monitor(metrics=metrics)
        m.record_packet("ap-a", 1.0)
        m.record_success("ap-a", 1.0)
        for _ in range(5):
            m.status("ap-a", 1.0)
        transitions = [
            name
            for name in metrics.to_dict()
            if name.startswith("serve.ap_health.transition.")
        ]
        assert transitions == []


class TestTrust:
    def _healthy(self, **kwargs) -> ApHealthMonitor:
        m = monitor(**kwargs)
        m.record_packet("ap-a", 1.0)
        m.record_success("ap-a", 1.0)
        return m

    def test_low_trust_demotes_healthy_to_degraded(self):
        m = self._healthy()
        assert m.status("ap-a", 1.0) == "healthy"
        m.record_trust("ap-a", 0.2)
        assert m.status("ap-a", 1.0) == "degraded"

    def test_high_trust_keeps_healthy(self):
        m = self._healthy()
        m.record_trust("ap-a", 0.9)
        assert m.status("ap-a", 1.0) == "healthy"

    def test_trust_recovery_restores_healthy(self):
        m = self._healthy()
        m.record_trust("ap-a", 0.1)
        assert m.status("ap-a", 1.0) == "degraded"
        m.record_trust("ap-a", 0.95)
        assert m.status("ap-a", 1.0) == "healthy"

    def test_outage_takes_precedence_over_trust(self):
        m = self._healthy()
        m.record_trust("ap-a", 0.1)
        assert m.status("ap-a", 10.0) == "outage"

    def test_custom_threshold(self):
        m = self._healthy(trust_threshold=0.9)
        m.record_trust("ap-a", 0.8)
        assert m.status("ap-a", 1.0) == "degraded"

    @pytest.mark.parametrize("bad", [-0.1, 1.5, float("nan")])
    def test_rejects_bad_trust_values(self, bad):
        with pytest.raises(ConfigurationError, match="trust"):
            monitor().record_trust("ap-a", bad)

    @pytest.mark.parametrize("bad", [0.0, 1.5])
    def test_rejects_bad_threshold(self, bad):
        with pytest.raises(ConfigurationError, match="trust_threshold"):
            monitor(trust_threshold=bad)

    def test_trust_survives_snapshot_roundtrip(self):
        m = self._healthy()
        m.record_trust("ap-a", 0.3)
        restored = monitor()
        restored.restore_state(m.state_dict())
        assert restored.status("ap-a", 1.0) == "degraded"
        assert restored.to_dict(1.0)["ap-a"]["last_trust"] == 0.3

    def test_legacy_snapshot_without_trust_restores(self):
        m = self._healthy()
        state = m.state_dict()
        for payload in state["aps"].values():
            payload.pop("last_trust")
        restored = monitor()
        restored.restore_state(state)
        assert restored.status("ap-a", 1.0) == "healthy"
