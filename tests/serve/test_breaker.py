"""Per-AP circuit breakers: state machine, board metrics, restore."""

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry
from repro.serve import BREAKER_STATES, BreakerBoard, CircuitBreaker


class TestStateMachine:
    def test_closed_admits(self):
        breaker = CircuitBreaker()
        assert breaker.state == "closed"
        assert breaker.allow(0.0)

    def test_trips_open_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, open_for_s=1.0)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state == "closed"
        breaker.record_failure(0.0)
        assert breaker.state == "open"
        assert breaker.n_trips == 1
        assert not breaker.allow(0.5)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(10):
            breaker.record_failure(0.0)
            breaker.record_failure(0.0)
            breaker.record_success(0.0)
        assert breaker.state == "closed"
        assert breaker.n_trips == 0

    def test_cooldown_admits_bounded_probes(self):
        breaker = CircuitBreaker(failure_threshold=1, open_for_s=1.0, half_open_probes=2)
        breaker.record_failure(0.0)
        assert not breaker.allow(0.5)
        assert breaker.allow(1.5)
        assert breaker.state == "half_open"
        assert breaker.allow(1.6)
        assert not breaker.allow(1.7)

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, open_for_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(2.0)
        breaker.record_success(2.0)
        assert breaker.state == "closed"
        assert breaker.allow(2.1)

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, open_for_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(2.0)
        breaker.record_failure(2.0)
        assert breaker.state == "open"
        assert breaker.opened_at_s == 2.0
        assert breaker.n_trips == 2
        assert not breaker.allow(2.9)
        assert breaker.allow(3.1)

    def test_state_dict_round_trip(self):
        breaker = CircuitBreaker(failure_threshold=1, open_for_s=1.0)
        breaker.record_failure(0.25)
        restored = CircuitBreaker(failure_threshold=1, open_for_s=1.0)
        restored.restore_state(breaker.state_dict())
        assert restored.state_dict() == breaker.state_dict()
        # The restored breaker makes the same admission decisions.
        assert restored.allow(0.5) == breaker.allow(0.5)
        assert restored.allow(1.5) == breaker.allow(1.5)

    def test_restore_rejects_unknown_state(self):
        breaker = CircuitBreaker()
        payload = breaker.state_dict() | {"state": "melted"}
        with pytest.raises(ConfigurationError, match="melted"):
            breaker.restore_state(payload)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(open_for_s=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(half_open_probes=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(state="melted")


class TestBreakerBoard:
    def test_duplicate_aps_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            BreakerBoard(["a", "a"])

    def test_transitions_and_trips_are_counted(self):
        metrics = MetricsRegistry()
        board = BreakerBoard(
            ["east", "west"], failure_threshold=2, open_for_s=1.0, metrics=metrics
        )
        board.record_failure("east", 0.0)
        board.record_failure("east", 0.0)
        assert board.state("east") == "open"
        assert metrics.counter("serve.breaker.trips").value == 1
        assert metrics.counter("serve.breaker.transition.closed_to_open").value == 1
        assert board.allow("east", 1.5)
        assert metrics.counter("serve.breaker.transition.open_to_half_open").value == 1
        board.record_success("east", 1.5)
        assert metrics.counter("serve.breaker.transition.half_open_to_closed").value == 1
        # The untouched AP never transitioned and stays closed.
        assert board.state("west") == "closed"

    def test_open_reason_mentions_streak_and_trip(self):
        board = BreakerBoard(["east"], failure_threshold=1)
        board.record_failure("east", 0.0)
        reason = board.open_reason("east")
        assert "1 consecutive" in reason and "trip #1" in reason

    def test_state_dict_round_trip(self):
        board = BreakerBoard(["east", "west"], failure_threshold=1)
        board.record_failure("west", 3.0)
        restored = BreakerBoard(["east", "west"], failure_threshold=1)
        restored.restore_state(board.state_dict())
        assert restored.state_dict() == board.state_dict()
        assert restored.state("west") == "open"

    def test_restore_rejects_unknown_ap(self):
        board = BreakerBoard(["east"])
        with pytest.raises(ConfigurationError, match="unknown AP"):
            board.restore_state({"north": CircuitBreaker().state_dict()})


def test_breaker_states_taxonomy_is_closed():
    assert BREAKER_STATES == ("closed", "open", "half_open")
