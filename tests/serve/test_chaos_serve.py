"""Service-level chaos drills and the resilience scorecard."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.serve import (
    SERVE_CHAOS_SCENARIOS,
    ServeChaosOptions,
    run_serve_chaos,
)

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def drills(tmp_path_factory):
    """One full pass over every scenario (the expensive part, run once)."""
    options = ServeChaosOptions(workdir=tmp_path_factory.mktemp("serve-chaos"))
    return run_serve_chaos(options)


class TestScenarios:
    def test_every_scenario_passes(self, drills):
        verdicts = {outcome.name: outcome.passed for outcome in drills.outcomes}
        assert verdicts == {name: True for name in SERVE_CHAOS_SCENARIOS}
        assert drills.passed and drills.n_passed == len(SERVE_CHAOS_SCENARIOS)

    def test_blackout_detected_and_survived(self, drills):
        outcome = {o.name: o for o in drills.outcomes}["ap_blackout"]
        assert outcome.details["dark_ap_status"] == "outage"
        assert outcome.details["n_fixes"] > 0

    def test_storm_is_taxonomized_not_thrown(self, drills):
        outcome = {o.name: o for o in drills.outcomes}["queue_storm"]
        assert outcome.details["reject_counts"].get("queue_full", 0) > 0
        assert outcome.details["backpressure_escalations"] >= 1

    def test_breaker_trips_on_corruption(self, drills):
        outcome = {o.name: o for o in drills.outcomes}["corrupted_packets"]
        assert outcome.details["breaker_trips"] >= 1
        assert outcome.details["breaker_state"] == "open"

    def test_crash_recovery_journals_identical(self, drills):
        outcome = {o.name: o for o in drills.outcomes}["mid_stream_crash"]
        assert outcome.details["journals_identical"]
        assert outcome.details["n_restarts"] == len(outcome.details["crash_points"])


class TestScorecard:
    def test_scorecard_shape(self, drills):
        scorecard = drills.scorecard()
        assert scorecard["version"] == 1
        assert scorecard["passed"] is True
        assert scorecard["n_scenarios"] == len(SERVE_CHAOS_SCENARIOS)
        assert [s["name"] for s in scorecard["scenarios"]] == list(
            SERVE_CHAOS_SCENARIOS
        )
        # The scorecard is the CI artifact: it must be JSON-serializable.
        json.dumps(scorecard)


class TestSelection:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="power_cut"):
            run_serve_chaos(scenarios=["power_cut"])

    def test_subset_runs_only_named(self, tmp_path):
        options = ServeChaosOptions(workdir=tmp_path)
        result = run_serve_chaos(options, scenarios=["queue_storm"])
        assert [outcome.name for outcome in result.outcomes] == ["queue_storm"]
        assert result.passed
