"""Tests for the streaming workload generator and replayer."""

import asyncio

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serve import (
    LoadGenerator,
    Workload,
    median_fix_error_m,
    offline_reference,
    replay,
)

from tests.serve.conftest import small_serve_config


class TestGeneration:
    def test_deterministic_for_a_seed(self):
        a = LoadGenerator(n_clients=2, duration_s=0.5, n_aps=2, seed=3).generate()
        b = LoadGenerator(n_clients=2, duration_s=0.5, n_aps=2, seed=3).generate()
        assert len(a.packets) == len(b.packets)
        for pa, pb in zip(a.packets, b.packets):
            assert (pa.client, pa.ap, pa.time_s) == (pb.client, pb.ap, pb.time_s)
            np.testing.assert_array_equal(pa.csi, pb.csi)
        c = LoadGenerator(n_clients=2, duration_s=0.5, n_aps=2, seed=4).generate()
        assert any(
            not np.array_equal(pa.csi, pc.csi) for pa, pc in zip(a.packets, c.packets)
        )

    def test_one_packet_per_ap_per_sample(self):
        workload = LoadGenerator(
            n_clients=2, duration_s=1.0, sample_interval_s=0.5, n_aps=3, seed=0
        ).generate()
        # 2 clients × 3 samples (t=0, .5, 1) × 3 APs.
        assert len(workload.packets) == 2 * 3 * 3
        assert sorted({p.ap for p in workload.packets}) == sorted(
            ap.name for ap in workload.access_points
        )
        times = [p.time_s for p in workload.packets]
        assert times == sorted(times)

    def test_stationary_fraction_pins_clients(self):
        workload = LoadGenerator(
            n_clients=3, duration_s=1.0, stationary_fraction=1.0, n_aps=2, seed=1
        ).generate()
        for client in workload.clients:
            positions = {pos for _, pos in workload.truth[client]}
            assert len(positions) == 1

    def test_mobile_clients_move(self):
        workload = LoadGenerator(
            n_clients=2, duration_s=4.0, stationary_fraction=0.0, n_aps=2, seed=2
        ).generate()
        moved = [
            len({pos for _, pos in workload.truth[client]}) > 1
            for client in workload.clients
        ]
        assert any(moved)

    def test_outage_window_filters_packets(self):
        outages = {"ap-east": (0.4, 0.9)}
        workload = LoadGenerator(
            n_clients=2, duration_s=1.5, n_aps=2, seed=5, outages=outages
        ).generate()
        east = [p.time_s for p in workload.packets if p.ap == "ap-east"]
        assert east, "AP must still emit outside the window"
        assert not [t for t in east if 0.4 <= t < 0.9]
        west = [p.time_s for p in workload.packets if p.ap == "ap-west"]
        assert [t for t in west if 0.4 <= t < 0.9]

    def test_truth_position_nearest_sample(self):
        workload = LoadGenerator(n_clients=1, duration_s=1.0, n_aps=2, seed=6).generate()
        client = workload.clients[0]
        time_s, position = workload.truth[client][0]
        assert workload.truth_position(client, time_s) == position
        assert workload.truth_position(client, time_s + 0.01) == position
        with pytest.raises(ConfigurationError):
            workload.truth_position("nobody", 0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            LoadGenerator(n_clients=0)
        with pytest.raises(ConfigurationError):
            LoadGenerator(duration_s=0.0)
        with pytest.raises(ConfigurationError):
            LoadGenerator(stationary_fraction=1.5)
        with pytest.raises(ConfigurationError):
            LoadGenerator(band="ultra")
        with pytest.raises(ConfigurationError):
            LoadGenerator(outages={"ap-mars": (0.0, 1.0)}).generate()


class TestPersistence:
    def test_npz_round_trip(self, tmp_path):
        original = LoadGenerator(n_clients=2, duration_s=0.5, n_aps=2, seed=9).generate()
        path = tmp_path / "workload.npz"
        original.save(path)
        loaded = Workload.load(path)
        assert loaded.clients == original.clients
        assert [ap.name for ap in loaded.access_points] == [
            ap.name for ap in original.access_points
        ]
        assert loaded.room.width == original.room.width
        assert loaded.array.n_antennas == original.array.n_antennas
        assert loaded.layout.n_subcarriers == original.layout.n_subcarriers
        assert len(loaded.packets) == len(original.packets)
        for pa, pb in zip(original.packets, loaded.packets):
            assert (pa.client, pa.ap, pa.time_s, pa.rssi_dbm) == (
                pb.client, pb.ap, pb.time_s, pb.rssi_dbm,
            )
            np.testing.assert_array_equal(pa.csi, pb.csi)
        assert loaded.truth == original.truth
        assert loaded.meta["seed"] == 9


class TestReplay:
    def test_replay_preserves_order_and_count(self, workload):
        async def collect():
            return [packet async for packet in replay(workload)]

        packets = asyncio.run(collect())
        assert len(packets) == len(workload.packets)
        assert [p.time_s for p in packets] == [p.time_s for p in workload.packets]

    def test_replay_rejects_bad_speed(self, workload):
        async def collect():
            return [packet async for packet in replay(workload, realtime=True, speed=0)]

        with pytest.raises(ConfigurationError):
            asyncio.run(collect())


class TestOfflineReference:
    def test_offline_reference_scores_near_truth(self, workload):
        fixes = offline_reference(workload, config=small_serve_config())
        assert {fix.client for fix in fixes} == set(workload.clients)
        assert median_fix_error_m(fixes, workload) < 2.0

    def test_median_error_requires_fixes(self, workload):
        with pytest.raises(ConfigurationError):
            median_fix_error_m([], workload)
