"""``roarray serve --snapshot-dir``: graceful SIGTERM drain and resume.

The subprocess test runs the supervised serve CLI, sends SIGTERM once
the first fixes are journaled, asserts the resumable exit status (75),
re-runs the identical command, and demands the interrupted-then-resumed
ack journal be byte-identical to an uninterrupted run's.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runtime.checkpoint import EXIT_RESUMABLE
from repro.serve import LoadGenerator

REPO_ROOT = Path(__file__).resolve().parents[2]

SERVE_FLAGS = [
    "--batch-size", "4",
    "--max-delay", "0.01",
    "--window-packets", "4",
    "--min-quorum", "2",
    "--resolution", "0.5",
    "--angle-points", "61",
    "--delay-points", "21",
    "--iterations", "100",
    "--snapshot-every", "4",
    "--json",
]


def _spawn(workload_path: Path, snapshot_dir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    command = [
        sys.executable,
        "-c",
        "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
        "serve",
        str(workload_path),
        "--snapshot-dir",
        str(snapshot_dir),
        *SERVE_FLAGS,
    ]
    return subprocess.Popen(
        command, env=env, cwd=REPO_ROOT, stdout=subprocess.PIPE, text=True
    )


def _wait_for_first_fix(journal: Path, *, timeout_s: float = 120.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if journal.read_text().count("\n") >= 1:
                return
        except OSError:
            pass
        time.sleep(0.01)
    raise AssertionError(f"no fix journaled to {journal} within {timeout_s}s")


@pytest.mark.slow
def test_sigterm_exits_resumable_and_resume_is_byte_identical(tmp_path):
    workload_path = tmp_path / "workload.npz"
    LoadGenerator(
        n_clients=4,
        duration_s=2.0,
        sample_interval_s=0.1,
        stationary_fraction=0.25,
        n_aps=3,
        band="high",
        seed=11,
    ).generate().save(workload_path)

    # Uninterrupted reference run.
    steady_dir = tmp_path / "steady"
    steady = _spawn(workload_path, steady_dir)
    stdout, _ = steady.communicate(timeout=300)
    assert steady.returncode == 0, stdout
    reference = json.loads(stdout)
    assert reference["n_delivered"] > 0 and not reference["interrupted"]

    # Interrupted run: SIGTERM once the journal shows delivered fixes.
    crashy_dir = tmp_path / "crashy"
    interrupted = _spawn(workload_path, crashy_dir)
    _wait_for_first_fix(crashy_dir / "fixes.jsonl")
    interrupted.send_signal(signal.SIGTERM)
    stdout, _ = interrupted.communicate(timeout=300)
    assert interrupted.returncode == EXIT_RESUMABLE, stdout
    partial = json.loads(stdout)
    assert partial["interrupted"]
    assert partial["n_consumed"] < reference["n_consumed"]
    assert (crashy_dir / "service.json").exists()

    # Re-running the identical command resumes and finishes the stream.
    resumed = _spawn(workload_path, crashy_dir)
    stdout, _ = resumed.communicate(timeout=300)
    assert resumed.returncode == 0, stdout
    final = json.loads(stdout)
    assert final["resumed"] and not final["interrupted"]
    assert final["n_consumed"] == reference["n_consumed"]
    assert final["n_delivered"] == reference["n_delivered"]

    steady_journal = (steady_dir / "fixes.jsonl").read_bytes()
    crashy_journal = (crashy_dir / "fixes.jsonl").read_bytes()
    assert len(steady_journal) > 0
    assert crashy_journal == steady_journal
