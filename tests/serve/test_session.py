"""Tests for per-client session state (windows, estimates, fix gating)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serve.session import ClientSession


def y(value: float, m: int = 6) -> np.ndarray:
    return np.full(m, value, dtype=complex)


class TestWindows:
    def test_snapshot_matrix_is_m_by_p_oldest_first(self):
        session = ClientSession("c", window_packets=4)
        session.add_packet("ap", 0.0, y(1.0))
        session.add_packet("ap", 0.5, y(2.0))
        snapshots = session.snapshots("ap")
        assert snapshots.shape == (6, 2)
        assert snapshots[0, 0] == 1.0 and snapshots[0, 1] == 2.0

    def test_count_eviction(self):
        session = ClientSession("c", window_packets=2, window_s=100.0)
        for i in range(4):
            session.add_packet("ap", float(i), y(float(i)))
        assert session.window_len("ap") == 2
        assert session.snapshots("ap")[0, 0] == 2.0

    def test_age_eviction(self):
        session = ClientSession("c", window_packets=10, window_s=1.0)
        session.add_packet("ap", 0.0, y(1.0))
        session.add_packet("ap", 2.0, y(2.0))
        assert session.window_len("ap") == 1
        assert session.snapshots("ap")[0, 0] == 2.0

    def test_windows_are_per_ap(self):
        session = ClientSession("c")
        session.add_packet("ap-a", 0.0, y(1.0))
        session.add_packet("ap-b", 0.0, y(2.0))
        assert session.snapshots("ap-a").shape == (6, 1)
        assert session.snapshots("ap-b")[0, 0] == 2.0

    def test_empty_window_raises(self):
        with pytest.raises(ConfigurationError):
            ClientSession("c").snapshots("ap")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ClientSession("c", window_packets=0)
        with pytest.raises(ConfigurationError):
            ClientSession("c", window_s=0.0)


class TestEstimatesAndClock:
    def test_latest_time_advances_monotonically(self):
        session = ClientSession("c")
        session.add_packet("ap-a", 1.0, y(1.0))
        session.add_packet("ap-b", 0.5, y(1.0))  # late cross-AP packet
        assert session.latest_time_s == 1.0

    def test_fresh_estimates_filters_by_age(self):
        session = ClientSession("c")
        session.add_packet("ap-a", 0.0, y(1.0))
        session.record_estimate("ap-a", 0.0, aoa_deg=90.0, rssi_dbm=-50.0, enqueued_at=0.0)
        session.record_estimate("ap-b", 0.0, aoa_deg=80.0, rssi_dbm=-50.0, enqueued_at=0.0)
        session.add_packet("ap-a", 3.0, y(2.0))
        session.record_estimate("ap-a", 3.0, aoa_deg=91.0, rssi_dbm=-50.0, enqueued_at=3.0)
        fresh = session.fresh_estimates(max_age_s=2.0)
        assert set(fresh) == {"ap-a"}
        assert fresh["ap-a"].aoa_deg == 91.0

    def test_fix_due_tracks_new_data(self):
        session = ClientSession("c")
        assert not session.fix_due
        session.add_packet("ap", 1.0, y(1.0))
        assert session.fix_due
        session.last_fix_time_s = session.latest_time_s
        assert not session.fix_due
