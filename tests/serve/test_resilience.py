"""Supervised crash recovery: snapshots, ack journal, exactly-once replay."""

import json

import pytest

from repro.exceptions import ConfigurationError, ServiceError, SupervisorError
from repro.obs import MetricsRegistry
from repro.serve import LocalizationService, ManualClock, ServiceSupervisor, SnapshotPolicy
from repro.serve.resilience import count_journaled_fixes, load_snapshot

from tests.serve.conftest import small_serve_config

CONFIG = small_serve_config()


def factory(workload):
    def build(clock) -> LocalizationService:
        return LocalizationService(
            workload.room,
            workload.access_points,
            array=workload.array,
            layout=workload.layout,
            config=CONFIG,
            clock=clock,
            metrics=MetricsRegistry(),
        )

    return build


def supervised(workload, directory, *, every_packets=8, **kwargs):
    policy = SnapshotPolicy(directory=directory, every_packets=every_packets)
    return ServiceSupervisor(factory(workload), policy, **kwargs), policy


@pytest.fixture(scope="module")
def steady(workload, tmp_path_factory):
    """One uninterrupted supervised run: the byte-parity reference."""
    supervisor, policy = supervised(workload, tmp_path_factory.mktemp("steady"))
    with supervisor:
        result = supervisor.run(workload.packets)
    return result, policy


class TestManualClock:
    def test_advances_monotonically(self):
        clock = ManualClock()
        clock.advance_to(2.0)
        clock.advance_to(1.0)
        assert clock() == 2.0

    def test_start_time(self):
        assert ManualClock(5.0)() == 5.0


class TestSnapshotPolicy:
    def test_paths_inside_directory(self, tmp_path):
        policy = SnapshotPolicy(directory=tmp_path)
        assert policy.snapshot_path == tmp_path / "service.json"
        assert policy.fixes_path == tmp_path / "fixes.jsonl"

    def test_rejects_negative_cadence(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SnapshotPolicy(directory=tmp_path, every_packets=-1)

    def test_rejects_negative_restart_budget(self, workload, tmp_path):
        with pytest.raises(ConfigurationError):
            supervised(workload, tmp_path, max_restarts=-1)

    def test_rejects_bad_duty(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SnapshotPolicy(directory=tmp_path, max_duty=1.0)
        with pytest.raises(ConfigurationError):
            SnapshotPolicy(directory=tmp_path, max_duty=-0.1)


class TestDutyThrottle:
    def test_tiny_duty_defers_periodic_snapshots(self, workload, steady, tmp_path):
        # A near-zero duty budget lets the first cadence snapshot
        # through, then defers every later one — but the final snapshot
        # and the fix stream are untouched.
        _, steady_policy = steady
        metrics = MetricsRegistry()
        policy = SnapshotPolicy(directory=tmp_path, every_packets=2, max_duty=1e-9)
        with ServiceSupervisor(factory(workload), policy, metrics=metrics) as sup:
            result = sup.run(workload.packets)
        assert result.n_snapshots == 2  # first periodic + final
        assert metrics.counter("serve.supervisor.snapshots_deferred").value > 0
        assert policy.fixes_path.read_bytes() == steady_policy.fixes_path.read_bytes()

    def test_zero_duty_snapshots_on_every_cadence_hit(self, workload, tmp_path):
        policy = SnapshotPolicy(directory=tmp_path, every_packets=8, max_duty=0.0)
        with ServiceSupervisor(factory(workload), policy) as sup:
            result = sup.run(workload.packets)
        assert result.n_snapshots >= len(workload.packets) // 8

    def test_result_accounts_snapshot_and_journal_time(self, workload, steady):
        result, _ = steady
        assert result.snapshot_seconds > 0.0
        assert result.journal_seconds > 0.0
        assert result.to_dict()["snapshot_seconds"] == result.snapshot_seconds


class TestJournal:
    def test_missing_journal_counts_zero(self, tmp_path):
        assert count_journaled_fixes(tmp_path / "fixes.jsonl") == 0

    def test_torn_tail_is_counted_out_and_healed(self, tmp_path):
        path = tmp_path / "fixes.jsonl"
        complete = json.dumps({"client": "a"}) + "\n" + json.dumps({"client": "b"}) + "\n"
        path.write_text(complete + '{"client": "c", "posi')
        assert count_journaled_fixes(path) == 2
        # The torn bytes are gone; the next append starts on a boundary.
        assert path.read_text() == complete

    def test_non_object_line_stops_the_count(self, tmp_path):
        path = tmp_path / "fixes.jsonl"
        path.write_text(json.dumps({"client": "a"}) + "\n[1, 2]\n")
        assert count_journaled_fixes(path) == 1


class TestSnapshotFile:
    def test_unreadable_snapshot_is_service_error(self, tmp_path):
        with pytest.raises(ServiceError, match="unreadable"):
            load_snapshot(tmp_path / "service.json")

    def test_wrong_version_is_service_error(self, tmp_path):
        path = tmp_path / "service.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(ServiceError, match="version"):
            load_snapshot(path)


class TestSupervisedRun:
    def test_clean_run_delivers_and_snapshots(self, workload, steady):
        result, policy = steady
        assert result.n_consumed == len(workload.packets)
        assert result.n_delivered == len(result.fixes) > 0
        assert result.n_restarts == 0
        assert result.n_suppressed == 0
        assert result.n_snapshots >= 1
        assert not result.resumed and not result.interrupted
        # Ack journal and snapshot cursors agree.
        assert count_journaled_fixes(policy.fixes_path) == result.n_delivered
        snapshot = load_snapshot(policy.snapshot_path)
        assert snapshot["n_consumed"] == len(workload.packets)
        assert snapshot["n_fixes"] == result.n_delivered

    def test_crash_recovery_is_byte_identical(self, workload, steady, tmp_path):
        steady_result, steady_policy = steady
        metrics = MetricsRegistry()
        supervisor, policy = supervised(workload, tmp_path, metrics=metrics)
        armed = {len(workload.packets) // 3}

        def crash(index):
            if index in armed:
                armed.discard(index)
                raise RuntimeError("injected crash")

        with supervisor:
            result = supervisor.run(workload.packets, fault_hook=crash)
        assert result.n_restarts == 1
        assert metrics.counter("serve.supervisor.restarts").value == 1
        assert policy.fixes_path.read_bytes() == steady_policy.fixes_path.read_bytes()
        assert result.n_delivered == steady_result.n_delivered

    def test_replay_from_zero_suppresses_delivered_fixes(
        self, workload, steady, tmp_path
    ):
        # No periodic snapshots: a crash replays the whole stream, so
        # every fix journaled before the crash must be suppressed, not
        # re-delivered.
        _, steady_policy = steady
        supervisor, policy = supervised(workload, tmp_path, every_packets=0)
        armed = {(2 * len(workload.packets)) // 3}

        def crash(index):
            if index in armed:
                armed.discard(index)
                raise RuntimeError("late crash")

        with supervisor:
            result = supervisor.run(workload.packets, fault_hook=crash)
        assert result.n_restarts == 1
        assert result.n_suppressed > 0
        assert policy.fixes_path.read_bytes() == steady_policy.fixes_path.read_bytes()

    def test_restart_budget_exhaustion_raises(self, workload, tmp_path):
        supervisor, _ = supervised(workload, tmp_path, max_restarts=2)

        def always_crash(index):
            raise RuntimeError("deterministic fault")

        with supervisor:
            with pytest.raises(SupervisorError, match="crashed 3 times") as excinfo:
                supervisor.run(workload.packets, fault_hook=always_crash)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_graceful_stop_then_resume_is_byte_identical(
        self, workload, steady, tmp_path
    ):
        _, steady_policy = steady
        supervisor, policy = supervised(workload, tmp_path)
        with supervisor:
            first = supervisor.run(
                workload.packets, stop=lambda: supervisor.n_consumed >= 10
            )
        assert first.interrupted
        assert first.n_consumed == 10
        assert policy.snapshot_path.exists()

        resumed_supervisor, _ = supervised(workload, tmp_path)
        assert resumed_supervisor.resumed
        with resumed_supervisor:
            second = resumed_supervisor.run(workload.packets)
        assert not second.interrupted and second.resumed
        assert second.n_consumed == len(workload.packets)
        # Interrupt + resume delivered exactly the uninterrupted stream.
        assert policy.fixes_path.read_bytes() == steady_policy.fixes_path.read_bytes()

    def test_mismatched_journal_and_snapshot_refused(self, workload, steady, tmp_path):
        _, steady_policy = steady
        (tmp_path / "service.json").write_bytes(
            steady_policy.snapshot_path.read_bytes()
        )
        (tmp_path / "fixes.jsonl").write_text("")
        with pytest.raises(ServiceError, match="different runs"):
            supervised(workload, tmp_path)
