"""Tests for the size/deadline micro-batcher (driven by a fake clock)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serve.batcher import MicroBatcher, SolveRequest


def request(key: str, width: int = 2, tag: float = 0.0) -> SolveRequest:
    client, _, ap = key.partition(":")
    return SolveRequest(
        key=key,
        client=client,
        ap=ap,
        snapshots=np.full((6, width), tag, dtype=complex),
        packet_time_s=tag,
        rssi_dbm=-50.0,
        enqueued_at=0.0,
    )


class TestTriggers:
    def test_no_trigger_before_size_or_deadline(self):
        batcher = MicroBatcher(batch_size=4, max_delay_s=1.0)
        batcher.offer(request("c0:ap0"), now=0.0)
        assert batcher.poll(now=0.5) is None

    def test_size_trigger_fires_at_batch_size(self):
        batcher = MicroBatcher(batch_size=3, max_delay_s=100.0)
        for i in range(3):
            assert batcher.offer(request(f"c{i}:ap"), now=0.0)
        batch = batcher.poll(now=0.0)
        assert batch is not None
        assert batch.trigger == "size"
        assert len(batch) == 3
        assert batcher.pending == 0

    def test_size_trigger_takes_oldest_first(self):
        batcher = MicroBatcher(batch_size=2, max_delay_s=100.0)
        for i in range(4):
            batcher.offer(request(f"c{i}:ap"), now=float(i))
        batch = batcher.poll(now=4.0)
        assert [r.key for r in batch.requests] == ["c0:ap", "c1:ap"]

    def test_poll_loop_drains_backlog_in_size_batches(self):
        batcher = MicroBatcher(batch_size=2, max_delay_s=100.0)
        for i in range(5):
            batcher.offer(request(f"c{i}:ap"), now=0.0)
        sizes = []
        while (batch := batcher.poll(now=0.0)) is not None:
            sizes.append(len(batch))
        # Two full batches; the leftover waits for its deadline.
        assert sizes == [2, 2]
        assert batcher.pending == 1

    def test_deadline_trigger_fires_on_oldest_request(self):
        batcher = MicroBatcher(batch_size=16, max_delay_s=0.05)
        batcher.offer(request("c0:ap"), now=1.0)
        batcher.offer(request("c1:ap"), now=1.04)
        assert batcher.poll(now=1.04) is None
        batch = batcher.poll(now=1.06)
        assert batch.trigger == "deadline"
        assert len(batch) == 2

    def test_flush_drains_everything_in_chunks(self):
        batcher = MicroBatcher(batch_size=2, max_delay_s=100.0)
        for i in range(5):
            batcher.offer(request(f"c{i}:ap"), now=0.0)
        batches = batcher.flush()
        assert [b.trigger for b in batches] == ["flush", "flush", "flush"]
        assert [len(b) for b in batches] == [2, 2, 1]
        assert batcher.pending == 0


class TestCoalescing:
    def test_same_key_replaces_payload_without_new_slot(self):
        batcher = MicroBatcher(batch_size=4, max_delay_s=100.0)
        batcher.offer(request("c0:ap", width=1, tag=1.0), now=0.0)
        batcher.offer(request("c0:ap", width=2, tag=2.0), now=0.5)
        assert batcher.pending == 1
        batch = batcher.flush()[0]
        assert batch.requests[0].width == 2
        assert batch.requests[0].packet_time_s == 2.0

    def test_coalescing_keeps_original_deadline(self):
        batcher = MicroBatcher(batch_size=16, max_delay_s=0.05)
        batcher.offer(request("c0:ap", tag=1.0), now=0.0)
        # A chatty client re-offers just before the deadline; the slot's
        # age is still measured from the first offer.
        batcher.offer(request("c0:ap", tag=2.0), now=0.04)
        batch = batcher.poll(now=0.06)
        assert batch is not None and batch.trigger == "deadline"
        assert batch.requests[0].packet_time_s == 2.0

    def test_offer_false_only_when_full_of_distinct_keys(self):
        batcher = MicroBatcher(batch_size=2, max_delay_s=100.0, max_pending=2)
        assert batcher.offer(request("c0:ap"), now=0.0)
        assert batcher.offer(request("c1:ap"), now=0.0)
        assert not batcher.offer(request("c2:ap"), now=0.0)
        # Coalescing an existing key still succeeds at capacity.
        assert batcher.offer(request("c1:ap", tag=9.0), now=0.0)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(batch_size=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_delay_s=-0.1)
        with pytest.raises(ConfigurationError):
            MicroBatcher(batch_size=8, max_pending=4)
