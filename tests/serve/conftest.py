"""Shared fixtures for the streaming-service tests.

The workload and solver working point are deliberately tiny (3 clients,
3 APs, 61×21 grid) so the end-to-end tests stay in tier-1 time budgets;
the benchmark covers realistic scale.
"""

import pytest

from repro.core.grids import AngleGrid, DelayGrid
from repro.serve import LoadGenerator, ServeConfig


def small_serve_config(**overrides) -> ServeConfig:
    defaults = dict(
        batch_size=4,
        max_delay_s=0.01,
        window_packets=4,
        min_quorum=2,
        resolution_m=0.5,
        angle_grid=AngleGrid(n_points=61),
        delay_grid=DelayGrid(n_points=21),
        max_iterations=100,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture(scope="module")
def workload():
    return LoadGenerator(
        n_clients=3,
        duration_s=1.0,
        sample_interval_s=0.5,
        stationary_fraction=0.34,
        n_aps=3,
        band="high",
        seed=7,
    ).generate()


@pytest.fixture
def serve_config():
    return small_serve_config()
